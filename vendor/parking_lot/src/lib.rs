//! Offline shim for `parking_lot`: `RwLock` and `Mutex` on top of
//! `std::sync`, with the poison layer stripped so the lock methods
//! return guards directly (parking_lot's API).
//!
//! See `vendor/README.md` for scope and caveats.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's panic-free locking API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value in a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, ignoring poison (parking_lot has
    /// no poisoning).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Mutual-exclusion lock with parking_lot's panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value in a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
