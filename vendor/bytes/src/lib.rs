//! Offline shim for `bytes`: the `Buf`/`BufMut` accessors used by the
//! binary STL reader/writer (`get_*_le` on `&[u8]`, `put_*_le` on
//! `Vec<u8>`).
//!
//! See `vendor/README.md` for scope and caveats.

#![forbid(unsafe_code)]

/// Read cursor over a byte source. Mirrors the subset of `bytes::Buf`
/// this workspace uses; `get_*` methods panic if the source is too
/// short, exactly like the real crate.
pub trait Buf {
    /// Number of bytes remaining.
    fn remaining(&self) -> usize;

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes into `dst` and advances.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write sink for bytes. Mirrors the subset of `bytes::BufMut` this
/// workspace uses.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u32_le(0xDEADBEEF);
        out.put_f32_le(1.5);
        out.put_u16_le(7);
        let mut cur: &[u8] = &out;
        assert_eq!(cur.remaining(), 10);
        assert_eq!(cur.get_u32_le(), 0xDEADBEEF);
        assert_eq!(cur.get_f32_le(), 1.5);
        assert_eq!(cur.get_u16_le(), 7);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn short_read_panics() {
        let mut cur: &[u8] = &[1, 2];
        let _ = cur.get_u32_le();
    }
}
