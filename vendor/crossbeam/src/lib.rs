//! Offline shim for `crossbeam`: scoped threads on top of
//! `std::thread::scope`, with crossbeam's `Result`-returning `scope`
//! entry point and `spawn(|scope| ...)` closure shape, plus the
//! [`channel`] module's MPMC bounded/unbounded channels.
//!
//! See `vendor/README.md` for scope and caveats.

#![forbid(unsafe_code)]

use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::thread;

pub mod channel;

/// Result of a scope: `Err` carries the payload of a panicking child
/// thread (crossbeam's contract; std would propagate the panic).
pub type ScopeResult<R> = Result<R, Box<dyn Any + Send + 'static>>;

/// A handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result or the
    /// panic payload.
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

/// A scope in which child threads borrowing from the environment can
/// be spawned. Mirrors `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope (so it
    /// can spawn further threads), matching crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Creates a scope for spawning threads that may borrow from the
/// caller's stack. All spawned threads are joined before `scope`
/// returns. A panic in an unjoined child surfaces as `Err` with the
/// panic payload rather than propagating (crossbeam's behavior).
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> = data.iter().map(|v| s.spawn(move |_| *v * 10)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn panic_in_child_becomes_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
