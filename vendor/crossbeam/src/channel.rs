//! MPMC channels mirroring the subset of `crossbeam::channel` this
//! workspace uses: [`bounded`]/[`unbounded`] constructors, cloneable
//! [`Sender`]/[`Receiver`] halves, blocking `send`/`recv`,
//! non-blocking `try_send`/`try_recv`, and `recv_timeout`.
//!
//! Implementation: a `Mutex<VecDeque>` plus two condvars. Unlike the
//! real crate there is no lock-free fast path, and `bounded(0)`
//! (rendezvous channels) is not supported — a zero capacity is
//! rounded up to 1. Disconnection semantics match crossbeam: a
//! channel is disconnected once every handle on the other side has
//! been dropped; receivers still drain buffered messages after the
//! last sender is gone.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone;
/// carries the unsent message back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity; the message is handed back.
    Full(T),
    /// Every receiver has been dropped; the message is handed back.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::recv`]: the channel is empty and
/// every sender has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on receive"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

/// Shared queue state guarded by the mutex.
struct State<T> {
    queue: VecDeque<T>,
    /// `None` for unbounded channels.
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    /// Signalled when a message is pushed or the last sender leaves.
    not_empty: Condvar,
    /// Signalled when a message is popped or the last receiver leaves.
    not_full: Condvar,
}

impl<T> Chan<T> {
    /// Locks the state, recovering from a poisoned mutex (a panicking
    /// peer must not wedge the channel).
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The sending half of a channel. Cloneable; the channel disconnects
/// for receivers once all clones are dropped.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of a channel. Cloneable; all clones drain the
/// same queue (each message is delivered to exactly one receiver).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates a bounded MPMC channel with room for `cap` buffered
/// messages. A capacity of 0 (crossbeam's rendezvous channel) is not
/// supported by this shim and is rounded up to 1.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    new_chan(Some(cap.max(1)))
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_chan(None)
}

fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Sends a message, blocking while the channel is full. Fails only
    /// when every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = st.cap.is_some_and(|c| st.queue.len() >= c);
            if !full {
                st.queue.push_back(msg);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            st = self
                .chan
                .not_full
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Attempts to send without blocking; hands the message back if
    /// the channel is full or disconnected.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut st = self.chan.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if st.cap.is_some_and(|c| st.queue.len() >= c) {
            return Err(TrySendError::Full(msg));
        }
        st.queue.push_back(msg);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.chan.lock().queue.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.chan.lock().queue.is_empty()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.lock().senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.lock();
        st.senders -= 1;
        if st.senders == 0 {
            // Wake blocked receivers so they observe the disconnect.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking while the channel is empty. Fails
    /// only when the channel is empty *and* every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.lock();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .chan
                .not_empty
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Attempts to receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.lock();
        if let Some(msg) = st.queue.pop_front() {
            self.chan.not_full.notify_one();
            return Ok(msg);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receives with a deadline `timeout` from now.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.chan.lock();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, _timed_out) = self
                .chan
                .not_empty
                .wait_timeout(st, left)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.chan.lock().queue.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.chan.lock().queue.is_empty()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.lock().receivers += 1;
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.chan.lock();
        st.receivers -= 1;
        if st.receivers == 0 {
            // Wake blocked senders so they observe the disconnect.
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bounded_try_send_reports_full_then_drains() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn receivers_drain_after_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        tx.send(8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Ok(8));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        assert_eq!(tx.try_send(2), Err(TrySendError::Disconnected(2)));
    }

    #[test]
    fn recv_timeout_times_out_and_then_delivers() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Ok(5));
    }

    #[test]
    fn mpmc_delivers_every_message_exactly_once() {
        const N: u32 = 200;
        let (tx, rx) = bounded::<u32>(4);
        let total: u64 = crate::scope(|s| {
            let mut consumers = Vec::new();
            for _ in 0..3 {
                let rx = rx.clone();
                consumers.push(s.spawn(move |_| {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += u64::from(v);
                    }
                    sum
                }));
            }
            drop(rx);
            for chunk in 0..2 {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for v in (chunk * N / 2)..((chunk + 1) * N / 2) {
                        tx.send(v).unwrap();
                    }
                });
            }
            drop(tx);
            consumers
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum()
        })
        .unwrap();
        assert_eq!(total, (0..u64::from(N)).sum::<u64>());
    }
}
