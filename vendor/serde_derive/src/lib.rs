//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implemented with a hand-rolled token
//! parser (no `syn`/`quote`, which are unavailable offline).
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! * structs with named fields (any visibility), including generics
//!   like `struct Foo<T> { .. }`;
//! * tuple structs (newtype and n-ary);
//! * unit structs;
//! * enums with unit, tuple, and struct variants (externally tagged,
//!   like real serde's default representation);
//! * field attributes `#[serde(default)]`, `#[serde(skip)]`, and
//!   `#[serde(skip, default)]`.
//!
//! Anything else (lifetimes, const generics, `where` clauses, rename
//! attributes, internally tagged enums, ...) is rejected with a
//! compile error naming the construct, so failures are loud instead of
//! silently wrong. See `vendor/README.md`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field-level `#[serde(...)]` flags this shim understands.
#[derive(Debug, Clone, Copy, Default)]
struct FieldFlags {
    skip: bool,
    default: bool,
}

#[derive(Debug, Clone)]
struct Field {
    name: String,
    flags: FieldFlags,
}

#[derive(Debug, Clone)]
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    generics: Vec<String>,
    kind: ItemKind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive shim emitted bad code: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({:?});", msg)
        .parse()
        .expect("compile_error! literal always parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, name: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == name)
    }

    /// Skips attributes (`#[...]`), returning accumulated serde flags.
    fn skip_attrs(&mut self) -> Result<FieldFlags, String> {
        let mut flags = FieldFlags::default();
        while self.at_punct('#') {
            self.next();
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    merge_serde_flags(&mut flags, g.stream())?;
                }
                _ => return Err("malformed attribute".into()),
            }
        }
        Ok(flags)
    }

    /// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
    fn skip_vis(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Skips a type (or any token run) until a top-level `,`, counting
    /// `<`/`>` depth. Consumes the trailing comma if present.
    fn skip_until_top_level_comma(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

fn merge_serde_flags(flags: &mut FieldFlags, attr: TokenStream) -> Result<(), String> {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    let [TokenTree::Ident(head), rest @ ..] = tokens.as_slice() else {
        return Ok(());
    };
    if head.to_string() != "serde" {
        return Ok(()); // doc comments, cfg_attr leftovers, ...
    }
    let [TokenTree::Group(g)] = rest else {
        return Err("malformed #[serde(...)] attribute".into());
    };
    for t in g.stream() {
        match &t {
            TokenTree::Ident(i) if i.to_string() == "skip" => flags.skip = true,
            TokenTree::Ident(i) if i.to_string() == "default" => flags.default = true,
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => {
                return Err(format!(
                    "unsupported serde attribute `{other}` (shim supports only skip/default)"
                ))
            }
        }
    }
    Ok(())
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor {
        tokens: input.into_iter().collect(),
        pos: 0,
    };
    cur.skip_attrs()?;
    cur.skip_vis();

    let kind_kw = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    let generics = parse_generics(&mut cur)?;

    if cur.at_ident("where") {
        return Err("`where` clauses are not supported by the serde_derive shim".into());
    }

    let kind = match kind_kw.as_str() {
        "struct" => ItemKind::Struct(parse_struct_fields(&mut cur)?),
        "enum" => ItemKind::Enum(parse_variants(&mut cur)?),
        other => return Err(format!("cannot derive serde traits for `{other}`")),
    };

    Ok(Item {
        name,
        generics,
        kind,
    })
}

fn parse_generics(cur: &mut Cursor) -> Result<Vec<String>, String> {
    if !cur.at_punct('<') {
        return Ok(Vec::new());
    }
    cur.next();
    let mut params = Vec::new();
    let mut depth = 1i32;
    let mut expect_param = true;
    while depth > 0 {
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => expect_param = true,
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                return Err("lifetime generics are not supported by the serde_derive shim".into())
            }
            Some(TokenTree::Ident(i)) => {
                let word = i.to_string();
                if word == "const" {
                    return Err("const generics are not supported by the serde_derive shim".into());
                }
                if expect_param && depth == 1 {
                    params.push(word);
                    expect_param = false;
                }
            }
            Some(_) => {}
            None => return Err("unterminated generic parameter list".into()),
        }
    }
    Ok(params)
}

fn parse_struct_fields(cur: &mut Cursor) -> Result<Fields, String> {
    match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            parse_named_fields(g.stream())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Fields::Tuple(count_tuple_fields(g.stream())?))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Fields::Unit),
        other => Err(format!("unexpected struct body: {other:?}")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Fields, String> {
    let mut cur = Cursor {
        tokens: stream.into_iter().collect(),
        pos: 0,
    };
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let flags = cur.skip_attrs()?;
        cur.skip_vis();
        let name = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        cur.skip_until_top_level_comma();
        fields.push(Field { name, flags });
    }
    Ok(Fields::Named(fields))
}

/// Counts the comma-separated fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> Result<usize, String> {
    let mut cur = Cursor {
        tokens: stream.into_iter().collect(),
        pos: 0,
    };
    let mut count = 0;
    while cur.peek().is_some() {
        let _ = cur.skip_attrs()?;
        cur.skip_vis();
        if cur.peek().is_none() {
            break; // trailing comma
        }
        count += 1;
        cur.skip_until_top_level_comma();
    }
    Ok(count)
}

fn parse_variants(cur: &mut Cursor) -> Result<Vec<Variant>, String> {
    let body = match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => return Err(format!("expected enum body, got {other:?}")),
    };
    let mut cur = Cursor {
        tokens: body.into_iter().collect(),
        pos: 0,
    };
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        let _ = cur.skip_attrs()?;
        let name = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream())?;
                cur.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream())?;
                cur.next();
                f
            }
            _ => Fields::Unit,
        };
        if cur.at_punct('=') {
            return Err("explicit discriminants are not supported by the serde_derive shim".into());
        }
        if cur.at_punct(',') {
            cur.next();
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

/// `impl<T: ::serde::Serialize> ... for Name<T>` header pieces.
fn impl_header(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", bounded.join(", ")),
            format!("<{}>", item.generics.join(", ")),
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let (impl_generics, ty_generics) = impl_header(item, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => gen_serialize_fields(fields, "self"),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| gen_serialize_variant(name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Serialization expression for struct bodies (`self.<field>` access).
fn gen_serialize_fields(fields: &Fields, recv: &str) -> String {
    match fields {
        Fields::Named(fs) => {
            let pushes: Vec<String> = fs
                .iter()
                .filter(|f| !f.flags.skip)
                .map(|f| {
                    format!(
                        "__obj.push((::std::string::String::from({:?}), \
                         ::serde::Serialize::to_value(&{recv}.{})));",
                        f.name, f.name
                    )
                })
                .collect();
            format!(
                "{{ let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new(); {} ::serde::Value::Obj(__obj) }}",
                pushes.join(" ")
            )
        }
        Fields::Tuple(1) => format!("::serde::Serialize::to_value(&{recv}.0)"),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&{recv}.{i})"))
                .collect();
            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    }
}

fn gen_serialize_variant(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        Fields::Unit => format!(
            "{enum_name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),"
        ),
        Fields::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let payload = if *n == 1 {
                "::serde::Serialize::to_value(__f0)".to_string()
            } else {
                let items: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
            };
            format!(
                "{enum_name}::{vname}({}) => ::serde::Value::Obj(::std::vec![\
                 (::std::string::String::from({vname:?}), {payload})]),",
                binders.join(", ")
            )
        }
        Fields::Named(fs) => {
            let binders: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
            let pushes: Vec<String> = fs
                .iter()
                .filter(|f| !f.flags.skip)
                .map(|f| {
                    format!(
                        "__obj.push((::std::string::String::from({:?}), \
                         ::serde::Serialize::to_value({})));",
                        f.name, f.name
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {} }} => {{ \
                 let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new(); {} \
                 ::serde::Value::Obj(::std::vec![(::std::string::String::from({vname:?}), \
                 ::serde::Value::Obj(__obj))]) }},",
                binders.join(", "),
                pushes.join(" ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let (impl_generics, ty_generics) = impl_header(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => gen_deserialize_struct(name, fields),
        ItemKind::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
             fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> \
             {{ {body} }}\n\
         }}"
    )
}

/// Field initializer for named-field construction, honoring
/// skip/default flags.
fn field_init(ctx: &str, f: &Field, src: &str) -> String {
    let fname = &f.name;
    if f.flags.skip {
        return format!("{fname}: ::core::default::Default::default(),");
    }
    let missing = if f.flags.default {
        "::core::default::Default::default()".to_string()
    } else {
        format!(
            "return ::core::result::Result::Err(::serde::Error::custom(\
             ::std::format!(\"missing field `{fname}` in {ctx}\")))"
        )
    };
    format!(
        "{fname}: match {src}.get({fname:?}) {{ \
         ::core::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?, \
         ::core::option::Option::None => {missing} }},"
    )
}

fn gen_deserialize_struct(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(fs) => {
            let inits: Vec<String> = fs.iter().map(|f| field_init(name, f, "__v")).collect();
            format!(
                "if __v.as_obj().is_none() {{ \
                 return ::core::result::Result::Err(::serde::Error::expected(\
                 \"object\", {name:?}, __v)); }} \
                 ::core::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Fields::Tuple(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Fields::Tuple(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.as_arr().ok_or_else(|| \
                 ::serde::Error::expected(\"array\", {name:?}, __v))?; \
                 if __items.len() != {n} {{ \
                 return ::core::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"expected {n} items for {name}, got {{}}\", __items.len()))); }} \
                 ::core::result::Result::Ok({name}({}))",
                gets.join(", ")
            )
        }
        Fields::Unit => format!("::core::result::Result::Ok({name})"),
    }
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    // Externally tagged: unit variants arrive as Str("Variant"), payload
    // variants as a single-key Obj [("Variant", payload)].
    let mut unit_arms = Vec::new();
    let mut payload_arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => unit_arms.push(format!(
                "{vname:?} => ::core::result::Result::Ok({name}::{vname}),"
            )),
            Fields::Tuple(1) => payload_arms.push(format!(
                "{vname:?} => ::core::result::Result::Ok({name}::{vname}(\
                 ::serde::Deserialize::from_value(__payload)?)),"
            )),
            Fields::Tuple(n) => {
                let gets: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                payload_arms.push(format!(
                    "{vname:?} => {{ \
                     let __items = __payload.as_arr().ok_or_else(|| \
                     ::serde::Error::expected(\"array\", {vname:?}, __payload))?; \
                     if __items.len() != {n} {{ \
                     return ::core::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"expected {n} items for {name}::{vname}, got {{}}\", \
                     __items.len()))); }} \
                     ::core::result::Result::Ok({name}::{vname}({})) }},",
                    gets.join(", ")
                ));
            }
            Fields::Named(fs) => {
                let ctx = format!("{name}::{vname}");
                let inits: Vec<String> = fs
                    .iter()
                    .map(|f| field_init(&ctx, f, "__payload"))
                    .collect();
                payload_arms.push(format!(
                    "{vname:?} => {{ \
                     if __payload.as_obj().is_none() {{ \
                     return ::core::result::Result::Err(::serde::Error::expected(\
                     \"object\", {vname:?}, __payload)); }} \
                     ::core::result::Result::Ok({name}::{vname} {{ {} }}) }},",
                    inits.join(" ")
                ));
            }
        }
    }
    format!(
        "match __v {{ \
         ::serde::Value::Str(__s) => match __s.as_str() {{ \
             {} \
             __other => ::core::result::Result::Err(::serde::Error::custom(\
             ::std::format!(\"unknown variant `{{__other}}` for {name}\"))), \
         }}, \
         ::serde::Value::Obj(__pairs) if __pairs.len() == 1 => {{ \
             let (__tag, __payload) = &__pairs[0]; \
             match __tag.as_str() {{ \
                 {} \
                 __other => ::core::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` for {name}\"))), \
             }} \
         }}, \
         __other => ::core::result::Result::Err(::serde::Error::expected(\
         \"string or single-key object\", {name:?}, __other)), \
         }}",
        unit_arms.join(" "),
        payload_arms.join(" ")
    )
}
