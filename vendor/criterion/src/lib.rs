//! Offline shim for `criterion`: the registration/measurement API the
//! workspace's benches use, backed by a minimal wall-clock timer.
//!
//! No statistics, plots, or baselines — each routine is warmed up once
//! and timed over a handful of iterations, and the median per-iteration
//! time is printed. Good enough to spot order-of-magnitude regressions
//! by eye; not a replacement for real criterion. See
//! `vendor/README.md`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so call sites like `criterion::black_box(x)` work; the
/// std hint is the real implementation.
pub use std::hint::black_box;

/// Timed samples collected per routine (after one warm-up run).
const SAMPLES: usize = 5;

/// The benchmark manager: registers and runs routines.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `routine` as a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sample count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `routine` under this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into_id()), routine);
        self
    }

    /// Runs `routine` with a shared input under this group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.into_id()), |b| {
            routine(b, input)
        });
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display form of the id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Batch sizing for [`Bencher::iter_batched`] (ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Passed to routines to time the measured section.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..=SAMPLES {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            self.samples.push(elapsed);
        }
        // Drop the warm-up sample.
        self.samples.remove(0);
    }

    /// Times `routine` over inputs built by `setup` (setup time
    /// excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..=SAMPLES {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed();
            self.samples.push(elapsed);
        }
        self.samples.remove(0);
    }
}

/// Prints the shim warning once per process, before the first
/// benchmark line.
fn print_shim_banner() {
    static BANNER: std::sync::Once = std::sync::Once::new();
    BANNER.call_once(|| {
        eprintln!(
            "\n\
             ================================================================\n\
             criterion SHIM — TIMINGS NOT MEANINGFUL\n\
             This is the offline vendor/criterion shim: {SAMPLES} raw samples\n\
             per routine, no statistics, no outlier rejection, no baselines.\n\
             Numbers below are only good for spotting order-of-magnitude\n\
             regressions by eye. For real measurements, build against\n\
             crates.io criterion (see vendor/README.md for the switch-back\n\
             path).\n\
             ================================================================"
        );
    });
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut routine: F) {
    print_shim_banner();
    let mut bencher = Bencher {
        samples: Vec::new(),
    };
    routine(&mut bencher);
    bencher.samples.sort();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "bench {id:<50} median {median:>12.3?} ({} samples)",
        bencher.samples.len()
    );
}

/// Declares a group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group (ignores harness CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes flags like `--bench`; nothing to parse
            // in the shim.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut runs = 0;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > SAMPLES);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        let mut hits = 0;
        g.bench_with_input(BenchmarkId::new("f", 3), &7usize, |b, &x| {
            b.iter(|| hits += x)
        });
        g.bench_with_input(BenchmarkId::from_parameter(9), &2usize, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
        assert!(hits > 0);
    }
}
