//! Offline shim for `serde_json`: JSON text to and from the sibling
//! serde shim's [`Value`] tree.
//!
//! Covers exactly what this workspace calls: [`to_string`],
//! [`to_string_pretty`], [`to_writer`], [`from_str`], [`from_reader`],
//! the [`json!`] macro, and an [`Error`] type usable in error enums.
//!
//! Floats are printed with Rust's `{}` formatting, which emits the
//! shortest string that parses back to the identical bits — so
//! serialize/deserialize round trips are exact, which the persistence
//! tests rely on. Non-finite floats print as `null` (real serde_json's
//! behavior). See `vendor/README.md`.

#![forbid(unsafe_code)]

use std::io::{Read, Write};

pub use serde::Value;

use serde::{Deserialize, Serialize};

// Re-export for `json!` expansion: callers of the macro may not
// depend on `serde` directly.
#[doc(hidden)]
pub use serde as __serde;

/// JSON error: syntax errors, shape mismatches (via the serde shim's
/// error), or I/O failures from reader/writer entry points.
#[derive(Debug)]
pub struct Error {
    msg: String,
    io: Option<std::io::Error>,
}

impl Error {
    fn syntax(msg: impl Into<String>) -> Error {
        Error {
            msg: msg.into(),
            io: None,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.io.as_ref().map(|e| e as _)
    }
}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::syntax(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error {
            msg: format!("io error: {e}"),
            io: Some(e),
        }
    }
}

/// Builds a [`Value`] from JSON-ish literal syntax. Supports the
/// subset this workspace writes: objects with literal keys and
/// serializable expression values, arrays of expressions, and `null`.
/// (Unlike real serde_json, values cannot be nested `{...}` object
/// literals — bind those to a variable first.)
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Arr(vec![ $( $crate::__serde::Serialize::to_value(&$item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Obj(vec![
            $( (
                ::std::string::String::from($key),
                $crate::__serde::Serialize::to_value(&$val),
            ) ),*
        ])
    };
    ($other:expr) => { $crate::__serde::Serialize::to_value(&$other) };
}

// ---------------------------------------------------------------------
// Serialization (printing)
// ---------------------------------------------------------------------

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space
/// indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Serializes `value` as pretty-printed JSON into `writer`.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string_pretty(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Obj(pairs) => write_seq(out, indent, depth, pairs.len(), '{', '}', |out, i| {
            let (k, val) = &pairs[i];
            write_string(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, val, indent, depth + 1);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{}` prints the shortest string that round-trips exactly.
        let s = format!("{f}");
        out.push_str(&s);
        // Keep a float marker so the value parses back as Float, not
        // Int (matches real serde_json printing "1.0" for 1.0_f64).
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Deserialization (parsing)
// ---------------------------------------------------------------------

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::syntax(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

/// Deserializes a `T` from a reader (reads to end first; JSON values
/// here are whole documents).
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::syntax(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::syntax(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::syntax(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::syntax("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Arr(items)),
                _ => {
                    return Err(Error::syntax(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Obj(pairs)),
                _ => {
                    return Err(Error::syntax(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        // Surrogate pair handling for astral chars.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::syntax("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(c.ok_or_else(|| Error::syntax("invalid unicode escape"))?);
                    }
                    _ => return Err(Error::syntax("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input came from &str, so
                    // re-decode the full sequence.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| Error::syntax("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
                None => return Err(Error::syntax("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| Error::syntax("invalid \\u escape"))?;
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::syntax("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::syntax(format!("invalid number `{text}` at byte {start}")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_floats() {
        let values = [
            0.1,
            -1.0 / 3.0,
            1e-300,
            6.02214076e23,
            f64::MAX,
            f64::MIN_POSITIVE,
            1.0,
            -0.0,
        ];
        for &f in &values {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} -> {s} -> {back}");
        }
    }

    #[test]
    fn roundtrip_u64_bits() {
        let v: Vec<u64> = vec![0, 1, u64::MAX, 0x8000_0000_0000_0001];
        let s = to_string(&v).unwrap();
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "he said \"hi\"\n\ttab \\ slash \u{1F600} ünïcode";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn unicode_escapes_parse() {
        let back: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(back, "A\u{1F600}");
    }

    #[test]
    fn pretty_print_shape() {
        let v = json!({ "a": 1, "b": [true, false], "c": Option::<u8>::None });
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"a\": 1"));
        let reparsed: Value = from_str(&pretty).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.2.3").is_err());
        assert!(from_str::<Vec<u8>>("[1, 2,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<bool>("true false").is_err());
    }
}
