//! Offline shim for `proptest`: deterministic property-based testing
//! over the combinators this workspace uses.
//!
//! Differences from real proptest (see `vendor/README.md`):
//!
//! * deterministic — the RNG is seeded from the test's module path and
//!   name, so runs are reproducible but never explore new cases;
//! * no shrinking — a failure reports the assertion message only;
//! * `prop_filter_map` rejections retry with fresh draws, bounded by a
//!   global attempt cap.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinator adapters.

    use rand::rngs::StdRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// `sample` returns `None` when a filter rejected the draw; the
    /// runner retries with fresh randomness.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value, or `None` on filter rejection.
        fn sample(&self, rng: &mut StdRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Maps through `f`, rejecting draws where `f` returns `None`.
        /// `reason` labels the rejection (kept for API compatibility;
        /// the shim does not report per-reason statistics).
        fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<U>,
        {
            FilterMap {
                inner: self,
                f,
                _reason: reason,
            }
        }

        /// Keeps only draws satisfying `pred`.
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                pred,
                _reason: reason,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut StdRng) -> Option<U> {
            self.inner.sample(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) _reason: &'static str,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut StdRng) -> Option<U> {
            self.inner.sample(rng).and_then(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) pred: F,
        pub(crate) _reason: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            self.inner.sample(rng).filter(|v| (self.pred)(v))
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    // Ranges are strategies, e.g. `-1.0f64..1.0` or `1usize..20`.
    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> Option<$t> {
                    Some(rand::Rng::gen_range(rng, self.clone()))
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> Option<$t> {
                    Some(rand::Rng::gen_range(rng, self.clone()))
                }
            }
        )*};
    }
    impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Option<Self::Value> {
                    Some(($(self.$idx.sample(rng)?,)+))
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0);
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
        (A: 0, B: 1, C: 2, D: 3, E: 4);
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    }
}

pub mod arbitrary {
    //! `any::<T>()`: the standard-distribution strategy for `T`.

    use rand::rngs::StdRng;
    use rand::StandardSample;

    use crate::strategy::Strategy;

    /// Strategy drawing from the standard distribution of `T`.
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    /// Creates the standard strategy for `T`.
    pub fn any<T: StandardSample>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: StandardSample> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> Option<T> {
            Some(T::sample_standard(rng))
        }
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `hash_set`.

    use std::collections::HashSet;
    use std::hash::Hash;

    use rand::rngs::StdRng;

    use crate::strategy::Strategy;

    /// Size specifications accepted by collection strategies.
    pub trait SizeRange: Clone {
        /// Draws a target size.
        fn sample_size(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_size(&self, rng: &mut StdRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_size(&self, rng: &mut StdRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl SizeRange for usize {
        fn sample_size(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<T>` with a size drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates vectors of `element` values.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
            let n = self.size.sample_size(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>`. Duplicate draws collapse, so the
    /// result may be smaller than the drawn size (fine for the uses in
    /// this workspace, which only bound sizes from above).
    pub struct HashSetStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates hash sets of `element` values.
    pub fn hash_set<S, R>(element: S, size: R) -> HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: SizeRange,
    {
        HashSetStrategy { element, size }
    }

    impl<S, R> Strategy for HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: SizeRange,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Option<HashSet<S::Value>> {
            let n = self.size.sample_size(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Strategies drawing from fixed collections.

    use rand::rngs::StdRng;

    use crate::strategy::Strategy;

    /// Strategy picking one element of `options` uniformly.
    pub struct Select<T>(Vec<T>);

    /// Picks uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty options");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> Option<T> {
            let i = rand::Rng::gen_range(rng, 0..self.0.len());
            Some(self.0[i].clone())
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use rand::rngs::StdRng;

    use crate::strategy::Strategy;

    /// Strategy for `[T; 32]` drawing each element from `element`.
    pub struct Uniform32<S>(S);

    /// Generates `[T; 32]` arrays.
    pub fn uniform32<S: Strategy>(element: S) -> Uniform32<S> {
        Uniform32(element)
    }

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];

        fn sample(&self, rng: &mut StdRng) -> Option<[S::Value; 32]> {
            let items: Option<Vec<S::Value>> = (0..32).map(|_| self.0.sample(rng)).collect();
            <[S::Value; 32]>::try_from(items?).ok()
        }
    }
}

pub mod test_runner {
    //! Config, error type, and the runner entry point the `proptest!`
    //! macro expands into.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Run configuration (only `cases` is honored by the shim).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case failed an assertion: the whole test fails.
        Fail(String),
        /// The case rejected its inputs (`prop_assume!`): retried.
        Reject(String),
    }

    impl TestCaseError {
        /// A failing case with the given message.
        pub fn fail(msg: impl std::fmt::Display) -> TestCaseError {
            TestCaseError::Fail(msg.to_string())
        }

        /// A rejected case with the given reason.
        pub fn reject(msg: impl std::fmt::Display) -> TestCaseError {
            TestCaseError::Reject(msg.to_string())
        }
    }

    /// Deterministic per-test RNG: FNV-1a over the test's identity.
    pub fn rng_for_test(module: &str, name: &str) -> StdRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in module.bytes().chain([b':', b':']).chain(name.bytes()) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(hash)
    }

    /// Drives one property: draws inputs and runs `case` until
    /// `cases` draws pass, a case fails, or the retry budget (for
    /// filter/assume rejections) is exhausted.
    pub fn run<F>(config: &ProptestConfig, module: &str, name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<bool, TestCaseError>,
    {
        let mut rng = rng_for_test(module, name);
        let mut passed: u32 = 0;
        let mut attempts: u64 = 0;
        let budget = u64::from(config.cases) * 64 + 4096;
        while passed < config.cases {
            attempts += 1;
            assert!(
                attempts <= budget,
                "{module}::{name}: too many rejected cases ({passed}/{} passed after {attempts} attempts)",
                config.cases
            );
            match case(&mut rng) {
                Ok(true) => passed += 1,
                Ok(false) => {} // strategy rejected the draw
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{module}::{name} failed after {passed} passing cases: {msg}")
                }
            }
        }
    }
}

/// `prop::...` paths used by tests (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` that draws inputs and checks the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run(
                    &__config,
                    module_path!(),
                    stringify!($name),
                    |__rng| {
                        $(
                            let __drawn = $crate::strategy::Strategy::sample(&($strat), __rng);
                            let $pat = match __drawn {
                                ::core::option::Option::Some(v) => v,
                                ::core::option::Option::None => return ::core::result::Result::Ok(false),
                            };
                        )+
                        let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                            (|| { $body ::core::result::Result::Ok(()) })();
                        __outcome.map(|()| true)
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`: fails
/// the current case without panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert_eq!(left, right)` with an optional format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {:?} != {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}: {:?} != {:?}",
            ::std::format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// `prop_assume!(cond)`: rejects the current case (retried with fresh
/// inputs) instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, -1.0f64..1.0), n in 1usize..5) {
            prop_assert!(a < 10);
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn filter_map_retries(v in (0u32..100).prop_filter_map("odd only", |x| {
            if x % 2 == 1 { Some(x) } else { None }
        })) {
            prop_assert_eq!(v % 2, 1);
        }

        #[test]
        fn collections(xs in prop::collection::vec(0u8..255, 0..20),
                       set in prop::collection::hash_set(0u32..50, 0..20)) {
            prop_assert!(xs.len() < 20);
            prop_assert!(set.len() < 20);
        }

        #[test]
        fn arrays(bits in prop::array::uniform32(any::<bool>())) {
            prop_assert_eq!(bits.len(), 32);
        }

        #[test]
        fn assume_rejects(v in 0u32..100) {
            prop_assume!(v >= 50);
            prop_assert!(v >= 50);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = (0u64..1000, 0.0f64..1.0);
        let mut r1 = crate::test_runner::rng_for_test("m", "t");
        let mut r2 = crate::test_runner::rng_for_test("m", "t");
        for _ in 0..100 {
            assert_eq!(strat.sample(&mut r1), strat.sample(&mut r2));
        }
    }
}
