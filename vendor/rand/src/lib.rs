//! Offline shim for `rand` 0.8: the `Rng`/`SeedableRng` traits and a
//! seedable `StdRng` built on xoshiro256++.
//!
//! Deterministic for a given seed, but the byte stream differs from
//! rand 0.8's real `StdRng` (ChaCha12). See `vendor/README.md`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator that can be created from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (`[u8; 32]` for [`StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// (the same convention rand_core uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::gen`] (the shim's stand-in for sampling
/// from rand's `Standard` distribution).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from `rng` within the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits into `[0, span)` by widening multiplication.
/// Bias is at most `span / 2^64` — negligible for every span this
/// workspace uses.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full u64 domain: every draw is in range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                let v = self.start + (self.end - self.start) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v < self.end { v } else { <$t>::midpoint(self.start, self.end) }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing generator methods, blanket-implemented for every
/// [`RngCore`] (mirrors rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++ (fast, high
    /// quality; **not** stream-compatible with rand 0.8's ChaCha12).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u = rng.gen_range(3usize..8);
            assert!((3..8).contains(&u));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
