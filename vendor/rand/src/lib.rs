//! Offline shim for `rand` 0.8, stream-compatible with the real crate.
//!
//! `StdRng` reimplements rand 0.8's generator stack from scratch —
//! ChaCha12 block cipher core, `rand_core`'s `BlockRng` buffering, and
//! the PCG32-based `seed_from_u64` expansion — and the sampling methods
//! reproduce rand 0.8.5's algorithms bit-for-bit (multiply-based
//! `Standard` floats, Lemire widening-multiply integer ranges, the
//! `[1, 2)`-mantissa method for float ranges, Bernoulli `gen_bool`).
//! Seeded runs therefore produce **exactly** the same values as the
//! real `rand` 0.8 + `rand_chacha` pair for the API surface below;
//! regenerating the procedural corpus under this shim matches corpora
//! generated against crates.io rand. See `vendor/README.md`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level random source (required methods mirror `rand_core`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A generator that can be created from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (`[u8; 32]` for [`StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with the PCG32
    /// (XSH-RR 64/32) sequence — byte-identical to `rand_core` 0.6's
    /// default `seed_from_u64`.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;

        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(4) {
            // Advance the state first (to get away from the input
            // value, in case it has low Hamming weight).
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::gen`] (the shim's stand-in for sampling
/// from rand's `Standard` distribution). Each impl consumes the same
/// generator words as rand 0.8.5's `Standard`.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // Multiply-based method: 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // rand 0.8 compares against the most significant bit of a u32.
        rng.next_u32() & (1 << 31) != 0
    }
}

/// `Standard` integer impls: types up to 32 bits consume one `u32`
/// word, 64-bit types one `u64` — matching rand's word consumption so
/// the stream position stays aligned.
macro_rules! impl_standard_int_32 {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u32() as $t
            }
        }
    )*};
}
impl_standard_int_32!(u8, u16, u32, i8, i16, i32);

macro_rules! impl_standard_int_64 {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
// usize/isize assume a 64-bit target, like everything else in this
// workspace.
impl_standard_int_64!(u64, i64, usize, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from `rng` within the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer uniform sampling, transcribed from rand 0.8.5's
/// `UniformInt::sample_single_inclusive` (Lemire widening multiply
/// with the conservative zone approximation; u8/u16 use the exact
/// modulus zone, as upstream does).
macro_rules! impl_sample_range_int {
    ($($t:ty, $unsigned:ty, $u_large:ty, $wide:ty);* $(;)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                sample_inclusive_impl::<R, $t, $unsigned, $u_large, $wide>(
                    self.start,
                    self.end - 1,
                    rng,
                )
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start() <= self.end(),
                    "cannot sample empty range"
                );
                sample_inclusive_impl::<R, $t, $unsigned, $u_large, $wide>(
                    *self.start(),
                    *self.end(),
                    rng,
                )
            }
        }
    )*};
}

/// Shared body for the integer impls above. `$u_large` is the word
/// type rand draws (`u32` for ≤ 32-bit integers, `u64` for 64-bit),
/// `$wide` its double-width type for the widening multiply.
fn sample_inclusive_impl<R, T, U, L, W>(low: T, high: T, rng: &mut R) -> T
where
    R: RngCore + ?Sized,
    T: IntSample<U, L>,
    U: UnsignedWord,
    L: UnsignedWord + LargeWord<W, R>,
{
    let range = T::range_to_large(low, high);
    if range == L::ZERO {
        // Full domain: every draw is in range.
        return T::from_large(L::draw(rng));
    }
    let zone = if U::IS_SMALL {
        // u8/u16: exact zone via modulus (upstream's fast path for
        // small types).
        let ints_to_reject = (L::MAX - range + L::ONE) % range;
        L::MAX - ints_to_reject
    } else {
        // Conservative but fast approximation; `- 1` allows the same
        // comparison without bias.
        (range << range.leading_zeros()).wrapping_sub(L::ONE)
    };
    loop {
        let v = L::draw(rng);
        let (hi, lo) = L::wmul(v, range);
        if lo <= zone {
            return T::add_offset(low, hi);
        }
    }
}

/// Word-level operations the Lemire sampler needs.
trait UnsignedWord:
    Copy
    + PartialEq
    + PartialOrd
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Rem<Output = Self>
    + std::ops::Shl<u32, Output = Self>
{
    const ZERO: Self;
    const ONE: Self;
    const MAX: Self;
    /// True for u8/u16 (`MAX <= u16::MAX`), selecting the modulus zone.
    const IS_SMALL: bool;
    fn leading_zeros(self) -> u32;
    fn wrapping_sub(self, rhs: Self) -> Self;
}

macro_rules! impl_unsigned_word {
    ($($t:ty),*) => {$(
        impl UnsignedWord for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            const MAX: Self = <$t>::MAX;
            const IS_SMALL: bool = (<$t>::MAX as u128) <= (u16::MAX as u128);
            fn leading_zeros(self) -> u32 {
                <$t>::leading_zeros(self)
            }
            fn wrapping_sub(self, rhs: Self) -> Self {
                <$t>::wrapping_sub(self, rhs)
            }
        }
    )*};
}
impl_unsigned_word!(u8, u16, u32, u64, usize);

/// Drawing and widening-multiplying the large word type.
trait LargeWord<W, R: RngCore + ?Sized>: Sized {
    fn draw(rng: &mut R) -> Self;
    fn wmul(self, rhs: Self) -> (Self, Self);
}

impl<R: RngCore + ?Sized> LargeWord<u64, R> for u32 {
    fn draw(rng: &mut R) -> u32 {
        rng.next_u32()
    }
    fn wmul(self, rhs: u32) -> (u32, u32) {
        let product = self as u64 * rhs as u64;
        ((product >> 32) as u32, product as u32)
    }
}

impl<R: RngCore + ?Sized> LargeWord<u128, R> for u64 {
    fn draw(rng: &mut R) -> u64 {
        rng.next_u64()
    }
    fn wmul(self, rhs: u64) -> (u64, u64) {
        let product = self as u128 * rhs as u128;
        ((product >> 64) as u64, product as u64)
    }
}

impl<R: RngCore + ?Sized> LargeWord<u128, R> for usize {
    fn draw(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
    fn wmul(self, rhs: usize) -> (usize, usize) {
        let product = self as u128 * rhs as u128;
        ((product >> 64) as usize, product as usize)
    }
}

/// Conversions between a sampled integer type and its large word.
trait IntSample<U, L>: Copy {
    fn range_to_large(low: Self, high: Self) -> L;
    fn from_large(v: L) -> Self;
    fn add_offset(low: Self, hi: L) -> Self;
}

macro_rules! impl_int_sample {
    ($($t:ty, $unsigned:ty, $u_large:ty);* $(;)?) => {$(
        impl IntSample<$unsigned, $u_large> for $t {
            fn range_to_large(low: $t, high: $t) -> $u_large {
                high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large
            }
            fn from_large(v: $u_large) -> $t {
                v as $t
            }
            fn add_offset(low: $t, hi: $u_large) -> $t {
                low.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_int_sample!(
    u8, u8, u32; u16, u16, u32; u32, u32, u32;
    i8, u8, u32; i16, u16, u32; i32, u32, u32;
    u64, u64, u64; i64, u64, u64;
    usize, usize, usize; isize, usize, usize;
);

impl_sample_range_int!(
    u8, u8, u32, u64; u16, u16, u32, u64; u32, u32, u32, u64;
    i8, u8, u32, u64; i16, u16, u32, u64; i32, u32, u32, u64;
    u64, u64, u64, u128; i64, u64, u64, u128;
    usize, usize, usize, u128; isize, usize, usize, u128;
);

/// Float uniform sampling, transcribed from rand 0.8.5's
/// `UniformFloat`: a value in `[1, 2)` built from the top mantissa
/// bits, shifted to `[0, 1)`, then scaled — with upstream's
/// ULP-decrement rejection loop for the half-open form.
macro_rules! impl_sample_range_float {
    ($($t:ty, $uty:ty, $bits_to_discard:expr, $exp_bits:expr);* $(;)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (self.start, self.end);
                assert!(low < high, "cannot sample empty range");
                let mut scale = high - low;
                assert!(scale.is_finite(), "gen_range: range overflow");
                loop {
                    // Value in [1, 2): exponent 0, random mantissa.
                    let mantissa = <$t as StandardDraw<$uty>>::draw(rng) >> $bits_to_discard;
                    let value1_2 = <$t>::from_bits(mantissa | $exp_bits);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                    // Upstream edge-case handling: shave one ULP off
                    // the scale and redraw.
                    scale = <$t>::from_bits(scale.to_bits() - 1);
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let scale = (high - low) / (1.0 - <$t>::EPSILON / 2.0);
                assert!(scale.is_finite(), "gen_range: range overflow");
                let mantissa = <$t as StandardDraw<$uty>>::draw(rng) >> $bits_to_discard;
                let value1_2 = <$t>::from_bits(mantissa | $exp_bits);
                let res = (value1_2 - 1.0) * scale + low;
                if res > high { high } else { res }
            }
        }
    )*};
}

/// Ties a float type to the word type rand draws for it.
trait StandardDraw<U> {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> U;
}
impl StandardDraw<u64> for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl StandardDraw<u32> for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl_sample_range_float!(
    f64, u64, 12u32, 1023u64 << 52;
    f32, u32, 9u32, 127u32 << 23;
);

/// User-facing generator methods, blanket-implemented for every
/// [`RngCore`] (mirrors rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (rand 0.8's Bernoulli:
    /// compare one `u64` draw against `p · 2⁶⁴`; `p == 1` short-circuits
    /// without drawing).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }

    /// Fills `dest` with random data (forwards to [`RngCore`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Number of 32-bit words buffered per core refill (4 ChaCha
    /// blocks, as `rand_chacha` generates).
    const BUF_WORDS: usize = 64;

    /// ChaCha block-cipher core with a 64-bit block counter in state
    /// words 12–13 and a 64-bit stream id in words 14–15 — the layout
    /// `rand_chacha` uses. Each refill emits 4 consecutive blocks.
    #[derive(Debug, Clone)]
    struct ChaChaCore {
        key: [u32; 8],
        counter: u64,
        /// Double-rounds per block (6 for ChaCha12).
        double_rounds: u32,
    }

    impl ChaChaCore {
        fn generate(&mut self, results: &mut [u32; BUF_WORDS]) {
            for block in 0..BUF_WORDS / 16 {
                let initial = [
                    0x6170_7865,
                    0x3320_646e,
                    0x7962_2d32,
                    0x6b20_6574,
                    self.key[0],
                    self.key[1],
                    self.key[2],
                    self.key[3],
                    self.key[4],
                    self.key[5],
                    self.key[6],
                    self.key[7],
                    self.counter as u32,
                    (self.counter >> 32) as u32,
                    0,
                    0,
                ];
                let mut s = initial;
                for _ in 0..self.double_rounds {
                    quarter(&mut s, 0, 4, 8, 12);
                    quarter(&mut s, 1, 5, 9, 13);
                    quarter(&mut s, 2, 6, 10, 14);
                    quarter(&mut s, 3, 7, 11, 15);
                    quarter(&mut s, 0, 5, 10, 15);
                    quarter(&mut s, 1, 6, 11, 12);
                    quarter(&mut s, 2, 7, 8, 13);
                    quarter(&mut s, 3, 4, 9, 14);
                }
                for (w, out) in results[block * 16..(block + 1) * 16].iter_mut().enumerate() {
                    *out = s[w].wrapping_add(initial[w]);
                }
                self.counter = self.counter.wrapping_add(1);
            }
        }
    }

    fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    /// The standard generator: ChaCha12 behind `BlockRng` buffering,
    /// stream-compatible with rand 0.8's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        core: ChaChaCore,
        results: [u32; BUF_WORDS],
        /// Next unread word; `BUF_WORDS` means the buffer is spent.
        index: usize,
    }

    impl StdRng {
        fn with_rounds(seed: [u8; 32], double_rounds: u32) -> StdRng {
            let mut key = [0u32; 8];
            for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                let mut b = [0u8; 4];
                b.copy_from_slice(chunk);
                *k = u32::from_le_bytes(b);
            }
            StdRng {
                core: ChaChaCore {
                    key,
                    counter: 0,
                    double_rounds,
                },
                results: [0; BUF_WORDS],
                index: BUF_WORDS,
            }
        }

        /// Test hook: a ChaCha20 generator for checking the core
        /// against published keystream vectors.
        #[cfg(test)]
        pub(crate) fn chacha20_for_tests(seed: [u8; 32]) -> StdRng {
            StdRng::with_rounds(seed, 10)
        }

        fn generate_and_set(&mut self, index: usize) {
            self.core.generate(&mut self.results);
            self.index = index;
        }
    }

    /// `rand_core::block::BlockRng`'s exact word-consumption rules:
    /// `next_u32` takes one buffered word; `next_u64` takes two
    /// consecutive words (low half first), straddling a refill when
    /// only one word remains.
    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.generate_and_set(0);
            }
            let value = self.results[self.index];
            self.index += 1;
            value
        }

        fn next_u64(&mut self) -> u64 {
            let read_u64 = |results: &[u32; BUF_WORDS], i: usize| {
                (u64::from(results[i + 1]) << 32) | u64::from(results[i])
            };
            let index = self.index;
            if index < BUF_WORDS - 1 {
                self.index += 2;
                read_u64(&self.results, index)
            } else if index >= BUF_WORDS {
                self.generate_and_set(2);
                read_u64(&self.results, 0)
            } else {
                let x = u64::from(self.results[BUF_WORDS - 1]);
                self.generate_and_set(1);
                let y = u64::from(self.results[0]);
                (y << 32) | x
            }
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut read_len = 0;
            while read_len < dest.len() {
                if self.index >= BUF_WORDS {
                    self.generate_and_set(0);
                }
                // fill_via_u32_chunks: little-endian words; a partially
                // consumed word's remaining bytes are discarded.
                let mut consumed = 0;
                for (word, chunk) in self.results[self.index..]
                    .iter()
                    .zip(dest[read_len..].chunks_mut(4))
                {
                    let bytes = word.to_le_bytes();
                    chunk.copy_from_slice(&bytes[..chunk.len()]);
                    consumed += 1;
                    read_len += chunk.len();
                }
                self.index += consumed;
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            StdRng::with_rounds(seed, 6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    /// Published ChaCha20 keystream for the all-zero key and nonce
    /// (draft-agl-tls-chacha20poly1305 / rand_chacha's own test
    /// vector), blocks 0 and 1. Validates the block function, the
    /// little-endian word order, and the per-block counter increment.
    #[test]
    fn chacha_core_matches_published_vectors() {
        const EXPECTED: [u8; 128] = [
            0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86,
            0xbd, 0x28, 0xbd, 0xd2, 0x19, 0xb8, 0xa0, 0x8d, 0xed, 0x1a, 0xa8, 0x36, 0xef, 0xcc,
            0x8b, 0x77, 0x0d, 0xc7, 0xda, 0x41, 0x59, 0x7c, 0x51, 0x57, 0x48, 0x8d, 0x77, 0x24,
            0xe0, 0x3f, 0xb8, 0xd8, 0x4a, 0x37, 0x6a, 0x43, 0xb8, 0xf4, 0x15, 0x18, 0xa1, 0x1c,
            0xc3, 0x87, 0xb6, 0x69, 0xb2, 0xee, 0x65, 0x86, 0x9f, 0x07, 0xe7, 0xbe, 0x55, 0x51,
            0x38, 0x7a, 0x98, 0xba, 0x97, 0x7c, 0x73, 0x2d, 0x08, 0x0d, 0xcb, 0x0f, 0x29, 0xa0,
            0x48, 0xe3, 0x65, 0x69, 0x12, 0xc6, 0x53, 0x3e, 0x32, 0xee, 0x7a, 0xed, 0x29, 0xb7,
            0x21, 0x76, 0x9c, 0xe6, 0x4e, 0x43, 0xd5, 0x71, 0x33, 0xb0, 0x74, 0xd8, 0x39, 0xd5,
            0x31, 0xed, 0x1f, 0x28, 0x51, 0x0a, 0xfb, 0x45, 0xac, 0xe1, 0x0a, 0x1f, 0x4b, 0x79,
            0x4d, 0x6f,
        ];
        let mut rng = StdRng::chacha20_for_tests([0u8; 32]);
        let mut out = [0u8; 128];
        rng.fill_bytes(&mut out);
        assert_eq!(out, EXPECTED);
    }

    /// BlockRng word rules: u32 consumes one word, u64 two (low word
    /// first), and a refill boundary straddle keeps the documented
    /// order.
    #[test]
    fn block_rng_word_consumption() {
        let mut words = StdRng::seed_from_u64(99);
        let expected: Vec<u32> = (0..130).map(|_| words.next_u32()).collect();

        let mut rng = StdRng::seed_from_u64(99);
        assert_eq!(rng.next_u32(), expected[0]);
        let w = rng.next_u64();
        assert_eq!(w as u32, expected[1]);
        assert_eq!((w >> 32) as u32, expected[2]);

        // Drive to the last word of the 64-word buffer, then straddle:
        // low half is the final buffered word, high half the first word
        // of the next refill.
        let mut rng = StdRng::seed_from_u64(99);
        for e in &expected[..63] {
            assert_eq!(rng.next_u32(), *e);
        }
        let w = rng.next_u64();
        assert_eq!(w as u32, expected[63]);
        assert_eq!((w >> 32) as u32, expected[64]);
        // index is now 1 into the refilled buffer.
        assert_eq!(rng.next_u32(), expected[65]);
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let g = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
            let u = rng.gen_range(3usize..8);
            assert!((3..8).contains(&u));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn degenerate_ranges() {
        let mut rng = StdRng::seed_from_u64(13);
        assert_eq!(rng.gen_range(5usize..=5), 5);
        assert_eq!(rng.gen_range(7usize..8), 7);
        // Full-domain inclusive range exercises the `range == 0` path.
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        // p = 1 short-circuits without consuming a draw.
        let mut x = StdRng::seed_from_u64(5);
        let mut y = StdRng::seed_from_u64(5);
        assert!(x.gen_bool(1.0));
        assert_eq!(x.next_u64(), y.next_u64());
    }
}
