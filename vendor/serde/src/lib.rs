//! Offline shim for `serde`: `Serialize`/`Deserialize` traits over a
//! JSON-shaped [`Value`] model, plus impls for the std types this
//! workspace serializes. The `derive` feature re-exports the
//! `serde_derive` proc macros, mirroring real serde's feature layout.
//!
//! Unlike real serde there is no visitor-based data model: serializing
//! builds a [`Value`] tree and deserializing reads one. `serde_json`
//! (the sibling shim) turns [`Value`] into JSON text and back.
//!
//! See `vendor/README.md` for scope and caveats.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the shim's entire data model.
///
/// Integers keep full 64-bit precision via `i128` storage; floats are
/// `f64`. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// An integer (covers the full `u64` and `i64` domains).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object: ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in an object (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Short name of the variant, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error: a plain message, like `serde::de::Error`'s
/// `custom` construction.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }

    /// Convenience: "expected X for Y, got Z".
    pub fn expected(what: &str, context: &str, got: &Value) -> Error {
        Error::custom(format!(
            "expected {what} for {context}, got {}",
            got.kind_name()
        ))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be turned into a [`Value`].
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Reads `self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", "bool", other)),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let wide = match v {
                    Value::Int(i) => *i,
                    // Tolerate integral floats: "2.0" in hand-written JSON.
                    Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.2e18 => *f as i128,
                    other => return Err(Error::expected("integer", stringify!($t), other)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(format!("{wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    // serde_json writes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s
                .chars()
                .next()
                .ok_or_else(|| Error::custom("empty string for char"))?),
            other => Err(Error::expected("1-char string", "char", other)),
        }
    }
}

// ---------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

// Mirrors real serde's `rc` feature: serializing an `Arc` serializes
// the pointee (shared structure is not preserved); deserializing
// allocates a fresh one.
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<std::sync::Arc<T>, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        v.as_arr()
            .ok_or_else(|| Error::expected("array", "Vec", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of {N} items, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) => $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_arr()
                    .ok_or_else(|| Error::expected("array", "tuple", v))?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, got {} items", $len, items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0) => 1;
    (A: 0, B: 1) => 2;
    (A: 0, B: 1, C: 2) => 3;
    (A: 0, B: 1, C: 2, D: 3) => 4;
    (A: 0, B: 1, C: 2, D: 3, E: 4) => 5;
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5) => 6;
}

/// Serializes a map key: must come out as a string or integer (JSON
/// object keys are strings; integer keys are stringified like real
/// serde_json does).
fn key_to_string(key: &Value) -> Result<String, Error> {
    match key {
        Value::Str(s) => Ok(s.clone()),
        Value::Int(i) => Ok(i.to_string()),
        other => Err(Error::expected("string-like key", "map key", other)),
    }
}

/// Deserializes a map key from its string form: tries the string
/// directly, then an integer reinterpretation (for integer-keyed
/// maps).
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    match K::from_value(&Value::Str(key.to_owned())) {
        Ok(k) => Ok(k),
        Err(first) => match key.parse::<i128>() {
            Ok(i) => K::from_value(&Value::Int(i)),
            Err(_) => Err(first),
        },
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(&k.to_value())
                    .unwrap_or_else(|e| format!("<unserializable key: {e}>"));
                (key, v.to_value())
            })
            .collect();
        // HashMap iteration order is unstable; sort for deterministic
        // output.
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(pairs)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<HashMap<K, V>, Error> {
        v.as_obj()
            .ok_or_else(|| Error::expected("object", "HashMap", v))?
            .iter()
            .map(|(k, val)| Ok((key_from_string::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| {
                    let key = key_to_string(&k.to_value())
                        .unwrap_or_else(|e| format!("<unserializable key: {e}>"));
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<K, V>, Error> {
        v.as_obj()
            .ok_or_else(|| Error::expected("object", "BTreeMap", v))?
            .iter()
            .map(|(k, val)| Ok((key_from_string::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        assert_eq!(Vec::<(usize, f64)>::from_value(&v.to_value()).unwrap(), v);

        let arr = [1u32, 2, 3];
        assert_eq!(<[u32; 3]>::from_value(&arr.to_value()).unwrap(), arr);

        let opt: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&opt.to_value()).unwrap(), None);

        let mut map = HashMap::new();
        map.insert(42u64, "x".to_string());
        let back = HashMap::<u64, String>::from_value(&map.to_value()).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn arc_roundtrips_transparently() {
        let a = std::sync::Arc::new("shared".to_string());
        // The Arc is invisible on the wire: same Value as the pointee.
        assert_eq!(a.to_value(), "shared".to_string().to_value());
        let back = std::sync::Arc::<String>::from_value(&a.to_value()).unwrap();
        assert_eq!(*back, "shared");
        let v: Vec<std::sync::Arc<u64>> = vec![std::sync::Arc::new(7)];
        let back = Vec::<std::sync::Arc<u64>>::from_value(&v.to_value()).unwrap();
        assert_eq!(*back[0], 7);
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(bool::from_value(&Value::Null).is_err());
        assert!(<[u32; 3]>::from_value(&vec![1u32].to_value()).is_err());
    }
}
