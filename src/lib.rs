//! # threedess — facade crate for the 3DESS workspace
//!
//! Re-exports the public API of every subsystem so examples and
//! downstream users can depend on a single crate:
//!
//! ```
//! use threedess::geom::primitives;
//! let cube = primitives::box_mesh(threedess::geom::Vec3::ONE);
//! assert!(cube.is_watertight());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tdess_cluster as cluster;
pub use tdess_core as core;
pub use tdess_dataset as dataset;
pub use tdess_eval as eval;
pub use tdess_features as features;
pub use tdess_geom as geom;
pub use tdess_index as index;
pub use tdess_net as net;
pub use tdess_obs as obs;
pub use tdess_skeleton as skeleton;
pub use tdess_voxel as voxel;
