//! `tdess` — command-line interface to the 3DESS shape-search system.
//!
//! ```text
//! tdess corpus <dir>                         generate & export the 113-shape corpus
//! tdess synth  <db> --count N [options]      generate a large synthetic database
//!        --count N                shapes to generate    (required)
//!        --seed S                 RNG seed              (default 2004)
//!        --resolution N           voxel resolution      (default 48)
//!        --format json|binary     snapshot format       (default binary)
//! tdess index  <db.json> <mesh>...           create/extend a database from STL/OFF files
//! tdess convert <src> <dst> [--format F]     re-encode a snapshot (JSON <-> TDSS binary)
//!        --format json|binary     target format         (default: the other one)
//! tdess info   <db.json>                     database statistics
//! tdess query  <db.json> <mesh> [options]    query by example
//!        --kind mi|gp|pm|ev|ho    feature vector        (default pm)
//!        --top K                  top-K results         (default 10)
//!        --threshold S            similarity threshold instead of top-K
//!        --render DIR             write a PGM thumbnail per result
//! tdess multistep <db.json> <mesh> [options] multi-step search
//!        --steps a,b,...          features per step     (default pm,ev)
//!        --candidates K           candidate-set size    (default 30)
//!        --present R              presented results     (default 10)
//! tdess browse <db.json> [--kind pm]         print the browsing hierarchy
//! tdess serve  <db.json> [options]           serve the database over TCP
//!        --addr HOST:PORT         bind address          (default 127.0.0.1:7333)
//!        --workers N              worker threads        (default 4)
//!        --queue N                accept-queue depth    (default 64)
//!        --metrics-addr HOST:PORT also serve HTTP `GET /metrics`
//!                                 (Prometheus), `/healthz` (liveness),
//!                                 and `/traces` (Chrome trace JSON)
//!        --cache-bytes N          extraction-cache byte budget (default 268435456)
//!        --cache-off              disable the extraction cache
//!        --trace-sample N         flight-recorder sampling: keep 1-in-N
//!                                 non-slow, non-error traces (default 16;
//!                                 1 keeps everything)
//! tdess remote <addr> <verb> [options]       talk to a running server
//!        verbs: query <mesh>, multistep <mesh>, info, stats, ping,
//!               trace [--last N] [--slow] [--format chrome|jsonl]
//!        (query/multistep take the same flags as their local forms;
//!        trace pulls the server's flight recorder — `--slow` keeps
//!        only slow/error traces, `chrome` output loads in Perfetto)
//! ```
//!
//! `query`, `multistep`, `info`, and every `remote` verb accept
//! `--json`: machine-readable output serializing the same payload
//! types the wire protocol uses ([`HitsReport`], [`InfoReport`],
//! [`tdess_net::StatsReport`]).
//!
//! Structured log events go to stderr as JSON lines; `TDESS_LOG`
//! (off|error|warn|info|debug|trace, default info) filters them —
//! `TDESS_LOG=warn` silences the operational banner, `TDESS_LOG=debug`
//! shows per-connection and per-request lifecycle events.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use threedess::cluster::HierarchyParams;
use threedess::core::{
    load_from_path, save_to_path_as, sniff_format, BrowseTree, CacheConfig, MultiStepPlan, Query,
    QueryMode, SearchServer, ServerMetrics, ShapeDatabase, SnapshotFormat, Weights,
};
use threedess::dataset::{build_corpus, synth_corpus};
use threedess::features::{FeatureExtractor, FeatureKind};
use threedess::geom::io::{load_mesh, save_mesh};
use threedess::geom::{render, RenderParams};
use threedess::net::{
    HitsReport, InfoReport, NetClient, NetClientConfig, NetServer, NetServerConfig,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "corpus" => cmd_corpus(&args[1..]),
        "synth" => cmd_synth(&args[1..]),
        "index" => cmd_index(&args[1..]),
        "convert" => cmd_convert(&args[1..]),
        "info" => cmd_info(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "multistep" => cmd_multistep(&args[1..]),
        "browse" => cmd_browse(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "remote" => cmd_remote(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: tdess <corpus|synth|index|convert|info|query|multistep|browse|serve|remote|help> ... (see `tdess help`)"
        .into()
}

/// Parses a `--format json|binary` flag value.
fn parse_format(s: &str) -> Result<SnapshotFormat, String> {
    match s {
        "json" => Ok(SnapshotFormat::Json),
        "binary" | "bin" => Ok(SnapshotFormat::Binary),
        other => Err(format!(
            "unknown snapshot format `{other}` (expected json|binary)"
        )),
    }
}

/// Parses a feature-kind flag value.
fn parse_kind(s: &str) -> Result<FeatureKind, String> {
    match s {
        "mi" => Ok(FeatureKind::MomentInvariants),
        "gp" => Ok(FeatureKind::GeometricParams),
        "pm" => Ok(FeatureKind::PrincipalMoments),
        "ev" => Ok(FeatureKind::Eigenvalues),
        "ho" => Ok(FeatureKind::HigherOrder),
        other => Err(format!(
            "unknown feature kind `{other}` (expected mi|gp|pm|ev|ho)"
        )),
    }
}

/// Parsed command line: positional arguments and `--flag value` pairs.
type ParsedArgs = (Vec<String>, Vec<(String, String)>);

/// Flags that take no value; present means "true".
const BOOL_FLAGS: &[&str] = &["json", "cache-off", "slow"];

/// Extracts `--flag value` pairs (and valueless [`BOOL_FLAGS`]);
/// returns (positional, flags).
fn split_flags(args: &[String]) -> Result<ParsedArgs, String> {
    let mut pos = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if BOOL_FLAGS.contains(&name) {
                flags.push((name.to_string(), "true".to_string()));
                continue;
            }
            let v = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.push((name.to_string(), v.clone()));
        } else {
            pos.push(a.clone());
        }
    }
    Ok((pos, flags))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn has_flag(flags: &[(String, String)], name: &str) -> bool {
    flag(flags, name).is_some()
}

/// Serializes a wire-protocol payload to the one-line JSON the
/// `--json` flag promises.
fn print_json<T: serde::Serialize>(value: &T) -> Result<(), String> {
    println!(
        "{}",
        serde_json::to_string(value).map_err(|e| e.to_string())?
    );
    Ok(())
}

/// Parses the shared `--kind/--top/--threshold` query flags.
fn parse_query_flags(flags: &[(String, String)]) -> Result<Query, String> {
    let kind = parse_kind(flag(flags, "kind").unwrap_or("pm"))?;
    let mode = if let Some(t) = flag(flags, "threshold") {
        QueryMode::Threshold(t.parse::<f64>().map_err(|e| e.to_string())?)
    } else {
        let k = flag(flags, "top")
            .map(|v| v.parse::<usize>().map_err(|e| e.to_string()))
            .transpose()?
            .unwrap_or(10);
        QueryMode::TopK(k)
    };
    Ok(Query {
        kind,
        weights: Weights::unit(),
        mode,
    })
}

/// Parses the shared `--steps/--candidates/--present` plan flags.
fn parse_plan_flags(flags: &[(String, String)]) -> Result<MultiStepPlan, String> {
    let steps: Vec<FeatureKind> = flag(flags, "steps")
        .unwrap_or("pm,ev")
        .split(',')
        .map(parse_kind)
        .collect::<Result<_, _>>()?;
    let candidates = flag(flags, "candidates")
        .map(|v| v.parse::<usize>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(30);
    let presented = flag(flags, "present")
        .map(|v| v.parse::<usize>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(10);
    Ok(MultiStepPlan {
        steps,
        candidates,
        presented,
    })
}

fn cmd_corpus(args: &[String]) -> Result<(), String> {
    let dir: PathBuf = args.first().ok_or("usage: tdess corpus <dir>")?.into();
    std::fs::create_dir_all(dir.join("meshes")).map_err(|e| e.to_string())?;
    let corpus = build_corpus(2004);
    for s in &corpus.shapes {
        let p = dir.join("meshes").join(format!("{}.off", s.name));
        save_mesh(&s.mesh, &p).map_err(|e| e.to_string())?;
    }
    println!(
        "wrote {} OFF files to {}",
        corpus.shapes.len(),
        dir.join("meshes").display()
    );
    Ok(())
}

fn cmd_index(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    let [db_path, meshes @ ..] = &pos[..] else {
        return Err(
            "usage: tdess index <db.json> <mesh>... [--resolution N] [--format json|binary]".into(),
        );
    };
    if meshes.is_empty() {
        return Err("no mesh files given".into());
    }
    let db_path = Path::new(db_path);
    // An existing database keeps its on-disk format; a new one
    // defaults to JSON (override with --format).
    let (mut db, format) = if db_path.exists() {
        let format = sniff_format(db_path).unwrap_or(SnapshotFormat::Json);
        (load_from_path(db_path).map_err(|e| e.to_string())?, format)
    } else {
        let resolution = flag(&flags, "resolution")
            .map(|v| v.parse::<usize>().map_err(|e| e.to_string()))
            .transpose()?
            .unwrap_or(48);
        let db = ShapeDatabase::new(FeatureExtractor {
            voxel_resolution: resolution,
            ..Default::default()
        });
        (db, SnapshotFormat::Json)
    };
    let format = flag(&flags, "format")
        .map(parse_format)
        .transpose()?
        .unwrap_or(format);
    for m in meshes {
        let path = Path::new(m);
        let mesh = load_mesh(path).map_err(|e| format!("{m}: {e}"))?;
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("shape")
            .to_string();
        let id = db
            .insert(name.clone(), mesh)
            .map_err(|e| format!("{m}: {e}"))?;
        println!("indexed {name} as id {id}");
    }
    save_to_path_as(&db, db_path, format).map_err(|e| e.to_string())?;
    println!(
        "database saved to {} ({} shapes)",
        db_path.display(),
        db.len()
    );
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    let [src, dst] = &pos[..] else {
        return Err("usage: tdess convert <src> <dst> [--format json|binary]".into());
    };
    let (src, dst) = (Path::new(src), Path::new(dst));
    let from = sniff_format(src).ok_or_else(|| format!("cannot read {}", src.display()))?;
    // Without --format, convert to the other encoding — that is what
    // "convert" means for a two-format system.
    let to = flag(&flags, "format")
        .map(parse_format)
        .transpose()?
        .unwrap_or(match from {
            SnapshotFormat::Json => SnapshotFormat::Binary,
            SnapshotFormat::Binary => SnapshotFormat::Json,
        });
    let db = load_from_path(src).map_err(|e| e.to_string())?;
    save_to_path_as(&db, dst, to).map_err(|e| e.to_string())?;
    println!(
        "converted {} ({from:?}) -> {} ({to:?}, {} shapes)",
        src.display(),
        dst.display(),
        db.len()
    );
    Ok(())
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    let db_path = pos
        .first()
        .ok_or("usage: tdess synth <db> --count N [--seed S] [--resolution N] [--format F]")?;
    let count = flag(&flags, "count")
        .ok_or("synth needs --count N")?
        .parse::<usize>()
        .map_err(|e| e.to_string())?;
    let seed = flag(&flags, "seed")
        .map(|v| v.parse::<u64>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(2004);
    let resolution = flag(&flags, "resolution")
        .map(|v| v.parse::<usize>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(48);
    let format = flag(&flags, "format")
        .map(parse_format)
        .transpose()?
        .unwrap_or(SnapshotFormat::Binary);
    let extractor = FeatureExtractor {
        voxel_resolution: resolution,
        ..Default::default()
    };
    let shapes = synth_corpus(&extractor, seed, count).map_err(|e| e.to_string())?;
    let mut db = ShapeDatabase::new(extractor);
    db.insert_batch_precomputed(shapes);
    save_to_path_as(&db, Path::new(db_path), format).map_err(|e| e.to_string())?;
    println!("wrote {count} synthetic shapes (seed {seed}) to {db_path} ({format:?})");
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    let db_path = pos.first().ok_or("usage: tdess info <db.json> [--json]")?;
    let db = load_from_path(Path::new(db_path)).map_err(|e| e.to_string())?;
    if has_flag(&flags, "json") {
        return print_json(&InfoReport::for_db(&db));
    }
    println!("shapes: {}", db.len());
    println!(
        "extractor: voxel resolution {}, spectrum dim {}",
        db.extractor().voxel_resolution,
        db.extractor().spectrum_dim
    );
    for kind in FeatureKind::ALL {
        println!(
            "  {:22} dim {:2}  dmax {:.4}",
            kind.label(),
            db.extractor().dim(kind),
            db.dmax(kind)
        );
    }
    for s in db.shapes().iter().take(20) {
        println!(
            "  #{:<4} {:24} {:6} tris",
            s.id,
            s.name,
            s.mesh.num_triangles()
        );
    }
    if db.len() > 20 {
        println!("  ... and {} more", db.len() - 20);
    }
    // Server-tier health check: probe every feature space with the
    // first shape's own features and report the query metrics.
    if !db.is_empty() {
        let server = SearchServer::new(db);
        let probe = server.snapshot().shapes()[0].features.clone();
        for kind in FeatureKind::ALL {
            server.search_features(&probe, &Query::top_k(kind, 5));
        }
        print_metrics(&server.metrics());
    }
    Ok(())
}

/// Prints the server's query metrics in the shared CLI footer format.
/// Latency classes with no samples are absent (`None`) and skipped.
fn print_metrics(m: &ServerMetrics) {
    println!("server metrics:");
    println!("  queries served: {}", m.queries_served);
    for (label, lat) in [
        ("one-shot", &m.one_shot),
        ("multi-step", &m.multi_step),
        ("transport", &m.transport),
    ] {
        if let Some(lat) = lat {
            print_latency(2, label, lat);
        }
    }
    println!("  index: {}", m.index_stats);
}

/// Prints one latency summary line (extremes, mean, quantiles).
fn print_latency(indent: usize, label: &str, lat: &threedess::core::LatencyStats) {
    println!(
        "{:indent$}{:18} min {:.3} ms  p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms  max {:.3} ms  mean {:.3} ms  ({} samples)",
        "",
        label,
        lat.min_s * 1e3,
        lat.p50_s * 1e3,
        lat.p90_s * 1e3,
        lat.p99_s * 1e3,
        lat.max_s * 1e3,
        lat.mean_s * 1e3,
        lat.count
    );
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    let [db_path, mesh_path] = &pos[..] else {
        return Err(
            "usage: tdess query <db.json> <mesh> [--kind pm] [--top 10 | --threshold 0.9]".into(),
        );
    };
    let db = load_from_path(Path::new(db_path)).map_err(|e| e.to_string())?;
    let mesh = load_mesh(Path::new(mesh_path)).map_err(|e| e.to_string())?;
    let query = parse_query_flags(&flags)?;
    let server = SearchServer::new(db);
    let hits = server
        .search_mesh(&mesh, &query)
        .map_err(|e| e.to_string())?;
    let db = server.snapshot();
    if has_flag(&flags, "json") {
        return print_json(&HitsReport::new(&db, &hits));
    }
    println!("{} results ({})", hits.len(), query.kind.label());
    for (rank, h) in hits.iter().enumerate() {
        let s = db.get(h.id).expect("hit exists");
        println!(
            "{:3}. {:24} sim {:.3}  dist {:.4}",
            rank + 1,
            s.name,
            h.similarity,
            h.distance
        );
    }
    print_metrics(&server.metrics());
    // Optional result thumbnails — the SERVER tier's "3D view
    // generation" for terminals.
    if let Some(dir) = flag(&flags, "render") {
        let dir = Path::new(dir);
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        for (rank, h) in hits.iter().enumerate() {
            let s = db.get(h.id).expect("hit exists");
            let img = render(&s.mesh, &RenderParams::default());
            let p = dir.join(format!("{:02}-{}.pgm", rank + 1, s.name));
            img.save_pgm(&p).map_err(|e| e.to_string())?;
        }
        println!("thumbnails written to {}", dir.display());
    }
    Ok(())
}

fn cmd_multistep(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    let [db_path, mesh_path] = &pos[..] else {
        return Err("usage: tdess multistep <db.json> <mesh> [--steps pm,ev] [--candidates 30] [--present 10]".into());
    };
    let db = load_from_path(Path::new(db_path)).map_err(|e| e.to_string())?;
    let mesh = load_mesh(Path::new(mesh_path)).map_err(|e| e.to_string())?;
    let plan = parse_plan_flags(&flags)?;
    let server = SearchServer::new(db);
    let hits = server
        .multi_step_mesh(&mesh, &plan)
        .map_err(|e| e.to_string())?;
    let db = server.snapshot();
    if has_flag(&flags, "json") {
        return print_json(&HitsReport::new(&db, &hits));
    }
    println!("{} results (multi-step)", hits.len());
    for (rank, h) in hits.iter().enumerate() {
        let s = db.get(h.id).expect("hit exists");
        println!("{:3}. {:24} sim {:.3}", rank + 1, s.name, h.similarity);
    }
    print_metrics(&server.metrics());
    Ok(())
}

fn cmd_browse(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    let db_path = pos
        .first()
        .ok_or("usage: tdess browse <db.json> [--kind pm]")?;
    let db = load_from_path(Path::new(db_path)).map_err(|e| e.to_string())?;
    if db.is_empty() {
        return Err("database is empty".into());
    }
    let kind = parse_kind(flag(&flags, "kind").unwrap_or("pm"))?;
    let tree = BrowseTree::build(&db, kind, &HierarchyParams::default(), 7);
    print_node(&db, &tree, &mut tree.cursor(), 0);
    Ok(())
}

fn print_node(
    db: &ShapeDatabase,
    tree: &BrowseTree,
    cursor: &mut threedess::core::BrowseCursor<'_>,
    depth: usize,
) {
    let indent = "  ".repeat(depth);
    if cursor.is_leaf() {
        for id in cursor.shape_ids() {
            println!("{indent}- {}", db.get(id).expect("id exists").name);
        }
        return;
    }
    let n = cursor.num_children();
    for c in 0..n {
        let mut child = tree.cursor();
        for &step in cursor.path() {
            child.descend(step);
        }
        child.descend(c);
        println!("{indent}+ cluster {c} ({} shapes)", child.shape_ids().len());
        print_node(db, tree, &mut child, depth + 1);
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    let db_path = pos.first().ok_or(
        "usage: tdess serve <db.json> [--addr 127.0.0.1:7333] [--workers 4] [--queue 64] [--metrics-addr 127.0.0.1:0] [--cache-bytes N] [--cache-off] [--trace-sample N]",
    )?;
    let db = load_from_path(Path::new(db_path)).map_err(|e| e.to_string())?;
    let addr = flag(&flags, "addr").unwrap_or("127.0.0.1:7333");
    let mut cfg = NetServerConfig::default();
    if let Some(w) = flag(&flags, "workers") {
        cfg.workers = w.parse::<usize>().map_err(|e| e.to_string())?;
    }
    if let Some(q) = flag(&flags, "queue") {
        cfg.queue_depth = q.parse::<usize>().map_err(|e| e.to_string())?;
    }
    // Tail-sampling rate for the flight recorder: keep 1-in-N traces
    // that are neither slow nor errored (those are always kept).
    // `--trace-sample 1` retains everything — handy for smoke tests
    // and short debugging sessions.
    if let Some(s) = flag(&flags, "trace-sample") {
        cfg.trace_sample_one_in = s
            .parse::<u64>()
            .map_err(|e| format!("--trace-sample: {e}"))?;
    }
    let shapes = db.len();
    // The extraction cache is on by default; `--cache-off` restores
    // the uncached extract-every-query behaviour.
    let search = if has_flag(&flags, "cache-off") {
        SearchServer::new(db)
    } else {
        let mut cache_cfg = CacheConfig::default();
        if let Some(b) = flag(&flags, "cache-bytes") {
            cache_cfg.max_bytes = b
                .parse::<u64>()
                .map_err(|e| format!("--cache-bytes: {e}"))?;
        }
        SearchServer::with_cache(db, cache_cfg)
    };
    let server = NetServer::bind(addr, search.clone(), cfg).map_err(|e| e.to_string())?;
    // Optional HTTP side-channel (Prometheus exposition, liveness,
    // request traces); kept alive for the life of the process by the
    // binding below.
    let metrics = match flag(&flags, "metrics-addr") {
        Some(maddr) => {
            let recorder = server.recorder();
            let health = search.clone();
            Some(
                threedess::net::MetricsServer::bind_routes(
                    maddr,
                    vec![
                        threedess::net::MetricsRoute::metrics(server.metrics_renderer()),
                        threedess::net::MetricsRoute::healthz(std::sync::Arc::new(move || {
                            health.metrics().snapshot_swaps
                        })),
                        threedess::net::MetricsRoute::traces(std::sync::Arc::new(move || {
                            tdess_obs::chrome_trace_json(&recorder.snapshot(0, false))
                        })),
                    ],
                )
                .map_err(|e| e.to_string())?,
            )
        }
        None => None,
    };
    // The first lines of output are machine-parseable: smoke tests and
    // scripts read the actual (possibly ephemeral) addresses from
    // them. Banner writes must not take the server down if the
    // launcher closes our stdout (`println!` panics on a broken pipe).
    {
        use std::io::Write;
        let mut out = std::io::stdout();
        let _ = writeln!(out, "listening on {}", server.local_addr());
        if let Some(m) = &metrics {
            let _ = writeln!(out, "metrics on {}", m.local_addr());
        }
        let _ = out.flush();
    }
    // Operational chatter goes through the leveled event API so
    // `TDESS_LOG=warn` runs a quiet server.
    tdess_obs::event!(
        Info,
        "tdess::serve",
        "serving {shapes} shapes from {db_path}"
    );
    // Serve until the process is terminated. Inserts mutate only the
    // in-memory snapshot; the file on disk is the startup state.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_remote(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    let usage =
        "usage: tdess remote <addr> <query <mesh>|multistep <mesh>|info|stats|trace|ping> [flags]";
    let [addr, verb, rest @ ..] = &pos[..] else {
        return Err(usage.into());
    };
    let mut client =
        NetClient::connect(addr.as_str(), NetClientConfig::default()).map_err(|e| e.to_string())?;
    let json = has_flag(&flags, "json");
    match verb.as_str() {
        "query" => {
            let mesh_path = rest.first().ok_or(usage)?;
            let mesh = load_mesh(Path::new(mesh_path)).map_err(|e| e.to_string())?;
            let query = parse_query_flags(&flags)?;
            let report = client
                .search_mesh(&mesh, &query)
                .map_err(|e| e.to_string())?;
            if json {
                return print_json(&report);
            }
            println!("{} results ({})", report.hits.len(), query.kind.label());
            print_named_hits(&report);
            Ok(())
        }
        "multistep" => {
            let mesh_path = rest.first().ok_or(usage)?;
            let mesh = load_mesh(Path::new(mesh_path)).map_err(|e| e.to_string())?;
            let plan = parse_plan_flags(&flags)?;
            let report = client.multi_step(&mesh, &plan).map_err(|e| e.to_string())?;
            if json {
                return print_json(&report);
            }
            println!("{} results (multi-step)", report.hits.len());
            print_named_hits(&report);
            Ok(())
        }
        "info" => {
            let report = client.info().map_err(|e| e.to_string())?;
            if json {
                return print_json(&report);
            }
            println!("shapes: {}", report.shapes);
            println!(
                "extractor: voxel resolution {}, spectrum dim {}",
                report.voxel_resolution, report.spectrum_dim
            );
            for s in &report.spaces {
                println!("  {:22?} dim {:2}  dmax {:.4}", s.kind, s.dim, s.dmax);
            }
            Ok(())
        }
        "stats" => {
            let report = client.stats().map_err(|e| e.to_string())?;
            if json {
                return print_json(&report);
            }
            println!("shapes: {}", report.shapes);
            print_metrics(&report.server);
            let t = &report.transport;
            println!(
                "transport: {} accepted, {} rejected, {} frames decoded, {} decode errors, {} requests served",
                t.connections_accepted,
                t.connections_rejected,
                t.frames_decoded,
                t.decode_errors,
                t.requests_served
            );
            if let Some(c) = &report.cache {
                println!(
                    "cache: {} hits, {} misses, {} coalesced, {} evictions, {} entries, {}/{} bytes",
                    c.hits,
                    c.misses,
                    c.coalesced_waits,
                    c.evictions,
                    c.entries,
                    c.resident_bytes,
                    c.capacity_bytes
                );
            } else {
                println!("cache: off");
            }
            if !report.stages.is_empty() {
                println!("pipeline stages:");
                for s in &report.stages {
                    print_latency(2, &s.stage, &s.latency);
                }
            }
            Ok(())
        }
        "trace" => {
            let last = match flag(&flags, "last") {
                Some(v) => v.parse::<usize>().map_err(|e| format!("--last: {e}"))?,
                None => 0,
            };
            let report = client
                .traces(last, has_flag(&flags, "slow"))
                .map_err(|e| e.to_string())?;
            match flag(&flags, "format").unwrap_or("chrome") {
                // Perfetto / chrome://tracing loadable; pipe to a file.
                "chrome" => {
                    println!("{}", tdess_obs::chrome_trace_json(&report.traces));
                    Ok(())
                }
                // One RequestTrace JSON object per line, for jq-style
                // filtering.
                "jsonl" => {
                    for t in &report.traces {
                        println!(
                            "{}",
                            serde_json::to_string(t.as_ref()).map_err(|e| e.to_string())?
                        );
                    }
                    Ok(())
                }
                other => Err(format!("unknown trace format `{other}` (chrome|jsonl)")),
            }
        }
        "ping" => {
            client.ping().map_err(|e| e.to_string())?;
            println!("pong");
            Ok(())
        }
        other => Err(format!("unknown remote verb `{other}`\n{usage}")),
    }
}

/// Prints a ranked hit list the way the local query verbs do.
fn print_named_hits(report: &HitsReport) {
    for (rank, h) in report.hits.iter().enumerate() {
        println!(
            "{:3}. {:24} sim {:.3}  dist {:.4}",
            rank + 1,
            h.name,
            h.similarity,
            h.distance
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parsing() {
        assert_eq!(parse_kind("pm").unwrap(), FeatureKind::PrincipalMoments);
        assert_eq!(parse_kind("ev").unwrap(), FeatureKind::Eigenvalues);
        assert!(parse_kind("xx").is_err());
    }

    #[test]
    fn flag_splitting() {
        let args: Vec<String> = ["a.json", "--top", "5", "b.off", "--kind", "mi"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (pos, flags) = split_flags(&args).unwrap();
        assert_eq!(pos, vec!["a.json", "b.off"]);
        assert_eq!(flag(&flags, "top"), Some("5"));
        assert_eq!(flag(&flags, "kind"), Some("mi"));
        assert_eq!(flag(&flags, "missing"), None);
        // Trailing flag without value errors.
        let bad: Vec<String> = ["--top".to_string()].to_vec();
        assert!(split_flags(&bad).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&["frobnicate".to_string()]).is_err());
        assert!(run(&[]).is_err());
        assert!(run(&["help".to_string()]).is_ok());
    }
}
