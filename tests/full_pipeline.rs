//! End-to-end integration: corpus generation → feature extraction →
//! database indexing → query processing → persistence, spanning every
//! crate in the workspace.

use std::sync::OnceLock;

use threedess::core::{load, multi_step_search, save, MultiStepPlan, Query, ShapeDatabase};
use threedess::dataset::build_corpus;
use threedess::features::{FeatureExtractor, FeatureKind};
use threedess::geom::{Mat3, Vec3};

const RES: usize = 20;

/// A database over the first 40 corpus shapes, built once.
type DbWithMeta = (ShapeDatabase, Vec<(String, Option<usize>)>);

fn small_db() -> &'static DbWithMeta {
    static DB: OnceLock<DbWithMeta> = OnceLock::new();
    DB.get_or_init(|| {
        let corpus = build_corpus(2004);
        let mut db = ShapeDatabase::new(FeatureExtractor {
            voxel_resolution: RES,
            ..Default::default()
        });
        let mut meta = Vec::new();
        for s in corpus.shapes.iter().take(40) {
            db.insert(s.name.clone(), s.mesh.clone()).unwrap();
            meta.push((s.name.clone(), s.group));
        }
        (db, meta)
    })
}

#[test]
fn every_inserted_shape_is_its_own_nearest_neighbor() {
    let (db, _) = small_db();
    for s in db.shapes() {
        for kind in FeatureKind::ALL {
            let hits = db.search(&s.features, &Query::top_k(kind, 1));
            assert_eq!(hits[0].distance, 0.0, "{}: {kind:?}", s.name);
        }
    }
}

#[test]
fn posed_query_finds_the_stored_original() {
    let (db, _) = small_db();
    // Take a stored shape's mesh, re-pose it, query by example: the
    // original must rank first (features are pose-invariant).
    let victim = db.shapes()[5].clone();
    let mut mesh = victim.mesh.clone();
    mesh.rotate(&Mat3::rotation_axis_angle(Vec3::new(0.4, -1.0, 0.2), 2.2));
    mesh.translate(Vec3::new(40.0, -13.0, 8.0));
    let hits = db
        .search_mesh(&mesh, &Query::top_k(FeatureKind::MomentInvariants, 3))
        .unwrap();
    assert_eq!(hits[0].id, victim.id, "re-posed query missed its original");
    assert!(hits[0].distance < 1e-6, "distance {}", hits[0].distance);
}

#[test]
fn multi_step_pipeline_runs_end_to_end() {
    let (db, _) = small_db();
    let q = db.shapes()[0].features.clone();
    let plan = MultiStepPlan {
        steps: vec![FeatureKind::PrincipalMoments, FeatureKind::Eigenvalues],
        candidates: 15,
        presented: 5,
    };
    let hits = multi_step_search(db, &q, &plan);
    assert_eq!(hits.len(), 5);
    assert_eq!(
        hits[0].id,
        db.shapes()[0].id,
        "self-match must survive re-ranking"
    );
}

#[test]
fn persistence_roundtrip_over_real_shapes() {
    let (db, _) = small_db();
    let mut buf = Vec::new();
    save(db, &mut buf).unwrap();
    let restored = load(buf.as_slice()).unwrap();
    assert_eq!(restored.len(), db.len());
    // Identical query results after the round-trip.
    let q = db.shapes()[7].features.clone();
    for kind in FeatureKind::ALL {
        let a = db.search(&q, &Query::top_k(kind, 5));
        let b = restored.search(&q, &Query::top_k(kind, 5));
        let ai: Vec<_> = a.iter().map(|h| h.id).collect();
        let bi: Vec<_> = b.iter().map(|h| h.id).collect();
        assert_eq!(ai, bi, "{kind:?}");
    }
}

#[test]
fn feature_dimensions_consistent_across_corpus() {
    let (db, _) = small_db();
    let ex = db.extractor();
    for s in db.shapes() {
        for kind in FeatureKind::ALL {
            assert_eq!(
                s.features.get(kind).len(),
                ex.dim(kind),
                "{}: {kind:?}",
                s.name
            );
            assert!(
                s.features.get(kind).iter().all(|v| v.is_finite()),
                "{}: {kind:?} has non-finite entries",
                s.name
            );
        }
    }
}

#[test]
fn removal_keeps_database_queryable() {
    let corpus = build_corpus(77);
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: RES,
        ..Default::default()
    });
    let mut ids = Vec::new();
    for s in corpus.shapes.iter().take(12) {
        ids.push(db.insert(s.name.clone(), s.mesh.clone()).unwrap());
    }
    // Remove every other shape.
    for &id in ids.iter().step_by(2) {
        db.remove(id).unwrap();
    }
    assert_eq!(db.len(), 6);
    let q = db.shapes()[0].features.clone();
    let hits = db.search(&q, &Query::top_k(FeatureKind::PrincipalMoments, 6));
    assert_eq!(hits.len(), 6);
    for h in &hits {
        assert!(ids.iter().skip(1).step_by(2).any(|&id| id == h.id));
    }
}
