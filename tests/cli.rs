//! Integration tests for the `tdess` CLI binary, driven through the
//! real executable (Cargo exposes its path via `CARGO_BIN_EXE_tdess`).

use std::path::PathBuf;
use std::process::Command;

fn tdess() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tdess"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tdess_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Writes a couple of small OFF meshes for indexing.
fn write_meshes(dir: &std::path::Path) -> Vec<PathBuf> {
    use threedess::geom::io::save_mesh;
    use threedess::geom::{primitives, Vec3};
    let specs: Vec<(&str, threedess::geom::TriMesh)> = vec![
        ("boxy", primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5))),
        ("bally", primitives::uv_sphere(1.0, 12, 6)),
        ("roddy", primitives::cylinder(0.3, 4.0, 12)),
    ];
    specs
        .into_iter()
        .map(|(name, mesh)| {
            let p = dir.join(format!("{name}.off"));
            save_mesh(&mesh, &p).expect("write mesh");
            p
        })
        .collect()
}

#[test]
fn help_prints_usage() {
    let out = tdess().arg("help").output().expect("run tdess");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage:"), "{text}");
}

#[test]
fn unknown_command_fails() {
    let out = tdess().arg("frobnicate").output().expect("run tdess");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"), "{err}");
}

#[test]
fn index_query_info_roundtrip() {
    let dir = temp_dir("roundtrip");
    let meshes = write_meshes(&dir);
    let db = dir.join("db.json");

    // Index three shapes at a low resolution for speed.
    let mut cmd = tdess();
    cmd.arg("index").arg(&db);
    for m in &meshes {
        cmd.arg(m);
    }
    cmd.args(["--resolution", "16"]);
    let out = cmd.output().expect("run tdess index");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(db.exists());

    // Query with a similar box: the stored box must rank first.
    let out = tdess()
        .arg("query")
        .arg(&db)
        .arg(&meshes[0])
        .args(["--kind", "pm", "--top", "2"])
        .output()
        .expect("run tdess query");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let first_line = text.lines().nth(1).unwrap_or("");
    assert!(first_line.contains("boxy"), "{text}");

    // Info reports the shape count.
    let out = tdess()
        .arg("info")
        .arg(&db)
        .output()
        .expect("run tdess info");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("shapes: 3"));

    // Multistep also runs.
    let out = tdess()
        .arg("multistep")
        .arg(&db)
        .arg(&meshes[0])
        .args(["--steps", "pm,ev", "--candidates", "3", "--present", "2"])
        .output()
        .expect("run tdess multistep");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn query_missing_database_fails_cleanly() {
    let dir = temp_dir("missing");
    let meshes = write_meshes(&dir);
    let out = tdess()
        .arg("query")
        .arg(dir.join("nope.json"))
        .arg(&meshes[0])
        .output()
        .expect("run tdess query");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
    let _ = std::fs::remove_dir_all(&dir);
}
