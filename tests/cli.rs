//! Integration tests for the `tdess` CLI binary, driven through the
//! real executable (Cargo exposes its path via `CARGO_BIN_EXE_tdess`).

use std::path::PathBuf;
use std::process::Command;

fn tdess() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tdess"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tdess_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Writes a couple of small OFF meshes for indexing.
fn write_meshes(dir: &std::path::Path) -> Vec<PathBuf> {
    use threedess::geom::io::save_mesh;
    use threedess::geom::{primitives, Vec3};
    let specs: Vec<(&str, threedess::geom::TriMesh)> = vec![
        ("boxy", primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5))),
        ("bally", primitives::uv_sphere(1.0, 12, 6)),
        ("roddy", primitives::cylinder(0.3, 4.0, 12)),
    ];
    specs
        .into_iter()
        .map(|(name, mesh)| {
            let p = dir.join(format!("{name}.off"));
            save_mesh(&mesh, &p).expect("write mesh");
            p
        })
        .collect()
}

#[test]
fn help_prints_usage() {
    let out = tdess().arg("help").output().expect("run tdess");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage:"), "{text}");
}

#[test]
fn unknown_command_fails() {
    let out = tdess().arg("frobnicate").output().expect("run tdess");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"), "{err}");
}

#[test]
fn index_query_info_roundtrip() {
    let dir = temp_dir("roundtrip");
    let meshes = write_meshes(&dir);
    let db = dir.join("db.json");

    // Index three shapes at a low resolution for speed.
    let mut cmd = tdess();
    cmd.arg("index").arg(&db);
    for m in &meshes {
        cmd.arg(m);
    }
    cmd.args(["--resolution", "16"]);
    let out = cmd.output().expect("run tdess index");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(db.exists());

    // Query with a similar box: the stored box must rank first.
    let out = tdess()
        .arg("query")
        .arg(&db)
        .arg(&meshes[0])
        .args(["--kind", "pm", "--top", "2"])
        .output()
        .expect("run tdess query");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let first_line = text.lines().nth(1).unwrap_or("");
    assert!(first_line.contains("boxy"), "{text}");

    // Info reports the shape count.
    let out = tdess()
        .arg("info")
        .arg(&db)
        .output()
        .expect("run tdess info");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("shapes: 3"));

    // Multistep also runs.
    let out = tdess()
        .arg("multistep")
        .arg(&db)
        .arg(&meshes[0])
        .args(["--steps", "pm,ev", "--candidates", "3", "--present", "2"])
        .output()
        .expect("run tdess multistep");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn query_missing_database_fails_cleanly() {
    let dir = temp_dir("missing");
    let meshes = write_meshes(&dir);
    let out = tdess()
        .arg("query")
        .arg(dir.join("nope.json"))
        .arg(&meshes[0])
        .output()
        .expect("run tdess query");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kills the serve child on drop so a failing test never leaks it.
/// Holds the child's stdout pipe open for the server's lifetime (a
/// closed pipe would fail the server's later writes).
struct ServeGuard {
    child: std::process::Child,
    _stdout: std::io::BufReader<std::process::ChildStdout>,
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Indexes the test meshes, then starts `tdess serve` on an ephemeral
/// port and returns (guard, addr, db path, mesh paths, temp dir).
fn start_server(tag: &str) -> (ServeGuard, String, PathBuf, Vec<PathBuf>, PathBuf) {
    use std::io::BufRead;
    let dir = temp_dir(tag);
    let meshes = write_meshes(&dir);
    let db = dir.join("db.json");
    let mut cmd = tdess();
    cmd.arg("index").arg(&db);
    for m in &meshes {
        cmd.arg(m);
    }
    cmd.args(["--resolution", "16"]);
    let out = cmd.output().expect("run tdess index");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut child = tdess()
        .arg("serve")
        .arg(&db)
        .args(["--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn tdess serve");
    let stdout = child.stdout.take().expect("serve stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut first = String::new();
    reader.read_line(&mut first).expect("read serve stdout");
    let addr = first
        .trim_end()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {first}"))
        .to_string();
    let guard = ServeGuard {
        child,
        _stdout: reader,
    };
    (guard, addr, db, meshes, dir)
}

#[test]
fn json_output_parses_into_the_wire_payload_types() {
    use threedess::net::{HitsReport, InfoReport};
    let dir = temp_dir("json");
    let meshes = write_meshes(&dir);
    let db = dir.join("db.json");
    let mut cmd = tdess();
    cmd.arg("index").arg(&db);
    for m in &meshes {
        cmd.arg(m);
    }
    cmd.args(["--resolution", "16"]);
    assert!(cmd.output().expect("index").status.success());

    let out = tdess()
        .arg("query")
        .arg(&db)
        .arg(&meshes[0])
        .args(["--kind", "pm", "--top", "2", "--json"])
        .output()
        .expect("query --json");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: HitsReport =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("parse hits JSON");
    assert_eq!(report.hits.len(), 2);
    assert_eq!(report.hits[0].name, "boxy");
    assert!(report.hits[0].similarity >= report.hits[1].similarity);

    let out = tdess()
        .arg("multistep")
        .arg(&db)
        .arg(&meshes[0])
        .args([
            "--steps",
            "pm,ev",
            "--candidates",
            "3",
            "--present",
            "2",
            "--json",
        ])
        .output()
        .expect("multistep --json");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: HitsReport =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("parse multistep JSON");
    assert_eq!(report.hits.len(), 2);

    let out = tdess()
        .arg("info")
        .arg(&db)
        .arg("--json")
        .output()
        .expect("info --json");
    assert!(out.status.success());
    let report: InfoReport =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("parse info JSON");
    assert_eq!(report.shapes, 3);
    assert!(!report.spaces.is_empty());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_and_remote_roundtrip_over_loopback() {
    use threedess::net::{HitsReport, StatsReport};
    let (guard, addr, _db, meshes, dir) = start_server("serve");

    let out = tdess()
        .args(["remote", &addr, "ping"])
        .output()
        .expect("remote ping");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("pong"));

    let out = tdess()
        .args(["remote", &addr, "query"])
        .arg(&meshes[0])
        .args(["--kind", "pm", "--top", "2", "--json"])
        .output()
        .expect("remote query");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: HitsReport =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("parse remote hits");
    assert_eq!(report.hits.len(), 2);
    assert_eq!(report.hits[0].name, "boxy");

    let out = tdess()
        .args(["remote", &addr, "stats", "--json"])
        .output()
        .expect("remote stats");
    assert!(out.status.success());
    let stats: StatsReport =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("parse remote stats");
    assert_eq!(stats.shapes, 3);
    assert!(stats.transport.requests_served >= 2);
    assert_eq!(stats.transport.decode_errors, 0);

    drop(guard);
    let _ = std::fs::remove_dir_all(&dir);
}
