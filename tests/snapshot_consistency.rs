//! Crash-consistency and corruption suite for the binary snapshot
//! format, plus the JSON-vs-binary equivalence check over the full
//! 113-shape corpus: both persistence paths must hand back databases
//! whose search results are bit-identical.

use std::path::PathBuf;
use std::sync::OnceLock;

use threedess::core::{
    bulk_insert, load_from_path, save_to_path, save_to_path_binary, PersistError, Query,
    ShapeDatabase,
};
use threedess::dataset::build_corpus;
use threedess::features::{FeatureExtractor, FeatureKind};

/// The full 113-shape corpus indexed at a test-budget resolution,
/// built once per test binary.
fn corpus_db() -> &'static ShapeDatabase {
    static DB: OnceLock<ShapeDatabase> = OnceLock::new();
    DB.get_or_init(|| {
        let corpus = build_corpus(2004);
        let mut db = ShapeDatabase::new(FeatureExtractor {
            voxel_resolution: 12,
            ..Default::default()
        });
        let shapes: Vec<_> = corpus
            .shapes
            .iter()
            .map(|s| (s.name.clone(), s.mesh.clone()))
            .collect();
        let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
        bulk_insert(&mut db, shapes, threads).unwrap();
        db
    })
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tdess_snapshot_suite").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small binary snapshot on disk, for corruption experiments.
fn snapshot_bytes() -> Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES
        .get_or_init(|| {
            let mut db = ShapeDatabase::new(FeatureExtractor {
                voxel_resolution: 12,
                ..Default::default()
            });
            let corpus = build_corpus(2004);
            for s in corpus.shapes.iter().take(3) {
                db.insert(s.name.clone(), s.mesh.clone()).unwrap();
            }
            let mut buf = Vec::new();
            threedess::core::save_binary(&db, &mut buf).unwrap();
            buf
        })
        .clone()
}

fn load_bytes(name: &str, bytes: &[u8]) -> Result<ShapeDatabase, PersistError> {
    let path = test_dir("corruption").join(name);
    std::fs::write(&path, bytes).unwrap();
    load_from_path(&path)
}

#[test]
fn truncated_snapshot_names_path_and_section() {
    let bytes = snapshot_bytes();
    // Cut the file in the middle of a section payload.
    let cut = bytes.len() / 2;
    let err = load_bytes("truncated.tdss", &bytes[..cut]).expect_err("truncated file must fail");
    match &err {
        PersistError::Corrupt { path, section, .. } => {
            assert!(path.to_string_lossy().contains("truncated.tdss"));
            assert!(
                ["header", "META", "SHPS", "FEAT", "database"].contains(section),
                "unexpected section {section}"
            );
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("truncated.tdss"), "{msg}");

    // Cutting inside the 12-byte file header is also a typed error.
    let err = load_bytes("tiny.tdss", &bytes[..6]).expect_err("header-truncated file must fail");
    assert!(err.to_string().contains("tiny.tdss"), "{err}");
}

#[test]
fn flipped_payload_byte_fails_checksum() {
    let mut bytes = snapshot_bytes();
    // Flip one byte near the end (inside the FEAT payload), far from
    // the headers, so only the checksum can catch it.
    let idx = bytes.len() - 9;
    bytes[idx] ^= 0x40;
    let err = load_bytes("bitflip.tdss", &bytes).expect_err("bit flip must fail");
    match &err {
        PersistError::Corrupt {
            path,
            section,
            reason,
        } => {
            assert!(path.to_string_lossy().contains("bitflip.tdss"));
            assert_eq!(*section, "FEAT");
            assert!(reason.contains("checksum"), "{reason}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn wrong_magic_is_typed_and_falls_back_to_json_parse() {
    let mut bytes = snapshot_bytes();
    bytes[0] = b'X';
    // Through the sniffing loader a non-TDSS prefix is treated as
    // JSON, which then fails to parse — also an error, but a Serde
    // one.
    let err = load_bytes("notmagic.tdss", &bytes).expect_err("corrupted magic must fail");
    assert!(
        matches!(err, PersistError::Serde(_)),
        "sniff fell back to JSON, got {err:?}"
    );
    // The binary decoder itself reports BadMagic with the path.
    let path = test_dir("corruption").join("notmagic.tdss");
    let err = threedess::core::load_binary(std::fs::File::open(&path).unwrap(), &path)
        .expect_err("bad magic must fail");
    match &err {
        PersistError::BadMagic { path, found } => {
            assert!(path.to_string_lossy().contains("notmagic.tdss"));
            assert_eq!(found[0], b'X');
        }
        other => panic!("expected BadMagic, got {other:?}"),
    }
    assert!(err.to_string().contains("header"), "{err}");
}

#[test]
fn future_version_is_rejected() {
    let mut bytes = snapshot_bytes();
    // Version field is bytes 4..8 (little endian).
    bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    let err = load_bytes("future.tdss", &bytes).expect_err("future version must fail");
    match &err {
        PersistError::UnsupportedVersion {
            path,
            found,
            supported,
        } => {
            assert!(path.to_string_lossy().contains("future.tdss"));
            assert_eq!(*found, 99);
            assert_eq!(*supported, threedess::core::SNAPSHOT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn hostile_tree_config_in_meta_is_rejected() {
    let mut bytes = snapshot_bytes();
    // META payload starts at byte 32 (12-byte file header + 20-byte
    // section header); min_entries is the u32 at payload offset 28.
    // Setting it to 0 must be caught by the shared RTreeConfig
    // validation — but the checksum trips first unless it is patched,
    // so patch the stored checksum to match the tampered payload.
    let meta_payload_start = 32;
    let min_entries_off = meta_payload_start + 28;
    bytes[min_entries_off..min_entries_off + 4].copy_from_slice(&0u32.to_le_bytes());
    // Recompute the META checksum over the tampered payload.
    let len = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
    let sum = threedess::core::checksum64(&bytes[meta_payload_start..meta_payload_start + len]);
    bytes[24..32].copy_from_slice(&sum.to_le_bytes());
    let err = load_bytes("hostilecfg.tdss", &bytes).expect_err("min_entries=0 must fail");
    match &err {
        PersistError::Corrupt {
            section, reason, ..
        } => {
            assert_eq!(*section, "database");
            assert!(reason.contains("min_entries"), "{reason}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn json_and_binary_loads_are_bit_identical_over_corpus() {
    let db = corpus_db();
    let dir = test_dir("bit_identical");
    let json_path = dir.join("corpus.json");
    let bin_path = dir.join("corpus.tdss");
    save_to_path(db, &json_path).unwrap();
    save_to_path_binary(db, &bin_path).unwrap();

    let from_json = load_from_path(&json_path).unwrap();
    let from_bin = load_from_path(&bin_path).unwrap();
    assert_eq!(from_json.len(), db.len());
    assert_eq!(from_bin.len(), db.len());

    for kind in FeatureKind::ALL {
        assert_eq!(
            from_json.dmax(kind).to_bits(),
            from_bin.dmax(kind).to_bits(),
            "{kind:?} dmax differs between formats"
        );
    }

    // Every 9th shape queries the database in every feature space;
    // ids, distances, and similarities must match bit for bit.
    for shape in db.shapes().iter().step_by(9) {
        for kind in FeatureKind::ALL {
            let q = Query::top_k(kind, 10);
            let a = from_json.search(&shape.features, &q);
            let b = from_bin.search(&shape.features, &q);
            assert_eq!(a.len(), b.len(), "{kind:?} result count for {}", shape.name);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id, "{kind:?} ids for {}", shape.name);
                assert_eq!(
                    x.distance.to_bits(),
                    y.distance.to_bits(),
                    "{kind:?} distance bits for {}",
                    shape.name
                );
                assert_eq!(
                    x.similarity.to_bits(),
                    y.similarity.to_bits(),
                    "{kind:?} similarity bits for {}",
                    shape.name
                );
            }
        }
    }
}
