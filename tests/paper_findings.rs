//! Regression tests for the paper's qualitative findings (§4 / §5),
//! evaluated on the full 113-shape corpus.
//!
//! These pin the *shape* of the results — orderings and who-beats-whom
//! — not absolute numbers, which depend on the procedural corpus.

use std::sync::OnceLock;

use threedess::dataset::build_corpus;
use threedess::eval::{
    average_effectiveness, pr_curve, representative_queries, EvalContext, RetrievalSize, Strategy,
};
use threedess::features::{FeatureExtractor, FeatureKind};

fn ctx() -> &'static EvalContext {
    static CTX: OnceLock<EvalContext> = OnceLock::new();
    CTX.get_or_init(|| {
        let corpus = build_corpus(2004);
        EvalContext::build(
            &corpus,
            FeatureExtractor {
                voxel_resolution: 24,
                ..Default::default()
            },
        )
    })
}

/// §5: "the descending order of average recalls of feature vectors is:
/// principal moments, moment invariants, geometric parameters, and
/// eigenvalues."
#[test]
fn one_shot_ordering_matches_paper() {
    let rows = average_effectiveness(ctx(), &Strategy::paper_set(), RetrievalSize::GroupSize);
    let (mi, gp, pm, ev) = (
        rows[0].avg_recall,
        rows[1].avg_recall,
        rows[2].avg_recall,
        rows[3].avg_recall,
    );
    assert!(pm > mi, "PM {pm} should beat MI {mi}");
    assert!(mi > gp, "MI {mi} should beat GP {gp}");
    assert!(gp > ev, "GP {gp} should beat EV {ev}");
}

/// §5: "A multi-step search strategy significantly improves the recall
/// of the search system" — the paper measures +51% over the best
/// one-shot (principal moments); we require a substantial (> 20%) win.
#[test]
fn multi_step_beats_best_one_shot() {
    let rows = average_effectiveness(ctx(), &Strategy::paper_set(), RetrievalSize::GroupSize);
    let best_one_shot = rows[..4]
        .iter()
        .map(|r| r.avg_recall)
        .fold(f64::MIN, f64::max);
    let multi = rows[4].avg_recall;
    assert!(
        multi > best_one_shot * 1.2,
        "multi-step {multi} vs best one-shot {best_one_shot}"
    );
}

/// Figure 15's |R| = 10 variant keeps principal moments as the best
/// one-shot feature and eigenvalues as the worst.
#[test]
fn fixed_ten_retrieval_ordering() {
    let rows = average_effectiveness(ctx(), &Strategy::paper_set(), RetrievalSize::Fixed(10));
    let pm = rows[2].avg_recall;
    let ev = rows[3].avg_recall;
    for (i, r) in rows.iter().enumerate().take(4) {
        assert!(pm >= r.avg_recall, "row {i}: PM {pm} vs {}", r.avg_recall);
        assert!(ev <= r.avg_recall, "row {i}: EV {ev} vs {}", r.avg_recall);
    }
}

/// Figure 16: at |R| = 10 the precision of every strategy is (much)
/// smaller than its recall, and precision ≈ recall scaled by a common
/// factor (mean |A| / 10).
#[test]
fn precision_is_scaled_recall_at_fixed_ten() {
    let rows = average_effectiveness(ctx(), &Strategy::paper_set(), RetrievalSize::Fixed(10));
    let mut ratios = Vec::new();
    for r in &rows {
        assert!(
            r.avg_precision < r.avg_recall,
            "{}: P {} >= R {}",
            r.strategy,
            r.avg_precision,
            r.avg_recall
        );
        if r.avg_recall > 0.0 {
            ratios.push(r.avg_precision / r.avg_recall);
        }
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    for r in &ratios {
        assert!(
            (r - mean).abs() < 0.12,
            "P/R ratio {r} deviates from mean {mean}"
        );
    }
}

/// Figures 8–12: moment-invariant and principal-moment PR curves show
/// the inverse precision/recall relationship — raising the similarity
/// threshold shrinks the retrieved set and recall falls from 1 toward
/// 0 while precision (generally) improves.
#[test]
fn pr_curves_show_inverse_relationship() {
    let c = ctx();
    for &qi in representative_queries(c).iter().take(3) {
        for kind in [FeatureKind::MomentInvariants, FeatureKind::PrincipalMoments] {
            let curve = pr_curve(c, qi, kind, 21);
            // Lowest threshold retrieves everything: recall 1.
            assert!(
                curve[0].recall > 0.99,
                "{kind:?}: recall at t=0 is {}",
                curve[0].recall
            );
            // Highest threshold retrieves (almost) nothing.
            assert!(
                curve.last().unwrap().retrieved <= 2,
                "{kind:?}: {} retrieved at t=1",
                curve.last().unwrap().retrieved
            );
            // Recall is non-increasing along the sweep.
            for w in curve.windows(2) {
                assert!(w[0].recall >= w[1].recall - 1e-9, "{kind:?}");
            }
            // Precision at some tight threshold exceeds precision at
            // the loosest one (the inverse trade).
            let loose_p = curve[0].precision;
            let best_tight_p = curve
                .iter()
                .filter(|p| p.retrieved > 0)
                .map(|p| p.precision)
                .fold(f64::MIN, f64::max);
            assert!(
                best_tight_p > loose_p,
                "{kind:?}: no precision gain from thresholding"
            );
        }
    }
}

/// The paper's eigenvalue diagnosis: skeletal graphs are small, so the
/// eigenvalue signature collapses many shapes together — measured here
/// as distinct signature count being far below the corpus size.
#[test]
fn eigenvalue_signatures_collapse_shapes() {
    let c = ctx();
    let mut distinct: Vec<&[f64]> = Vec::new();
    for s in c.db.shapes() {
        let sig = s.features.get(FeatureKind::Eigenvalues);
        if !distinct
            .iter()
            .any(|d| d.iter().zip(sig).all(|(a, b)| (a - b).abs() < 1e-9))
        {
            distinct.push(sig);
        }
    }
    assert!(
        distinct.len() < c.db.len() / 2,
        "{} distinct eigenvalue signatures across {} shapes — too discriminative to explain the paper's finding",
        distinct.len(),
        c.db.len()
    );
    // But not degenerate either: there are several distinct topologies.
    assert!(
        distinct.len() >= 5,
        "only {} distinct signatures",
        distinct.len()
    );
}
