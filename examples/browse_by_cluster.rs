//! Query by browsing (§2.1): cluster the database per feature vector
//! and drill down the hierarchy, comparing the three clustering
//! algorithms the paper's SERVER layer implements (k-means, SOM, GA).
//!
//! ```sh
//! cargo run --release --example browse_by_cluster
//! ```

use threedess::cluster::{
    ga_cluster, kmeans, rand_index, som_cluster, GaParams, HierarchyParams, SomParams,
};
use threedess::core::{BrowseTree, ShapeDatabase};
use threedess::dataset::build_corpus;
use threedess::features::{FeatureExtractor, FeatureKind};

fn main() {
    let corpus = build_corpus(2004);
    println!("indexing the {}-shape corpus...", corpus.shapes.len());
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: 32,
        ..Default::default()
    });
    for s in &corpus.shapes {
        db.insert(s.name.clone(), s.mesh.clone()).unwrap();
    }

    // --- Flat clustering: compare k-means, SOM, and GA against the
    // ground-truth families (ids follow insertion order = corpus order).
    let kind = FeatureKind::PrincipalMoments;
    let points: Vec<Vec<f64>> = db
        .shapes()
        .iter()
        .map(|s| s.features.get(kind).to_vec())
        .collect();
    let truth: Vec<usize> = corpus
        .shapes
        .iter()
        .map(|s| s.group.map_or(26, |g| g)) // noise shapes share a bucket
        .collect();

    println!("\nflat clustering into 26 clusters ({}):", kind.label());
    let km = kmeans(&points, 26, 42);
    println!(
        "  k-means: SSE {:9.4}, Rand index vs ground truth {:.3}",
        km.sse,
        rand_index(&km.assignments, &truth)
    );
    let (_, som) = som_cluster(
        &points,
        &SomParams {
            width: 6,
            height: 5,
            ..Default::default()
        },
        42,
    );
    println!(
        "  SOM:     SSE {:9.4}, Rand index vs ground truth {:.3}",
        som.sse,
        rand_index(&som.assignments, &truth)
    );
    let ga = ga_cluster(&points, 26, &GaParams::default(), 42);
    println!(
        "  GA:      SSE {:9.4}, Rand index vs ground truth {:.3}",
        ga.sse,
        rand_index(&ga.assignments, &truth)
    );

    // --- Hierarchical browsing: build the drill-down tree and walk the
    // largest branch to a leaf.
    println!("\nhierarchical browsing ({}):", kind.label());
    let tree = BrowseTree::build(
        &db,
        kind,
        &HierarchyParams {
            branching: 4,
            leaf_size: 8,
        },
        7,
    );
    let mut cursor = tree.cursor();
    loop {
        let ids = cursor.shape_ids();
        println!(
            "  level {}: {} shapes, {} children {:?}",
            cursor.path().len(),
            ids.len(),
            cursor.num_children(),
            cursor.child_sizes()
        );
        if cursor.is_leaf() {
            println!("  leaf contents:");
            for id in ids {
                println!("    - {}", db.get(id).unwrap().name);
            }
            break;
        }
        // Always descend into the largest child.
        let (biggest, _) = cursor
            .child_sizes()
            .into_iter()
            .enumerate()
            .max_by_key(|&(_, s)| s)
            .expect("non-leaf has children");
        cursor.descend(biggest);
    }
}
