//! Exports the 113-shape evaluation corpus as OFF files (viewable in
//! any mesh viewer — our stand-in for the paper's Java3D interface),
//! plus a JSON classification map, and demonstrates database
//! persistence.
//!
//! ```sh
//! cargo run --release --example export_dataset -- /tmp/tdess-corpus
//! ```

use std::path::PathBuf;

use threedess::core::{save_to_path, ShapeDatabase};
use threedess::dataset::build_corpus;
use threedess::features::FeatureExtractor;
use threedess::geom::io::save_mesh;

fn main() {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/tdess-corpus".to_string())
        .into();
    std::fs::create_dir_all(out.join("meshes")).expect("create output directory");

    let corpus = build_corpus(2004);
    println!(
        "exporting {} shapes to {}",
        corpus.shapes.len(),
        out.display()
    );

    // 1. One OFF file per shape.
    for s in &corpus.shapes {
        let path = out.join("meshes").join(format!("{}.off", s.name));
        save_mesh(&s.mesh, &path).expect("write OFF file");
    }

    // 2. The ground-truth classification map.
    let map: Vec<serde_json::Value> = corpus
        .shapes
        .iter()
        .map(|s| {
            serde_json::json!({
                "name": s.name,
                "group": s.group,
                "family": s.group.map(|g| corpus.group_names[g].clone()),
                "triangles": s.mesh.num_triangles(),
                "volume": s.mesh.signed_volume(),
            })
        })
        .collect();
    std::fs::write(
        out.join("classification.json"),
        serde_json::to_string_pretty(&map).unwrap(),
    )
    .expect("write classification map");

    // 3. A persisted, fully indexed database (features + R-trees).
    println!("indexing (low resolution for a quick demo)...");
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: 24,
        ..Default::default()
    });
    for s in corpus.shapes.iter().take(20) {
        db.insert(s.name.clone(), s.mesh.clone()).unwrap();
    }
    let db_path = out.join("shapes.db.json");
    save_to_path(&db, &db_path).expect("persist database");
    println!(
        "wrote {} meshes, classification.json, and {} ({} shapes indexed)",
        corpus.shapes.len(),
        db_path.display(),
        db.len()
    );
}
