//! Quickstart: build a small shape database, run a query by example,
//! and print the ranked results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use threedess::core::{Query, ShapeDatabase};
use threedess::features::{FeatureExtractor, FeatureKind};
use threedess::geom::{primitives, Vec3};

fn main() {
    // A database with a moderate voxel resolution (trade extraction
    // speed for skeleton fidelity with `voxel_resolution`).
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: 32,
        ..Default::default()
    });

    // Insert a handful of parts. Every insert runs the full §3
    // pipeline: normalization → voxelization → skeletonization →
    // feature vectors, then updates one R-tree per feature space.
    println!("indexing shapes...");
    db.insert("small-box", primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)))
        .unwrap();
    db.insert("large-box", primitives::box_mesh(Vec3::new(4.0, 2.0, 1.0)))
        .unwrap();
    db.insert("cube", primitives::box_mesh(Vec3::new(1.5, 1.5, 1.5)))
        .unwrap();
    db.insert("sphere", primitives::uv_sphere(1.0, 24, 12))
        .unwrap();
    db.insert("rod", primitives::cylinder(0.3, 6.0, 24))
        .unwrap();
    db.insert("disk", primitives::cylinder(2.0, 0.4, 24))
        .unwrap();
    db.insert("ring", primitives::torus(1.5, 0.4, 32, 16))
        .unwrap();

    // Query by example: a box similar (up to pose and scale) to the
    // stored boxes. The features are pose- and scale-invariant, so the
    // random-looking pose below does not matter.
    let mut query = primitives::box_mesh(Vec3::new(2.1, 1.05, 0.5));
    query.rotate(&threedess::geom::Mat3::rotation_axis_angle(
        Vec3::new(1.0, 0.3, -0.5),
        1.1,
    ));
    query.translate(Vec3::new(7.0, -2.0, 3.0));

    for kind in [FeatureKind::PrincipalMoments, FeatureKind::MomentInvariants] {
        println!("\ntop-5 by {}:", kind.label());
        let hits = db.search_mesh(&query, &Query::top_k(kind, 5)).unwrap();
        for (rank, h) in hits.iter().enumerate() {
            let shape = db.get(h.id).unwrap();
            println!(
                "  {}. {:10} similarity {:.3} (distance {:.4})",
                rank + 1,
                shape.name,
                h.similarity,
                h.distance
            );
        }
    }

    // Threshold query: everything at least 90% similar.
    let hits = db
        .search_mesh(
            &query,
            &Query::threshold(FeatureKind::PrincipalMoments, 0.9),
        )
        .unwrap();
    println!(
        "\nshapes with similarity >= 0.9 (principal moments): {}",
        hits.len()
    );
    for h in &hits {
        println!("  {} ({:.3})", db.get(h.id).unwrap().name, h.similarity);
    }
}
