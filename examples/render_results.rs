//! 3D view generation (§2.2's SERVER module): run a query and render
//! each result to a PGM thumbnail with the built-in software
//! rasterizer — the headless stand-in for the paper's Java3D result
//! viewer.
//!
//! ```sh
//! cargo run --release --example render_results -- /tmp/tdess-thumbs
//! ```

use std::path::PathBuf;

use threedess::core::{Query, ShapeDatabase};
use threedess::features::{FeatureExtractor, FeatureKind};
use threedess::geom::{primitives, render, RenderParams, Vec3};

fn main() {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/tdess-thumbs".to_string())
        .into();
    std::fs::create_dir_all(&out).expect("create output directory");

    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: 28,
        ..Default::default()
    });
    db.insert("plate", primitives::box_mesh(Vec3::new(4.0, 3.0, 0.3)))
        .unwrap();
    db.insert("block", primitives::box_mesh(Vec3::new(2.0, 1.5, 1.0)))
        .unwrap();
    db.insert("ball", primitives::uv_sphere(1.2, 24, 12))
        .unwrap();
    db.insert("ring", primitives::torus(1.5, 0.4, 32, 16))
        .unwrap();
    db.insert("rod", primitives::cylinder(0.3, 5.0, 24))
        .unwrap();
    db.insert("flange", {
        use threedess::geom::{revolve, P2};
        revolve(
            &[
                P2::new(0.0, 0.0),
                P2::new(2.5, 0.0),
                P2::new(2.5, 0.5),
                P2::new(1.0, 0.5),
                P2::new(1.0, 2.0),
                P2::new(0.0, 2.0),
            ],
            32,
        )
    })
    .unwrap();

    let query = primitives::torus(1.4, 0.45, 32, 16);
    let hits = db
        .search_mesh(&query, &Query::top_k(FeatureKind::PrincipalMoments, 4))
        .unwrap();

    println!(
        "query: a torus — rendering the top {} results to {}",
        hits.len(),
        out.display()
    );
    // Render the query itself plus each result from two viewpoints.
    let views = [
        ("iso", Vec3::new(-0.5, -0.7, -0.6)),
        ("front", Vec3::new(0.0, -1.0, -0.15)),
    ];
    for (vname, dir) in views {
        let img = render(
            &query,
            &RenderParams {
                view_dir: dir,
                ..Default::default()
            },
        );
        img.save_pgm(&out.join(format!("query-{vname}.pgm")))
            .unwrap();
    }
    for (rank, h) in hits.iter().enumerate() {
        let shape = db.get(h.id).unwrap();
        for (vname, dir) in views {
            let img = render(
                &shape.mesh,
                &RenderParams {
                    view_dir: dir,
                    ..Default::default()
                },
            );
            let name = format!("{:02}-{}-{vname}.pgm", rank + 1, shape.name);
            img.save_pgm(&out.join(&name)).unwrap();
        }
        println!(
            "  {}. {:8} similarity {:.3}",
            rank + 1,
            shape.name,
            h.similarity
        );
    }
    println!("open the .pgm files with any image viewer.");
}
