//! Relevance feedback: run a query, mark relevant/irrelevant results,
//! and let the system reconstruct the query (Rocchio) and reconfigure
//! the per-dimension weights (§2.2 of the paper).
//!
//! ```sh
//! cargo run --release --example relevance_feedback
//! ```

use threedess::core::{
    reconfigure_weights, reconstruct_query, Feedback, Query, QueryMode, RocchioParams,
    ShapeDatabase,
};
use threedess::features::{FeatureExtractor, FeatureKind};
use threedess::geom::{primitives, Vec3};

fn main() {
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: 28,
        ..Default::default()
    });

    // Populate: a family of flat plates, a family of long rods, and
    // some distractors.
    for i in 0..4 {
        let s = 1.0 + 0.06 * i as f64;
        db.insert(
            format!("plate-{i}"),
            primitives::box_mesh(Vec3::new(4.0 * s, 3.0 * s, 0.25 * s)),
        )
        .unwrap();
    }
    for i in 0..4 {
        let s = 1.0 + 0.06 * i as f64;
        db.insert(
            format!("rod-{i}"),
            primitives::cylinder(0.25 * s, 6.0 * s, 20),
        )
        .unwrap();
    }
    db.insert("sphere", primitives::uv_sphere(1.2, 20, 10))
        .unwrap();
    db.insert("ring", primitives::torus(1.5, 0.4, 28, 14))
        .unwrap();

    let kind = FeatureKind::GeometricParams;

    // Initial query: a plate-like box, searched with geometric
    // parameters (where plates and slabs can be confused).
    let qmesh = primitives::box_mesh(Vec3::new(4.2, 3.1, 0.26));
    let features = db.extract_query(&qmesh).unwrap();
    let initial = db.search(&features, &Query::top_k(kind, 6));
    println!("initial results ({}):", kind.label());
    for h in &initial {
        println!(
            "  {:10} sim {:.3}",
            db.get(h.id).unwrap().name,
            h.similarity
        );
    }

    // The user marks plates relevant and everything else irrelevant.
    let feedback = Feedback {
        relevant: initial
            .iter()
            .filter(|h| db.get(h.id).unwrap().name.starts_with("plate"))
            .map(|h| h.id)
            .collect(),
        irrelevant: initial
            .iter()
            .filter(|h| !db.get(h.id).unwrap().name.starts_with("plate"))
            .map(|h| h.id)
            .collect(),
    };
    println!(
        "\nfeedback: {} relevant, {} irrelevant",
        feedback.relevant.len(),
        feedback.irrelevant.len()
    );

    // 1. Query reconstruction (Rocchio).
    let q0 = features.get(kind).to_vec();
    let q1 = reconstruct_query(&db, kind, &q0, &feedback, &RocchioParams::default());
    println!(
        "query vector moved by {:.4} in feature space",
        dist(&q0, &q1)
    );

    // 2. Weight reconfiguration from the relevant set.
    let weights = reconfigure_weights(&db, kind, &feedback);
    println!("reconfigured weights: {:?}", weights.0.as_ref().unwrap());

    // Re-run the search with both adjustments.
    let mut adjusted = features.clone();
    adjusted.geometric = q1;
    let refined = db.search(
        &adjusted,
        &Query {
            kind,
            weights,
            mode: QueryMode::TopK(6),
        },
    );
    println!("\nrefined results:");
    for h in &refined {
        println!(
            "  {:10} sim {:.3}",
            db.get(h.id).unwrap().name,
            h.similarity
        );
    }

    let plates_before = initial
        .iter()
        .take(4)
        .filter(|h| db.get(h.id).unwrap().name.starts_with("plate"))
        .count();
    let plates_after = refined
        .iter()
        .take(4)
        .filter(|h| db.get(h.id).unwrap().name.starts_with("plate"))
        .count();
    println!("\nplates in the top 4: {plates_before} before feedback, {plates_after} after");
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}
