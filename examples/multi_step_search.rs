//! Multi-step search on the 113-shape evaluation corpus: retrieve
//! candidates with principal moments, re-rank them with the
//! skeletal-graph eigenvalues, and compare against the one-shot
//! search (§4.2 of the paper).
//!
//! ```sh
//! cargo run --release --example multi_step_search
//! ```

use threedess::core::{multi_step_search, MultiStepPlan, Query, ShapeDatabase};
use threedess::dataset::build_corpus;
use threedess::features::{FeatureExtractor, FeatureKind};

fn main() {
    let corpus = build_corpus(2004);
    println!(
        "indexing the {}-shape corpus (this takes a few seconds)...",
        corpus.shapes.len()
    );
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: 32,
        ..Default::default()
    });
    let mut names = std::collections::HashMap::new();
    for s in &corpus.shapes {
        let id = db.insert(s.name.clone(), s.mesh.clone()).unwrap();
        names.insert(id, (s.name.clone(), s.group));
    }

    // Query with a pipe; its group has 5 members.
    let query_record = corpus
        .shapes
        .iter()
        .find(|s| s.name == "pipe-0")
        .expect("corpus contains pipe-0");
    let query = db.extract_query(&query_record.mesh).unwrap();
    let query_group = query_record.group;

    println!("\nquery: {} (group: {:?})", query_record.name, query_group);

    // One-shot: top 10 by principal moments.
    let one_shot = db.search(&query, &Query::top_k(FeatureKind::PrincipalMoments, 11));
    println!("\none-shot (principal moments), top 10:");
    print_hits(&db, &one_shot, query_group, &query_record.name);

    // Multi-step: 30 candidates by principal moments, re-ranked by the
    // eigenvalues of the skeletal graph, 10 presented.
    let plan = MultiStepPlan {
        steps: vec![FeatureKind::PrincipalMoments, FeatureKind::Eigenvalues],
        candidates: 31,
        presented: 11,
    };
    let multi = multi_step_search(&db, &query, &plan);
    println!("\nmulti-step (principal moments -> eigenvalues), top 10:");
    print_hits(&db, &multi, query_group, &query_record.name);
}

fn print_hits(
    db: &ShapeDatabase,
    hits: &[threedess::core::SearchHit],
    query_group: Option<usize>,
    query_name: &str,
) {
    let mut shown = 0;
    for h in hits {
        let s = db.get(h.id).unwrap();
        if s.name == query_name {
            continue; // skip the guaranteed self-match
        }
        shown += 1;
        if shown > 10 {
            break;
        }
        // Group membership is recoverable from the name prefix.
        let same_family = query_group.is_some()
            && s.name.rsplit_once('-').map(|(f, _)| f)
                == query_name.rsplit_once('-').map(|(f, _)| f);
        println!(
            "  {:2}. {:20} sim {:.3} {}",
            shown,
            s.name,
            h.similarity,
            if same_family { "<- same family" } else { "" }
        );
    }
}
