//! Workspace automation tasks (the cargo-xtask pattern).
//!
//! Two static-analysis passes share one scanning core ([`scan`]):
//!
//! * `lint` — panic-freedom and NaN-safety policy (`cargo xtask lint`);
//! * `audit` — concurrency and resource-safety policy: lock
//!   discipline, atomic orderings, thread hygiene, wire-bounded
//!   allocations (`cargo xtask audit`).
//!
//! A third task, `cargo xtask waivers`, emits the combined waiver
//! inventory across both passes and fails on malformed waivers.
//!
//! The scanner is intentionally a line/token heuristic, not a full
//! parser: it masks comments and string literals, tracks `#[cfg(test)]`
//! regions by brace depth, and pattern-matches the rules. That keeps
//! the tools instant and dependency-free at the cost of line-local
//! matching (multi-line violations are invisible). The waiver syntax
//! (`// lint: allow(<rule>) — <reason>`,
//! `// audit: allow(<rule>) — <reason>`, and the audit shorthand
//! `// audit: ordering(<reason>)`) is the escape hatch for justified
//! exceptions — the reason text is mandatory.

#![forbid(unsafe_code)]

pub mod audit;
pub mod lint;
pub mod scan;

pub use audit::audit_root;
pub use lint::{lint_root, Rule};
pub use scan::{changed_files, waiver_inventory, Finding, Inventory, Report, Tool};
