//! Workspace automation tasks (the cargo-xtask pattern).
//!
//! The only task so far is `lint`: a lightweight, zero-dependency
//! static-analysis pass enforcing the workspace's panic-freedom and
//! NaN-safety policy. Run it as `cargo xtask lint` (the alias lives in
//! `.cargo/config.toml`).
//!
//! The scanner is intentionally a line/token heuristic, not a full
//! parser: it masks comments and string literals, tracks `#[cfg(test)]`
//! regions by brace depth, and pattern-matches the rules. That keeps
//! the tool instant and dependency-free at the cost of line-local
//! matching (multi-line violations are invisible). The waiver syntax
//! (`// lint: allow(<rule>) — <reason>`) is the escape hatch for
//! justified exceptions — the reason text is mandatory.

#![forbid(unsafe_code)]

pub mod lint;
pub mod mask;

pub use lint::{lint_root, Finding, Report, Rule};
