//! Workspace automation tasks (the cargo-xtask pattern).
//!
//! Four static-analysis passes share one scanning core ([`scan`]):
//!
//! * `lint` — panic-freedom and NaN-safety policy (`cargo xtask lint`);
//! * `audit` — concurrency and resource-safety policy: lock
//!   discipline, atomic orderings, thread hygiene, wire-bounded
//!   allocations (`cargo xtask audit`);
//! * `hotpath` — hot-path allocation/blocking discipline over the
//!   functions reachable from the instrumented pipeline stages and
//!   the net dispatch path (`cargo xtask hotpath`);
//! * `determinism` — reproducibility discipline: nondeterminism
//!   sources (hash iteration order, ambient RNG, wall-clock, parallel
//!   float reduction, pointer identity) taint-tracked toward
//!   persist/wire/telemetry sinks (`cargo xtask determinism`).
//!
//! The reachability passes (`hotpath`, `determinism`) share the
//! intra-workspace call graph in [`graph`]. A fifth task,
//! `cargo xtask waivers`, emits the combined waiver inventory across
//! all passes and fails on malformed waivers.
//!
//! The scanner is intentionally a line/token heuristic, not a full
//! parser: it masks comments and string literals, tracks `#[cfg(test)]`
//! regions by brace depth, and pattern-matches the rules. That keeps
//! the tools instant and dependency-free at the cost of line-local
//! matching (multi-line violations are invisible). The waiver syntax
//! (`// <tool>: allow(<rule>) — <reason>` for each of the four tools,
//! plus the audit shorthand `// audit: ordering(<reason>)`) is the
//! escape hatch for justified exceptions — the reason text is
//! mandatory.

#![forbid(unsafe_code)]

pub mod audit;
pub mod determinism;
pub mod graph;
pub mod hotpath;
pub mod lint;
pub mod scan;

pub use audit::audit_root;
pub use determinism::determinism_root;
pub use hotpath::hotpath_root;
pub use lint::{lint_root, Rule};
pub use scan::{changed_files, waiver_inventory, Finding, Inventory, Report, Tool};
