//! Workspace automation tasks (the cargo-xtask pattern).
//!
//! Three static-analysis passes share one scanning core ([`scan`]):
//!
//! * `lint` — panic-freedom and NaN-safety policy (`cargo xtask lint`);
//! * `audit` — concurrency and resource-safety policy: lock
//!   discipline, atomic orderings, thread hygiene, wire-bounded
//!   allocations (`cargo xtask audit`);
//! * `hotpath` — hot-path allocation/blocking discipline over the
//!   functions reachable from the instrumented pipeline stages and
//!   the net dispatch path (`cargo xtask hotpath`).
//!
//! A fourth task, `cargo xtask waivers`, emits the combined waiver
//! inventory across all passes and fails on malformed waivers.
//!
//! The scanner is intentionally a line/token heuristic, not a full
//! parser: it masks comments and string literals, tracks `#[cfg(test)]`
//! regions by brace depth, and pattern-matches the rules. That keeps
//! the tools instant and dependency-free at the cost of line-local
//! matching (multi-line violations are invisible). The waiver syntax
//! (`// lint: allow(<rule>) — <reason>`,
//! `// audit: allow(<rule>) — <reason>`,
//! `// hotpath: allow(<rule>) — <reason>`, and the audit shorthand
//! `// audit: ordering(<reason>)`) is the escape hatch for justified
//! exceptions — the reason text is mandatory.

#![forbid(unsafe_code)]

pub mod audit;
pub mod hotpath;
pub mod lint;
pub mod scan;

pub use audit::audit_root;
pub use hotpath::hotpath_root;
pub use lint::{lint_root, Rule};
pub use scan::{changed_files, waiver_inventory, Finding, Inventory, Report, Tool};
