//! Shared scanning infrastructure for the `lint`, `audit`, `hotpath`,
//! and `determinism` passes.
//!
//! The static-analysis passes work the same way: walk the workspace's
//! `src/` trees, blank out comments and string literals (preserving
//! byte-for-byte line structure so findings carry real line numbers),
//! extract waiver comments, and pattern-match rules on the masked
//! text. This module holds everything the two passes share:
//!
//! * [`mask`] — the comment/string masker, moved here from the old
//!   `mask` module unchanged in behavior;
//! * the unified waiver grammar — `// <tool>: allow(<rule>) — <reason>`
//!   for each of the four tools, plus the audit-only
//!   shorthand `// audit: ordering(<reason>)` which desugars to a
//!   waiver for the `atomic-ordering` rule. Waiver-shaped comments
//!   that fail the grammar (no reason, no rule) are collected as
//!   [`MalformedWaiver`]s for `cargo xtask waivers` to reject;
//! * [`workspace_units`] / [`changed_files`] — file discovery, full
//!   tree or limited to files differing from the merge-base with
//!   `main` (`--changed`);
//! * [`test_lines`] — `#[cfg(test)]` / `#[test]` region tracking by
//!   brace depth;
//! * [`Finding`] / [`Report`] / [`push_finding`] — the shared finding
//!   model, including waiver attachment.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Which pass a waiver addresses. A `lint:` waiver never satisfies an
/// `audit` finding and vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tool {
    /// The panic-freedom / NaN-safety pass (`cargo xtask lint`).
    Lint,
    /// The concurrency / resource-safety pass (`cargo xtask audit`).
    Audit,
    /// The hot-path allocation/blocking pass (`cargo xtask hotpath`).
    Hotpath,
    /// The reproducibility taint pass (`cargo xtask determinism`).
    Determinism,
}

impl Tool {
    /// The comment prefix (`lint` / `audit` / `hotpath` /
    /// `determinism`) naming this pass.
    pub fn name(self) -> &'static str {
        match self {
            Tool::Lint => "lint",
            Tool::Audit => "audit",
            Tool::Hotpath => "hotpath",
            Tool::Determinism => "determinism",
        }
    }
}

/// A well-formed waiver comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line the waiver comment sits on.
    pub line: usize,
    /// Which pass the waiver addresses.
    pub tool: Tool,
    /// The rule name inside `allow(...)` (or `atomic-ordering` for the
    /// `ordering(...)` shorthand).
    pub rule: String,
    /// The justification. Always non-empty — an undocumented waiver is
    /// recorded as [`MalformedWaiver`] instead.
    pub reason: String,
    /// True if the waiver comment shares its line with code (then it
    /// covers that line); false if it stands alone (then it covers the
    /// next code line).
    pub inline: bool,
}

/// A comment that starts like a waiver but fails the grammar — most
/// importantly a waiver without a written reason. These never silence
/// a finding, and `cargo xtask waivers` fails the build on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedWaiver {
    /// 1-based line of the broken waiver comment.
    pub line: usize,
    /// The comment text as written.
    pub text: String,
    /// What is wrong with it.
    pub problem: String,
}

/// Result of masking one file.
pub struct Masked {
    /// The source with comments and string/char literals blanked.
    pub text: String,
    /// All well-formed waivers found in comments, in order.
    pub waivers: Vec<Waiver>,
    /// Waiver-shaped comments that fail the grammar.
    pub malformed: Vec<MalformedWaiver>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Masks `src`, blanking comments and literals and collecting waivers.
pub fn mask(src: &str) -> Masked {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut waivers = Vec::new();
    let mut malformed = Vec::new();
    let mut state = State::Code;
    let mut i = 0;
    let mut line = 1usize;
    // Whether any code byte has appeared on the current line (decides
    // inline vs standalone waivers).
    let mut line_has_code = false;
    // Comment bytes being accumulated for waiver parsing. Kept as raw
    // bytes so multi-byte UTF-8 (e.g. the `—` separator) survives;
    // decoded once at flush time.
    let mut comment_buf: Vec<u8> = Vec::new();
    let mut comment_line = 1usize;
    let mut comment_inline = false;

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            if state == State::LineComment {
                flush_comment(
                    &mut waivers,
                    &mut malformed,
                    &String::from_utf8_lossy(&comment_buf),
                    comment_line,
                    comment_inline,
                );
                comment_buf.clear();
                state = State::Code;
            }
            out.push(b'\n');
            line += 1;
            line_has_code = false;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    comment_line = line;
                    comment_inline = line_has_code;
                    comment_buf.clear();
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    state = State::Str;
                    out.push(b'"');
                    line_has_code = true;
                    i += 1;
                } else if b == b'r' && matches!(bytes.get(i + 1), Some(b'"' | b'#')) {
                    // Raw string r"..." or r#"..."#.
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') {
                        state = State::RawStr(hashes);
                        out.extend(std::iter::repeat_n(b' ', j - i + 1));
                        line_has_code = true;
                        i = j + 1;
                    } else {
                        out.push(b);
                        line_has_code = true;
                        i += 1;
                    }
                } else if b == b'\'' {
                    // Either a char literal or a lifetime. A lifetime
                    // is 'ident not followed by a closing quote.
                    if is_char_literal(bytes, i) {
                        state = State::Char;
                        out.push(b'\'');
                        line_has_code = true;
                        i += 1;
                    } else {
                        out.push(b);
                        line_has_code = true;
                        i += 1;
                    }
                } else {
                    if !b.is_ascii_whitespace() {
                        line_has_code = true;
                    }
                    out.push(b);
                    i += 1;
                }
            }
            State::LineComment => {
                comment_buf.push(b);
                out.push(b' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' && i + 1 < bytes.len() {
                    if bytes[i + 1] == b'\n' {
                        // String line-continuation: the escape consumes
                        // the newline, but the mask must still emit it
                        // to stay line-aligned with the source.
                        out.extend_from_slice(b" \n");
                        line += 1;
                        line_has_code = false;
                    } else {
                        out.extend_from_slice(b"  ");
                    }
                    i += 2;
                } else if b == b'"' {
                    state = State::Code;
                    out.push(b'"');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' && closes_raw(bytes, i, hashes) {
                    state = State::Code;
                    out.extend(std::iter::repeat_n(b' ', hashes as usize + 1));
                    i += 1 + hashes as usize;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            State::Char => {
                if b == b'\\' && i + 1 < bytes.len() {
                    if bytes[i + 1] == b'\n' {
                        // Not valid Rust, but keep line alignment even
                        // on malformed input.
                        out.extend_from_slice(b" \n");
                        line += 1;
                        line_has_code = false;
                    } else {
                        out.extend_from_slice(b"  ");
                    }
                    i += 2;
                } else if b == b'\'' {
                    state = State::Code;
                    out.push(b'\'');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    if state == State::LineComment {
        flush_comment(
            &mut waivers,
            &mut malformed,
            &String::from_utf8_lossy(&comment_buf),
            comment_line,
            comment_inline,
        );
    }

    Masked {
        // The mask only rewrites ASCII bytes in code state and blanks
        // everything else, so the output is valid UTF-8 whenever the
        // input was. Fall back to lossy just in case.
        text: String::from_utf8(out)
            .unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned()),
        waivers,
        malformed,
    }
}

/// Is the `'` at `i` opening a char literal (vs a lifetime)?
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(&c) => {
            if c == b'\'' {
                return false; // '' is nothing valid; treat as lifetime-ish
            }
            // 'x' → char; 'ident (no closing quote soon) → lifetime.
            if c.is_ascii_alphanumeric() || c == b'_' {
                bytes.get(i + 2) == Some(&b'\'')
            } else {
                // Punctuation like '(' — must be a char literal.
                true
            }
        }
        None => false,
    }
}

/// Does the `"` at `i` close a raw string opened with `hashes` hashes?
fn closes_raw(bytes: &[u8], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| bytes.get(i + 1 + k) == Some(&b'#'))
}

/// Strips one of the accepted reason separators (`—`, `–`, `-`, `:`).
fn strip_separator(reason: &str) -> &str {
    let mut reason = reason.trim_start();
    for dash in ["—", "–", "-", ":"] {
        if let Some(r) = reason.strip_prefix(dash) {
            reason = r.trim_start();
            break;
        }
    }
    reason
}

/// Parses a completed `//` comment body under the unified waiver
/// grammar.
///
/// Accepted forms (`<dash>` is `—`, `–`, `-`, or `:`):
///
/// * `lint: allow(<rule>) <dash> <reason>`
/// * `audit: allow(<rule>) <dash> <reason>`
/// * `hotpath: allow(<rule>) <dash> <reason>`
/// * `determinism: allow(<rule>) <dash> <reason>`
/// * `audit: ordering(<reason>)` — shorthand for
///   `audit: allow(atomic-ordering) — <reason>`
///
/// A reason is mandatory; waiver-shaped comments without one are
/// recorded as malformed so `cargo xtask waivers` can reject them.
fn flush_comment(
    waivers: &mut Vec<Waiver>,
    malformed: &mut Vec<MalformedWaiver>,
    comment: &str,
    line: usize,
    inline: bool,
) {
    let text = comment.trim();
    let (tool, rest) = if let Some(rest) = text.strip_prefix("lint:") {
        (Tool::Lint, rest.trim_start())
    } else if let Some(rest) = text.strip_prefix("audit:") {
        (Tool::Audit, rest.trim_start())
    } else if let Some(rest) = text.strip_prefix("hotpath:") {
        (Tool::Hotpath, rest.trim_start())
    } else if let Some(rest) = text.strip_prefix("determinism:") {
        (Tool::Determinism, rest.trim_start())
    } else {
        return;
    };

    if let Some(rest) = rest.strip_prefix("allow(") {
        let Some(close) = rest.find(')') else {
            malformed.push(MalformedWaiver {
                line,
                text: text.to_string(),
                problem: "unclosed allow(...)".to_string(),
            });
            return;
        };
        let rule = rest[..close].trim().to_string();
        let reason = strip_separator(&rest[close + 1..]).trim_end().to_string();
        if rule.is_empty() {
            malformed.push(MalformedWaiver {
                line,
                text: text.to_string(),
                problem: "empty rule name".to_string(),
            });
        } else if reason.is_empty() {
            malformed.push(MalformedWaiver {
                line,
                text: text.to_string(),
                problem: "waiver without a written reason".to_string(),
            });
        } else {
            waivers.push(Waiver {
                line,
                tool,
                rule,
                reason,
                inline,
            });
        }
    } else if tool == Tool::Audit && rest.starts_with("ordering(") {
        let inner = &rest["ordering(".len()..];
        let Some(close) = inner.rfind(')') else {
            malformed.push(MalformedWaiver {
                line,
                text: text.to_string(),
                problem: "unclosed ordering(...)".to_string(),
            });
            return;
        };
        let reason = inner[..close].trim().to_string();
        if reason.is_empty() {
            malformed.push(MalformedWaiver {
                line,
                text: text.to_string(),
                problem: "ordering() justification without a written reason".to_string(),
            });
        } else {
            waivers.push(Waiver {
                line,
                tool,
                rule: "atomic-ordering".to_string(),
                reason,
                inline,
            });
        }
    }
    // Other `lint:` / `audit:` prose comments are not waiver-shaped
    // and are ignored.
}

// ---------------------------------------------------------------------
// File discovery
// ---------------------------------------------------------------------

/// One scanned compilation unit: a crate name plus its `.rs` files.
#[derive(Debug)]
pub struct Unit {
    /// The crate directory name (`geom`, `net`, ...); the root package
    /// scans as `threedess`.
    pub crate_name: String,
    /// All `.rs` files under the unit's `src/`, sorted.
    pub files: Vec<PathBuf>,
}

/// Enumerates the workspace's units: the root package's `src/` plus
/// every `crates/*/src/`, with files optionally restricted to
/// `changed` (canonicalized absolute paths).
pub fn workspace_units(
    root: &Path,
    changed: Option<&HashSet<PathBuf>>,
) -> Result<Vec<Unit>, String> {
    let mut units = Vec::new();
    let mut dirs: Vec<(String, PathBuf)> = Vec::new();

    let root_src = root.join("src");
    if root_src.is_dir() {
        dirs.push(("threedess".to_string(), root_src));
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut names: Vec<String> = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
            .filter_map(|entry| entry.ok())
            .filter(|entry| entry.path().is_dir())
            .map(|entry| entry.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        for name in names {
            let src = crates_dir.join(&name).join("src");
            if src.is_dir() {
                dirs.push((name, src));
            }
        }
    }

    for (crate_name, src_dir) in dirs {
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        if let Some(changed) = changed {
            files.retain(|f| {
                std::fs::canonicalize(f)
                    .map(|abs| changed.contains(&abs))
                    .unwrap_or(false)
            });
        }
        units.push(Unit { crate_name, files });
    }
    Ok(units)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))? {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The set of files (canonicalized) differing from the merge-base with
/// `main`, for `--changed` runs: committed differences, working-tree
/// edits, and untracked files. Falls back to `origin/main`, then to
/// plain `HEAD` (working-tree changes only) when no `main` exists.
pub fn changed_files(root: &Path) -> Result<HashSet<PathBuf>, String> {
    let base = ["main", "origin/main"]
        .iter()
        .find_map(|r| git(root, &["merge-base", "HEAD", r]).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "HEAD".to_string());
    let mut set = HashSet::new();
    let diff = git(root, &["diff", "--name-only", "-z", &base])?;
    let untracked = git(root, &["ls-files", "--others", "--exclude-standard", "-z"])?;
    for name in diff.split('\0').chain(untracked.split('\0')) {
        if name.is_empty() {
            continue;
        }
        // Deleted files fail to canonicalize and are simply absent.
        if let Ok(abs) = std::fs::canonicalize(root.join(name)) {
            set.insert(abs);
        }
    }
    Ok(set)
}

fn git(root: &Path, args: &[&str]) -> Result<String, String> {
    let out = Command::new("git")
        .arg("-C")
        .arg(root)
        .args(args)
        .output()
        .map_err(|e| format!("run git {}: {e}", args.join(" ")))?;
    if !out.status.success() {
        return Err(format!(
            "git {} failed: {}",
            args.join(" "),
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    String::from_utf8(out.stdout).map_err(|e| format!("git {} output: {e}", args.join(" ")))
}

// ---------------------------------------------------------------------
// Test-region tracking
// ---------------------------------------------------------------------

/// Per-line "inside test code" flags for masked source lines: a block
/// opened after `#[cfg(test)]` or `#[test]` is test code, tracked by
/// brace depth. The attribute line itself counts as test code, so a
/// single-line `#[cfg(test)] mod t { ... }` both exempts itself and
/// consumes its pending skip on its own opening brace.
pub fn test_lines(lines: &[&str]) -> Vec<bool> {
    let mut flags = Vec::with_capacity(lines.len());
    let mut depth: usize = 0;
    let mut skip_stack: Vec<usize> = Vec::new();
    let mut pending_skip = false;

    for line in lines {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[test]") {
            pending_skip = true;
        }
        flags.push(!skip_stack.is_empty() || pending_skip);
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending_skip {
                        skip_stack.push(depth);
                        pending_skip = false;
                    }
                }
                '}' => {
                    if skip_stack.last() == Some(&depth) {
                        skip_stack.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            }
        }
    }
    flags
}

// ---------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------

/// One rule violation, waived or not.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path relative to the scanned root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Name of the rule that fired.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
    /// The waiver reason, when a matching waiver covers this line.
    pub waiver: Option<String>,
}

/// Everything one analysis run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, waived and unwaived, in path/line order.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not covered by a waiver (these fail the build).
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waiver.is_none())
    }

    /// Number of waived findings.
    pub fn waived_count(&self) -> usize {
        self.findings.iter().filter(|f| f.waiver.is_some()).count()
    }

    /// Number of unwaived findings.
    pub fn unwaived_count(&self) -> usize {
        self.findings.len() - self.waived_count()
    }

    /// Sorts findings into path/line order.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    }
}

/// Records a finding for `tool`'s `rule`, attaching a waiver when one
/// of the matching tool and rule covers the line (inline waivers cover
/// their own line; standalone waivers cover the next code line).
#[allow(clippy::too_many_arguments)]
pub fn push_finding(
    report: &mut Report,
    waivers: &[Waiver],
    lines: &[&str],
    rel: &str,
    lineno: usize,
    tool: Tool,
    rule: &'static str,
    message: String,
) {
    let waiver = waivers.iter().find_map(|w| {
        if w.tool != tool || w.rule != rule {
            return None;
        }
        let covered = if w.inline {
            w.line == lineno
        } else {
            standalone_target(lines, w.line) == Some(lineno)
        };
        covered.then(|| w.reason.clone())
    });
    report.findings.push(Finding {
        file: rel.to_string(),
        line: lineno,
        rule,
        message,
        waiver,
    });
}

/// The line a standalone waiver comment covers: the next non-blank
/// line of (masked) code after it.
pub fn standalone_target(lines: &[&str], waiver_line: usize) -> Option<usize> {
    lines
        .iter()
        .enumerate()
        .skip(waiver_line) // lines[waiver_line] is the line after (0-based vs 1-based)
        .find(|(_, l)| !l.trim().is_empty())
        .map(|(idx, _)| idx + 1)
}

// ---------------------------------------------------------------------
// Waiver inventory (`cargo xtask waivers`)
// ---------------------------------------------------------------------

/// One well-formed waiver found in the tree, with the code line it
/// covers resolved.
#[derive(Debug)]
pub struct InventoryEntry {
    /// Path relative to the scanned root.
    pub file: String,
    /// The parsed waiver.
    pub waiver: Waiver,
    /// The line the waiver covers (own line if inline, next code line
    /// otherwise; `None` for a standalone waiver at end of file).
    pub target: Option<usize>,
}

/// Every waiver (and waiver-shaped mistake) in the scanned tree.
#[derive(Debug, Default)]
pub struct Inventory {
    /// Well-formed waivers, in path/line order.
    pub entries: Vec<InventoryEntry>,
    /// Malformed waiver attempts (file, details), in path/line order.
    pub malformed: Vec<(String, MalformedWaiver)>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Collects the waiver inventory for the workspace at `root`.
pub fn waiver_inventory(
    root: &Path,
    changed: Option<&HashSet<PathBuf>>,
) -> Result<Inventory, String> {
    let mut inv = Inventory::default();
    for unit in workspace_units(root, changed)? {
        for file in &unit.files {
            inv.files_scanned += 1;
            let source = std::fs::read_to_string(file)
                .map_err(|e| format!("read {}: {e}", file.display()))?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(file)
                .to_string_lossy()
                .into_owned();
            let masked = mask(&source);
            let lines: Vec<&str> = masked.text.lines().collect();
            for w in masked.waivers {
                let target = if w.inline {
                    Some(w.line)
                } else {
                    standalone_target(&lines, w.line)
                };
                inv.entries.push(InventoryEntry {
                    file: rel.clone(),
                    waiver: w,
                    target,
                });
            }
            for m in masked.malformed {
                inv.malformed.push((rel.clone(), m));
            }
        }
    }
    inv.entries
        .sort_by(|a, b| (a.file.as_str(), a.waiver.line).cmp(&(b.file.as_str(), b.waiver.line)));
    inv.malformed
        .sort_by(|a, b| (a.0.as_str(), a.1.line).cmp(&(b.0.as_str(), b.1.line)));
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let m = mask("let x = \"panic!(boom)\"; // .unwrap() in comment\nlet y = 1;\n");
        assert!(!m.text.contains("panic!"));
        assert!(!m.text.contains(".unwrap()"));
        assert!(m.text.contains("let y = 1;"));
        assert_eq!(m.text.lines().count(), 2);
    }

    #[test]
    fn raw_strings_and_chars() {
        let m = mask("let s = r#\"a \".unwrap()\" b\"#; let c = '\\''; let l: &'static str = s;");
        assert!(!m.text.contains("unwrap"));
        assert!(m.text.contains("&'static str"));
    }

    #[test]
    fn nested_block_comments() {
        let m = mask("/* outer /* inner .unwrap() */ still comment */ let x = 5;");
        assert!(!m.text.contains("unwrap"));
        assert!(m.text.contains("let x = 5;"));
    }

    #[test]
    fn string_line_continuation_keeps_line_alignment() {
        // The `\` at end of line 1 is a string line-continuation: the
        // escape consumes the newline, which must still appear in the
        // mask so later line numbers stay aligned.
        let src = "let s = \"abc\\\ndef\";\nbaz(); // lint: allow(unwrap) — reason here\n";
        let m = mask(src);
        assert_eq!(m.text.lines().count(), src.lines().count());
        assert_eq!(m.waivers.len(), 1);
        assert_eq!(m.waivers[0].line, 3);
        assert!(m.waivers[0].inline);
    }

    #[test]
    fn waiver_parsing() {
        let src = "\
foo(); // lint: allow(unwrap) — index is bounds-checked above
// lint: allow(float-cmp) - inputs are finite by construction
bar();
// not a waiver: lint allow(x)
// lint: allow(no-reason)
";
        let m = mask(src);
        assert_eq!(m.waivers.len(), 2);
        assert_eq!(m.waivers[0].tool, Tool::Lint);
        assert_eq!(m.waivers[0].rule, "unwrap");
        assert!(m.waivers[0].inline);
        assert_eq!(m.waivers[0].line, 1);
        // The em-dash separator is multi-byte UTF-8; the reason must
        // come out clean, with the whole separator stripped.
        assert_eq!(m.waivers[0].reason, "index is bounds-checked above");
        assert_eq!(m.waivers[1].rule, "float-cmp");
        assert!(!m.waivers[1].inline);
        assert_eq!(m.waivers[1].line, 2);
        assert_eq!(m.waivers[1].reason, "inputs are finite by construction");
        // The reason-less waiver is recorded as malformed, not ignored.
        assert_eq!(m.malformed.len(), 1);
        assert_eq!(m.malformed[0].line, 5);
    }

    #[test]
    fn audit_waivers_and_ordering_shorthand() {
        let src = "\
a(); // audit: allow(thread-hygiene) — monitor thread is detached by design
b(); // audit: ordering(monotonic counter; no data published)
c(); // audit: ordering()
d(); // audit: allow(wire-alloc)
";
        let m = mask(src);
        assert_eq!(m.waivers.len(), 2);
        assert_eq!(m.waivers[0].tool, Tool::Audit);
        assert_eq!(m.waivers[0].rule, "thread-hygiene");
        assert_eq!(m.waivers[1].rule, "atomic-ordering");
        assert_eq!(m.waivers[1].reason, "monotonic counter; no data published");
        assert!(m.waivers[1].inline);
        assert_eq!(m.malformed.len(), 2);
        assert_eq!(m.malformed[0].line, 3);
        assert_eq!(m.malformed[1].line, 4);
    }

    #[test]
    fn hotpath_waivers_parse_like_the_others() {
        let src = "\
a(); // hotpath: allow(hot-alloc) — scratch is reused across queries
// hotpath: allow(hot-block) - sink write is filter-gated
b();
c(); // hotpath: allow(hot-alloc)
";
        let m = mask(src);
        assert_eq!(m.waivers.len(), 2);
        assert_eq!(m.waivers[0].tool, Tool::Hotpath);
        assert_eq!(m.waivers[0].rule, "hot-alloc");
        assert!(m.waivers[0].inline);
        assert_eq!(m.waivers[1].rule, "hot-block");
        assert!(!m.waivers[1].inline);
        // Reason-less hotpath waivers are malformed, same as lint/audit.
        assert_eq!(m.malformed.len(), 1);
        assert_eq!(m.malformed[0].line, 4);
    }

    #[test]
    fn determinism_waivers_parse_like_the_others() {
        let src = "\
a(); // determinism: allow(unordered-iter) — rendered through a sorted Vec below
// determinism: allow(time-taint) - latency feeds metrics only, never the artifact
b();
c(); // determinism: allow(float-reduction)
";
        let m = mask(src);
        assert_eq!(m.waivers.len(), 2);
        assert_eq!(m.waivers[0].tool, Tool::Determinism);
        assert_eq!(m.waivers[0].rule, "unordered-iter");
        assert!(m.waivers[0].inline);
        assert_eq!(m.waivers[1].rule, "time-taint");
        assert!(!m.waivers[1].inline);
        // Reason-less determinism waivers are malformed, same as the
        // other tools.
        assert_eq!(m.malformed.len(), 1);
        assert_eq!(m.malformed[0].line, 4);
    }

    #[test]
    fn lint_waiver_does_not_cross_tools() {
        let src = "x(); // lint: allow(atomic-ordering) — wrong tool\n";
        let m = mask(src);
        assert_eq!(m.waivers.len(), 1);
        assert_eq!(m.waivers[0].tool, Tool::Lint);
        let lines: Vec<&str> = m.text.lines().collect();
        let mut report = Report::default();
        push_finding(
            &mut report,
            &m.waivers,
            &lines,
            "t.rs",
            1,
            Tool::Audit,
            "atomic-ordering",
            "x".to_string(),
        );
        assert_eq!(
            report.unwaived_count(),
            1,
            "lint waiver must not cover audit"
        );
    }

    #[test]
    fn test_lines_tracks_regions_and_single_line_mods() {
        let src = "\
fn lib() {}
#[cfg(test)] mod t { fn p() {} }
fn lib2() {
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {}
}
fn lib3() {}
";
        let flags = test_lines(&src.lines().collect::<Vec<_>>());
        assert_eq!(
            flags,
            vec![false, true, false, false, true, true, true, true, true, false]
        );
    }
}
