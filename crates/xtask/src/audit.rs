//! The rule engine behind `cargo xtask audit` — concurrency and
//! resource-safety checks for the serving stack.
//!
//! Four rule families (see DESIGN.md "Static analysis &
//! error-handling policy"):
//!
//! * `lock-discipline` — a `Mutex`/`RwLock` guard binding must not
//!   stay live across blocking calls: I/O, channel operations,
//!   `thread::sleep`, or calls into extraction/search. Snapshot reads
//!   in the SERVER tier exist precisely so no lock is held through
//!   heavy work; this rule keeps that fixed mechanically.
//! * `atomic-ordering` — every `Ordering::Relaxed` in non-test code
//!   must carry an `// audit: ordering(<reason>)` justification (or be
//!   upgraded); `Ordering::SeqCst` is flagged as probable
//!   over-synchronization (Acquire/Release almost always suffices).
//! * `thread-hygiene` — every `thread::spawn` / `Builder::spawn` must
//!   have its `JoinHandle` joined somewhere in the same file
//!   (shutdown/Drop path) or carry a written detach waiver. Scoped
//!   spawns (`scope.spawn`, crossbeam) auto-join and are exempt.
//! * `wire-alloc` — on wire/file-decode paths, any
//!   `Vec::with_capacity(n)` / `vec![_; n]` / `.reserve(n)` whose size
//!   comes from decoded input must be dominated in-function by a cap
//!   check mentioning a named `MAX_*` constant (or an explicit
//!   max/limit comparison) on the same variable.
//!
//! Like `lint`, this is a masked line scanner, not a parser: it is
//! deliberately over-approximate and uses waivers
//! (`// audit: allow(<rule>) — <reason>`) as the escape hatch.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use crate::scan::{mask, push_finding, test_lines, workspace_units, Report, Tool, Waiver};

/// Rule names (shared with waiver `allow(...)` syntax).
pub const RULE_LOCK: &str = "lock-discipline";
pub const RULE_ORDERING: &str = "atomic-ordering";
pub const RULE_THREAD: &str = "thread-hygiene";
pub const RULE_WIRE: &str = "wire-alloc";

/// All audit rule names, for waiver-inventory validation.
pub const AUDIT_RULES: [&str; 4] = [RULE_LOCK, RULE_ORDERING, RULE_THREAD, RULE_WIRE];

/// Files (workspace-relative prefixes) whose allocations decode wire
/// or file input and therefore fall under `wire-alloc`. The dataset
/// crate *generates* meshes procedurally and is deliberately absent.
const WIRE_AUDITED_PREFIXES: [&str; 4] = [
    "crates/net/src/",
    "crates/geom/src/io.rs",
    "crates/core/src/persist.rs",
    "crates/core/src/snapshot.rs",
];

/// Line fragments that block: I/O, channel ops, sleeping, joining, or
/// calls into extraction/search. A live lock guard on such a line is a
/// `lock-discipline` finding. Shared with the `hotpath` pass, which
/// flags (a subset of) these inside stage-reachable functions.
pub const BLOCKING_PATTERNS: [&str; 22] = [
    "sleep(",
    ".recv()",
    ".recv_timeout(",
    ".recv_deadline(",
    ".send(",
    ".write_all(",
    ".read_exact(",
    ".read_to_end(",
    ".read_to_string(",
    ".flush()",
    "write_frame(",
    "read_frame(",
    ".accept()",
    "connect(",
    "connect_timeout(",
    ".join()",
    "extract(",
    "search_mesh(",
    "search_features(",
    "multi_step_search(",
    "multi_step_mesh(",
    "bulk_insert(",
];

/// Audits the workspace rooted at `root` (same unit discovery as
/// `lint`). When `changed` is given, only files in that set are
/// scanned.
pub fn audit_root(root: &Path, changed: Option<&HashSet<PathBuf>>) -> Result<Report, String> {
    let mut report = Report::default();
    for unit in workspace_units(root, changed)? {
        for file in &unit.files {
            report.files_scanned += 1;
            let source = std::fs::read_to_string(file)
                .map_err(|e| format!("read {}: {e}", file.display()))?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(file)
                .to_string_lossy()
                .into_owned();
            audit_file(&mut report, &rel, &source);
        }
    }
    report.sort();
    Ok(report)
}

fn audit_file(report: &mut Report, rel: &str, source: &str) {
    let masked = mask(source);
    let lines: Vec<&str> = masked.text.lines().collect();
    let in_test = test_lines(&lines);
    let wire_audited = WIRE_AUDITED_PREFIXES
        .iter()
        .any(|p| rel == *p || rel.starts_with(p));

    check_locks(report, &masked.waivers, &lines, &in_test, rel);
    check_threads(report, &masked.waivers, &lines, &in_test, rel);
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let lineno = idx + 1;
        check_ordering(report, &masked.waivers, &lines, rel, lineno, line);
        if wire_audited {
            check_wire_alloc(report, &masked.waivers, &lines, rel, lineno, line);
        }
    }
}

// ---------------------------------------------------------------------
// Rule 1: lock-discipline
// ---------------------------------------------------------------------

/// A lock guard currently live in the scan.
struct LiveGuard {
    name: String,
    bound_line: usize,
    /// Brace depth at the end of the binding line; the guard dies when
    /// depth drops below this.
    depth: usize,
    /// Whether a finding was already emitted for this guard (one per
    /// guard is enough).
    reported: bool,
}

/// Tracks `let guard = ..lock()/..read()/..write()` bindings by brace
/// depth and flags the first blocking call each guard is live across.
fn check_locks(
    report: &mut Report,
    waivers: &[Waiver],
    lines: &[&str],
    in_test: &[bool],
    rel: &str,
) {
    let mut depth: usize = 0;
    let mut guards: Vec<LiveGuard> = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let exempt = in_test[idx];

        // Explicit early release: drop(guard) retires the binding.
        if !guards.is_empty() {
            guards.retain(|g| !line.contains(&format!("drop({})", g.name)));
        }

        // Blocking call while a guard is live?
        if !exempt && !guards.is_empty() {
            let blocking = BLOCKING_PATTERNS.iter().find(|p| line.contains(**p));
            if let Some(pattern) = blocking {
                for guard in guards.iter_mut().filter(|g| !g.reported) {
                    // The binding line itself may both take the lock
                    // and name a blocking-looking call (e.g. a lock
                    // acquired from an accessor); only lines after the
                    // binding count.
                    if lineno > guard.bound_line {
                        guard.reported = true;
                        push_finding(
                            report,
                            waivers,
                            lines,
                            rel,
                            lineno,
                            Tool::Audit,
                            RULE_LOCK,
                            format!(
                                "lock guard `{}` (bound line {}) held across blocking call `{}` — \
                                 drop the guard first, or waive with a reason",
                                guard.name,
                                guard.bound_line,
                                pattern.trim_end_matches('(')
                            ),
                        );
                    }
                }
            }
        }

        // New guard binding on this line? Registered after the
        // blocking check so a binding never flags itself.
        if !exempt {
            if let Some(name) = lock_binding(line) {
                // `_` bindings drop the guard immediately — no risk.
                // `_name` bindings DO hold the guard and are tracked.
                if name != "_" {
                    guards.push(LiveGuard {
                        name,
                        bound_line: lineno,
                        depth: depth + line_open_delta(line),
                        reported: false,
                    });
                }
            }
        }

        // Brace tracking; retire guards whose scope closed.
        for ch in line.chars() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                }
                _ => {}
            }
        }
    }
}

/// Net `{` minus `}` before any scope can close on the binding line —
/// used so `let g = m.lock(); {` registers at the inner depth. For the
/// common single-statement case this is 0.
fn line_open_delta(line: &str) -> usize {
    let mut delta: isize = 0;
    let mut min = 0isize;
    for ch in line.chars() {
        match ch {
            '{' => delta += 1,
            '}' => {
                delta -= 1;
                min = min.min(delta);
            }
            _ => {}
        }
    }
    // Guards bound on a line that closes scopes are rare; anchor at
    // the post-line depth change, never below zero net.
    delta.max(min).max(0) as usize
}

/// If `line` binds a lock guard (`let [mut] name = ...lock()/.read()/
/// .write()...`), returns the binding name.
fn lock_binding(line: &str) -> Option<String> {
    let acquires = line.contains("lock()") || line.contains(".read()") || line.contains(".write()");
    if !acquires {
        return None;
    }
    let trimmed = line.trim_start();
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    // The acquisition must come after the `=` (a destructured
    // `let Ok(g) = m.lock()` style is missed — documented limitation).
    let eq = trimmed.find('=')?;
    let after_eq = &trimmed[eq + 1..];
    let acquires_rhs = after_eq.contains("lock()")
        || after_eq.contains(".read()")
        || after_eq.contains(".write()");
    (!name.is_empty() && acquires_rhs).then_some(name)
}

// ---------------------------------------------------------------------
// Rule 2: atomic-ordering
// ---------------------------------------------------------------------

fn check_ordering(
    report: &mut Report,
    waivers: &[Waiver],
    lines: &[&str],
    rel: &str,
    lineno: usize,
    line: &str,
) {
    // Token-boundary matching on the bare name: `Ordering::Relaxed`,
    // `use ... Relaxed`, and aliased forms all hit, so the rule cannot
    // be dodged by importing the variant. `std::cmp::Ordering` never
    // declares these names, so there are no sort-comparator false
    // positives.
    if has_token(line, "Relaxed") {
        push_finding(
            report,
            waivers,
            lines,
            rel,
            lineno,
            Tool::Audit,
            RULE_ORDERING,
            "Ordering::Relaxed on a cross-thread atomic — upgrade the ordering or \
             justify with // audit: ordering(<reason>)"
                .to_string(),
        );
    }
    if has_token(line, "SeqCst") {
        push_finding(
            report,
            waivers,
            lines,
            rel,
            lineno,
            Tool::Audit,
            RULE_ORDERING,
            "Ordering::SeqCst is over-synchronization on hot paths — \
             Acquire/Release almost always suffices; justify with // audit: ordering(<reason>)"
                .to_string(),
        );
    }
}

/// Does `line` contain `token` delimited by non-identifier characters?
pub(crate) fn has_token(line: &str, token: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(token) {
        let abs = start + pos;
        let prev_ok = !line[..abs]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let next_ok = !line[abs + token.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if prev_ok && next_ok {
            return true;
        }
        start = abs + token.len();
    }
    false
}

// ---------------------------------------------------------------------
// Rule 3: thread-hygiene
// ---------------------------------------------------------------------

/// Flags `thread::spawn` / `Builder::spawn` in files that never call
/// `.join()`. The heuristic is file-level: a spawn whose handle is
/// joined on some shutdown/Drop path elsewhere in the same file is
/// considered hygienic (matching how NetServer/MetricsServer are
/// structured); a file that spawns and never joins must waive each
/// spawn with a detach reason.
fn check_threads(
    report: &mut Report,
    waivers: &[Waiver],
    lines: &[&str],
    in_test: &[bool],
    rel: &str,
) {
    let file_joins = lines
        .iter()
        .enumerate()
        .any(|(idx, l)| !in_test[idx] && l.contains(".join()"));

    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let is_spawn = line.contains("thread::spawn(")
            || (line.contains(".spawn(") && !line.contains("Command"));
        if !is_spawn {
            continue;
        }
        // Scoped spawns auto-join at the end of the scope closure.
        if spawn_receiver_is_scope(line) {
            continue;
        }
        if !file_joins {
            push_finding(
                report,
                waivers,
                lines,
                rel,
                idx + 1,
                Tool::Audit,
                RULE_THREAD,
                "spawned thread with no .join() anywhere in this file — join the \
                 handle on shutdown/Drop or waive with a detach reason"
                    .to_string(),
            );
        }
    }
}

/// Is the receiver immediately before `.spawn(` the identifier
/// `scope`/`s` of a scoped-thread API (`scope.spawn(..)`)? Builder
/// chains (`Builder::new()...spawn(`) and `thread::spawn(` are not.
fn spawn_receiver_is_scope(line: &str) -> bool {
    line.find(".spawn(").is_some_and(|pos| {
        let recv: String = line[..pos]
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        recv == "scope" || recv == "s"
    })
}

// ---------------------------------------------------------------------
// Rule 4: wire-alloc
// ---------------------------------------------------------------------

/// The allocation forms rule 4 inspects.
const ALLOC_FORMS: [&str; 3] = ["with_capacity(", "vec![", ".reserve("];

fn check_wire_alloc(
    report: &mut Report,
    waivers: &[Waiver],
    lines: &[&str],
    rel: &str,
    lineno: usize,
    line: &str,
) {
    for form in ALLOC_FORMS {
        let Some(pos) = line.find(form) else { continue };
        let arg = match form {
            "vec![" => {
                // vec![expr; n] — the size is after the `;`.
                let inner = balanced_span(&line[pos + form.len()..], '[', ']');
                match inner.rsplit_once(';') {
                    Some((_, n)) => n.trim().to_string(),
                    None => continue, // vec![a, b, c] — literal list, fixed size
                }
            }
            _ => balanced_span(&line[pos + form.len()..], '(', ')')
                .trim()
                .to_string(),
        };
        let Some(var) = suspicious_size_var(&arg) else {
            continue;
        };
        if !cap_check_dominates(lines, lineno, &var) {
            push_finding(
                report,
                waivers,
                lines,
                rel,
                lineno,
                Tool::Audit,
                RULE_WIRE,
                format!(
                    "allocation sized by `{var}` on a wire/file-decode path with no \
                     dominating cap check against a MAX_* constant — validate the \
                     length first or waive with a reason"
                ),
            );
        }
        break; // one finding per line
    }
}

/// The argument text up to the matching close delimiter (or the rest
/// of the line if unbalanced — line-local scanner limitation).
pub(crate) fn balanced_span(rest: &str, open: char, close: char) -> &str {
    let mut depth = 1;
    for (i, ch) in rest.char_indices() {
        if ch == open {
            depth += 1;
        } else if ch == close {
            depth -= 1;
            if depth == 0 {
                return &rest[..i];
            }
        }
    }
    rest
}

/// Extracts the first "suspicious" size variable from an allocation
/// argument, or `None` if the size is evidently safe.
///
/// Safe tokens: numeric literals, `SCREAMING_CASE` constants, `self`,
/// and identifiers immediately followed by `(` or `.` (function/method
/// results like `cfg.workers.max(1)` — sizes derived through calls are
/// config-shaped, not raw wire integers). An argument containing
/// `.min(` or `.clamp(` is self-capping. What remains — a bare
/// lower-case identifier like `len` or `nv` — is the decoded-input
/// shape this rule exists for.
pub(crate) fn suspicious_size_var(arg: &str) -> Option<String> {
    if arg.contains(".min(") || arg.contains(".clamp(") {
        return None;
    }
    let bytes = arg.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let ident = &arg[start..i];
            // Skip numeric-literal suffixes (`100usize`) — the
            // preceding char is a digit.
            if start > 0 && bytes[start - 1].is_ascii_digit() {
                continue;
            }
            let next_non_space = arg[i..].chars().find(|c| !c.is_whitespace());
            let is_call_or_path =
                matches!(next_non_space, Some('(') | Some('.')) || arg[i..].starts_with("::");
            let is_const = ident
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
                && ident.chars().any(|c| c.is_ascii_uppercase());
            let is_keyword = matches!(
                ident,
                "self" | "as" | "usize" | "u8" | "u16" | "u32" | "u64"
            );
            if !is_call_or_path && !is_const && !is_keyword {
                return Some(ident.to_string());
            }
        } else {
            i += 1;
        }
    }
    None
}

/// Looks backward from the allocation to the enclosing `fn` header for
/// a line that mentions `var` together with cap evidence: a `MAX_*`
/// name, or a `<`/`>` comparison alongside a max/limit/cap token.
fn cap_check_dominates(lines: &[&str], alloc_lineno: usize, var: &str) -> bool {
    let alloc_idx = alloc_lineno - 1;
    // Find the enclosing fn header (nearest preceding line with `fn `
    // at depth — heuristically, just the nearest `fn ` line).
    let fn_idx = lines[..alloc_idx]
        .iter()
        .rposition(|l| {
            let t = l.trim_start();
            t.starts_with("fn ") || t.starts_with("pub fn ") || t.contains(" fn ")
        })
        .unwrap_or(0);
    lines[fn_idx..alloc_idx].iter().any(|l| {
        if !has_token(l, var) {
            return false;
        }
        if l.contains("MAX_") {
            return true;
        }
        let compares = l.contains('<') || l.contains('>');
        let capish = ["max", "limit", "cap"]
            .iter()
            .any(|t| l.to_ascii_lowercase().contains(t));
        compares && capish
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::standalone_target;

    fn run(src: &str, rel: &str) -> Report {
        let mut report = Report::default();
        audit_file(&mut report, rel, src);
        report
    }

    #[test]
    fn lock_across_blocking_is_flagged_once() {
        let src = "\
fn f(m: &std::sync::Mutex<u32>) {
    let guard = m.lock();
    stream.write_all(b\"x\");
    stream.flush();
}
";
        let r = run(src, "crates/x/src/lib.rs");
        let locks: Vec<_> = r.findings.iter().filter(|f| f.rule == RULE_LOCK).collect();
        assert_eq!(locks.len(), 1, "{:?}", r.findings);
        assert_eq!(locks[0].line, 3);
    }

    #[test]
    fn dropped_guard_is_fine() {
        let src = "\
fn f(m: &std::sync::Mutex<u32>) {
    let guard = m.lock();
    drop(guard);
    std::thread::sleep(d);
}
";
        let r = run(src, "crates/x/src/lib.rs");
        assert!(r.findings.iter().all(|f| f.rule != RULE_LOCK));
    }

    #[test]
    fn guard_scope_close_retires_it() {
        let src = "\
fn f(m: &std::sync::Mutex<u32>) {
    {
        let guard = m.lock();
    }
    std::thread::sleep(d);
}
";
        let r = run(src, "crates/x/src/lib.rs");
        assert!(r.findings.iter().all(|f| f.rule != RULE_LOCK));
    }

    #[test]
    fn underscore_binding_is_not_a_live_guard() {
        let src = "\
fn f(m: &std::sync::Mutex<u32>) {
    let _ = m.lock();
    std::thread::sleep(d);
}
";
        let r = run(src, "crates/x/src/lib.rs");
        assert!(r.findings.iter().all(|f| f.rule != RULE_LOCK));
    }

    #[test]
    fn named_underscore_guard_is_live() {
        let src = "\
fn f(m: &std::sync::Mutex<u32>) {
    let _writer = m.lock();
    other.bulk_insert(meshes);
}
";
        let r = run(src, "crates/x/src/lib.rs");
        assert_eq!(r.findings.iter().filter(|f| f.rule == RULE_LOCK).count(), 1);
    }

    #[test]
    fn relaxed_and_seqcst_are_flagged_and_waivable() {
        let src = "\
fn f(a: &AtomicU64) {
    a.fetch_add(1, Ordering::Relaxed); // audit: ordering(pure counter, read via join barrier)
    a.load(Ordering::Relaxed);
    a.store(0, Ordering::SeqCst);
}
";
        let r = run(src, "crates/x/src/lib.rs");
        let ord: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_ORDERING)
            .collect();
        assert_eq!(ord.len(), 3);
        assert!(ord[0].waiver.is_some());
        assert!(ord[1].waiver.is_none());
        assert!(ord[2].waiver.is_none());
    }

    #[test]
    fn cmp_ordering_is_not_flagged() {
        let src = "fn f(a: f64, b: f64) -> std::cmp::Ordering { a.total_cmp(&b) }\n";
        let r = run(src, "crates/x/src/lib.rs");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn spawn_without_join_is_flagged_with_join_is_not() {
        let bad = "fn f() { std::thread::spawn(|| work()); }\n";
        let r = run(bad, "crates/x/src/lib.rs");
        assert_eq!(
            r.findings.iter().filter(|f| f.rule == RULE_THREAD).count(),
            1
        );

        let good = "\
fn f() -> JoinHandle<()> { std::thread::spawn(|| work()) }
fn stop(h: JoinHandle<()>) { let _ = h.join(); }
";
        let r = run(good, "crates/x/src/lib.rs");
        assert!(r.findings.iter().all(|f| f.rule != RULE_THREAD));
    }

    #[test]
    fn scoped_spawn_is_exempt() {
        let src = "fn f() { crossbeam::scope(|scope| { scope.spawn(|_| work()); }); }\n";
        let r = run(src, "crates/x/src/lib.rs");
        assert!(r.findings.iter().all(|f| f.rule != RULE_THREAD));
    }

    #[test]
    fn wire_alloc_without_cap_is_flagged() {
        let src = "\
fn decode(len: usize) -> Vec<u8> {
    let mut payload = vec![0u8; len];
    payload
}
";
        let r = run(src, "crates/net/src/proto.rs");
        let wire: Vec<_> = r.findings.iter().filter(|f| f.rule == RULE_WIRE).collect();
        assert_eq!(wire.len(), 1, "{:?}", r.findings);
        assert_eq!(wire[0].line, 2);
    }

    #[test]
    fn wire_alloc_with_cap_passes() {
        let src = "\
fn decode(len: usize) -> Result<Vec<u8>, E> {
    if len > MAX_FRAME_LEN {
        return Err(E::TooLarge);
    }
    let mut payload = vec![0u8; len];
    Ok(payload)
}
";
        let r = run(src, "crates/net/src/proto.rs");
        assert!(r.findings.iter().all(|f| f.rule != RULE_WIRE));
    }

    #[test]
    fn wire_alloc_outside_audited_paths_is_ignored() {
        let src = "fn gen(n: usize) -> Vec<u8> { Vec::with_capacity(n) }\n";
        let r = run(src, "crates/dataset/src/generate.rs");
        assert!(r.findings.is_empty());
    }

    #[test]
    fn config_shaped_sizes_are_benign() {
        let src =
            "fn f(cfg: &Cfg) { let w = Vec::with_capacity(cfg.workers.max(1)); let _ = w; }\n";
        let r = run(src, "crates/net/src/server.rs");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn const_sized_alloc_is_benign() {
        let src = "fn f() { let v: Vec<u8> = Vec::with_capacity(MAX_HEADER); let _ = v; }\n";
        let r = run(src, "crates/net/src/proto.rs");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn cap_check_must_be_in_same_fn() {
        let src = "\
fn checked(len: usize) {
    if len > MAX_LEN { return; }
}
fn unchecked(len: usize) {
    let v = vec![0u8; len];
    let _ = v;
}
";
        let r = run(src, "crates/net/src/proto.rs");
        assert_eq!(r.findings.iter().filter(|f| f.rule == RULE_WIRE).count(), 1);
    }

    #[test]
    fn test_code_is_exempt_from_all_rules() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let g = m.lock();
        stream.write_all(b\"x\");
        a.load(Ordering::Relaxed);
        std::thread::spawn(|| ());
        let v = vec![0u8; len];
    }
}
";
        let r = run(src, "crates/net/src/proto.rs");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn standalone_waiver_covers_next_line() {
        let src = "\
fn f(a: &AtomicU64) {
    // audit: allow(atomic-ordering) — counter is only read after join
    a.fetch_add(1, Ordering::Relaxed);
}
";
        let r = run(src, "crates/x/src/lib.rs");
        assert_eq!(r.unwaived_count(), 0, "{:?}", r.findings);
        assert_eq!(r.waived_count(), 1);
    }

    #[test]
    fn standalone_target_helper() {
        let lines = vec!["a", "", "b"];
        assert_eq!(standalone_target(&lines, 1), Some(3));
    }
}
