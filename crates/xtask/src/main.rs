//! `cargo xtask` — workspace automation CLI.

#![forbid(unsafe_code)]

use std::collections::HashSet;
use std::path::PathBuf;
use std::process::ExitCode;

use xtask::audit::AUDIT_RULES;
use xtask::determinism::DETERMINISM_RULES;
use xtask::hotpath::HOTPATH_RULES;
use xtask::scan::Tool;
use xtask::{
    audit_root, changed_files, determinism_root, hotpath_root, lint_root, waiver_inventory, Report,
    Rule,
};

const USAGE: &str = "\
cargo xtask <task>

tasks:
  lint   [--json] [--root <dir>] [--changed]
         check the panic-freedom / NaN-safety policy
  audit  [--json] [--root <dir>] [--changed]
         check the concurrency / resource-safety policy
         (lock-discipline, atomic-ordering, thread-hygiene, wire-alloc)
  hotpath [--json] [--root <dir>] [--changed]
         check allocation/blocking discipline in functions reachable
         from the pipeline stage roots and net dispatch
         (hot-alloc, hot-block)
  determinism [--json] [--root <dir>] [--changed]
         check reproducibility discipline: nondeterminism sources
         taint-tracked toward persist/wire/telemetry sinks
         (unordered-iter, rng-discipline, time-taint,
         float-reduction, addr-hash)
  waivers [--json] [--root <dir>]
         list every lint/audit/hotpath/determinism waiver in the
         tree; fails on malformed waivers (missing reason, unknown
         rule)

flags:
  --json     emit machine-readable output
  --root     override the workspace root
  --changed  report only on files differing from the merge-base with
             main (hotpath and determinism still build their call
             graphs over the full tree)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => scan_command(Tool::Lint, &args[1..]),
        Some("audit") => scan_command(Tool::Audit, &args[1..]),
        Some("hotpath") => scan_command(Tool::Hotpath, &args[1..]),
        Some("determinism") => scan_command(Tool::Determinism, &args[1..]),
        Some("waivers") => waivers_command(&args[1..]),
        Some(other) => {
            eprintln!("unknown task `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Parsed common flags.
struct Flags {
    json: bool,
    root: PathBuf,
    changed: bool,
}

/// Parses `[--json] [--root <dir>] [--changed]`, validating the root.
fn parse_flags(task: &str, args: &[String], allow_changed: bool) -> Result<Flags, ExitCode> {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut changed = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--changed" if allow_changed => changed = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory\n{USAGE}");
                    return Err(ExitCode::from(2));
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return Err(ExitCode::from(2));
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    if !root.join("crates").is_dir() {
        // A typo'd --root would otherwise scan zero files and pass.
        eprintln!(
            "xtask {task}: `{}` has no crates/ directory — not a workspace root",
            root.display()
        );
        return Err(ExitCode::from(2));
    }
    Ok(Flags {
        json,
        root,
        changed,
    })
}

fn scan_command(tool: Tool, args: &[String]) -> ExitCode {
    let flags = match parse_flags(tool.name(), args, true) {
        Ok(f) => f,
        Err(code) => return code,
    };

    let changed_set: Option<HashSet<PathBuf>> = if flags.changed {
        match changed_files(&flags.root) {
            Ok(set) => Some(set),
            Err(e) => {
                eprintln!("xtask {}: --changed: {e}", tool.name());
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };

    let run = match tool {
        Tool::Lint => lint_root(&flags.root, changed_set.as_ref()),
        Tool::Audit => audit_root(&flags.root, changed_set.as_ref()),
        Tool::Hotpath => hotpath_root(&flags.root, changed_set.as_ref()),
        Tool::Determinism => determinism_root(&flags.root, changed_set.as_ref()),
    };
    let report = match run {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xtask {}: {e}", tool.name());
            return ExitCode::from(2);
        }
    };

    if flags.json {
        println!("{}", render_json(&report));
    } else {
        render_text(tool, &report);
    }

    if report.unwaived_count() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn waivers_command(args: &[String]) -> ExitCode {
    let flags = match parse_flags("waivers", args, false) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let inventory = match waiver_inventory(&flags.root, None) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("xtask waivers: {e}");
            return ExitCode::from(2);
        }
    };

    // Cross-reference against all passes: a waiver is "active" when a
    // finding of its rule sits on its target line, "stale" otherwise
    // (stale is informational — the code it excused has moved or been
    // fixed). Unknown rule names can never match and are hard errors.
    let lint_rules = [
        Rule::Unwrap.name(),
        Rule::FloatCmp.name(),
        Rule::ForbidUnsafe.name(),
        Rule::LossyCast.name(),
    ];
    let reports = match (
        lint_root(&flags.root, None),
        audit_root(&flags.root, None),
        hotpath_root(&flags.root, None),
        determinism_root(&flags.root, None),
    ) {
        (Ok(l), Ok(a), Ok(h), Ok(d)) => (l, a, h, d),
        (Err(e), _, _, _) | (_, Err(e), _, _) | (_, _, Err(e), _) | (_, _, _, Err(e)) => {
            eprintln!("xtask waivers: {e}");
            return ExitCode::from(2);
        }
    };
    let waived_sites: HashSet<(Tool, &str, usize, &str)> = [
        (Tool::Lint, &reports.0),
        (Tool::Audit, &reports.1),
        (Tool::Hotpath, &reports.2),
        (Tool::Determinism, &reports.3),
    ]
    .into_iter()
    .flat_map(|(tool, report)| {
        report
            .findings
            .iter()
            .filter(|f| f.waiver.is_some())
            .map(move |f| (tool, f.file.as_str(), f.line, f.rule))
    })
    .collect();

    let mut unknown_rule = 0usize;
    let mut stale = 0usize;
    let statuses: Vec<&'static str> = inventory
        .entries
        .iter()
        .map(|e| {
            let known = match e.waiver.tool {
                Tool::Lint => lint_rules.contains(&e.waiver.rule.as_str()),
                Tool::Audit => AUDIT_RULES.contains(&e.waiver.rule.as_str()),
                Tool::Hotpath => HOTPATH_RULES.contains(&e.waiver.rule.as_str()),
                Tool::Determinism => DETERMINISM_RULES.contains(&e.waiver.rule.as_str()),
            };
            if !known {
                unknown_rule += 1;
                return "unknown-rule";
            }
            let active = e.target.is_some_and(|t| {
                waived_sites.contains(&(e.waiver.tool, e.file.as_str(), t, e.waiver.rule.as_str()))
            });
            if active {
                "active"
            } else {
                stale += 1;
                "stale"
            }
        })
        .collect();

    if flags.json {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"files_scanned\": {},\n  \"waivers\": {},\n  \"malformed\": {},\n  \"unknown_rule\": {unknown_rule},\n  \"stale\": {stale},\n  \"entries\": [",
            inventory.files_scanned,
            inventory.entries.len(),
            inventory.malformed.len(),
        ));
        for (i, (e, status)) in inventory.entries.iter().zip(&statuses).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"tool\": {}, \"rule\": {}, \"reason\": {}, \"inline\": {}, \"status\": {}}}",
                json_str(&e.file),
                e.waiver.line,
                json_str(e.waiver.tool.name()),
                json_str(&e.waiver.rule),
                json_str(&e.waiver.reason),
                e.waiver.inline,
                json_str(status),
            ));
        }
        out.push_str(if inventory.entries.is_empty() {
            "],\n  \"malformed_entries\": ["
        } else {
            "\n  ],\n  \"malformed_entries\": ["
        });
        for (i, (file, m)) in inventory.malformed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"text\": {}, \"problem\": {}}}",
                json_str(file),
                m.line,
                json_str(&m.text),
                json_str(&m.problem),
            ));
        }
        out.push_str(if inventory.malformed.is_empty() {
            "]\n}"
        } else {
            "\n  ]\n}"
        });
        println!("{out}");
    } else {
        for (e, status) in inventory.entries.iter().zip(&statuses) {
            println!(
                "{}:{}: {}: allow({}) [{status}] — {}",
                e.file,
                e.waiver.line,
                e.waiver.tool.name(),
                e.waiver.rule,
                e.waiver.reason
            );
        }
        for (file, m) in &inventory.malformed {
            println!("{file}:{}: MALFORMED ({}): {}", m.line, m.problem, m.text);
        }
        eprintln!(
            "xtask waivers: {} file(s) scanned, {} waiver(s) ({stale} stale), {} malformed, {unknown_rule} unknown-rule",
            inventory.files_scanned,
            inventory.entries.len(),
            inventory.malformed.len(),
        );
    }

    if !inventory.malformed.is_empty() || unknown_rule > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// The workspace root: the parent of this crate's directory
/// (`crates/xtask` at build time), or the current directory as a
/// fallback.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|crates| crates.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn render_text(tool: Tool, report: &Report) {
    for finding in report.unwaived() {
        println!(
            "{}:{}: {}: {}",
            finding.file, finding.line, finding.rule, finding.message
        );
    }
    eprintln!(
        "xtask {}: {} file(s) scanned, {} finding(s): {} unwaived, {} waived",
        tool.name(),
        report.files_scanned,
        report.findings.len(),
        report.unwaived_count(),
        report.waived_count(),
    );
}

/// Hand-rolled JSON (keeps xtask dependency-free so the lint builds
/// fast and cold).
fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"unwaived\": {},\n  \"waived\": {},\n  \"findings\": [",
        report.files_scanned,
        report.unwaived_count(),
        report.waived_count(),
    ));
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"waived\": {}",
            json_str(&f.file),
            f.line,
            json_str(f.rule),
            json_str(&f.message),
            f.waiver.is_some(),
        ));
        if let Some(reason) = &f.waiver {
            out.push_str(&format!(", \"waiver_reason\": {}", json_str(reason)));
        }
        out.push('}');
    }
    if report.findings.is_empty() {
        out.push_str("]\n}");
    } else {
        out.push_str("\n  ]\n}");
    }
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
