//! `cargo xtask` — workspace automation CLI.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{lint_root, Report};

const USAGE: &str = "\
cargo xtask <task>

tasks:
  lint [--json] [--root <dir>]   check the panic-freedom / NaN-safety policy
                                 (--json emits machine-readable output;
                                  --root overrides the workspace root)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_command(&args[1..]),
        Some(other) => {
            eprintln!("unknown task `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn lint_command(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = root.unwrap_or_else(workspace_root);
    if !root.join("crates").is_dir() {
        // A typo'd --root would otherwise scan zero files and pass.
        eprintln!(
            "xtask lint: `{}` has no crates/ directory — not a workspace root",
            root.display()
        );
        return ExitCode::from(2);
    }
    let report = match lint_root(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", render_json(&report));
    } else {
        render_text(&report);
    }

    if report.unwaived_count() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// The workspace root: the parent of this crate's directory
/// (`crates/xtask` at build time), or the current directory as a
/// fallback.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|crates| crates.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn render_text(report: &Report) {
    for finding in report.unwaived() {
        println!(
            "{}:{}: {}: {}",
            finding.file, finding.line, finding.rule, finding.message
        );
    }
    eprintln!(
        "xtask lint: {} file(s) scanned, {} finding(s): {} unwaived, {} waived",
        report.files_scanned,
        report.findings.len(),
        report.unwaived_count(),
        report.waived_count(),
    );
}

/// Hand-rolled JSON (keeps xtask dependency-free so the lint builds
/// fast and cold).
fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"unwaived\": {},\n  \"waived\": {},\n  \"findings\": [",
        report.files_scanned,
        report.unwaived_count(),
        report.waived_count(),
    ));
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"waived\": {}",
            json_str(&f.file),
            f.line,
            json_str(f.rule.name()),
            json_str(&f.message),
            f.waiver.is_some(),
        ));
        if let Some(reason) = &f.waiver {
            out.push_str(&format!(", \"waiver_reason\": {}", json_str(reason)));
        }
        out.push('}');
    }
    if report.findings.is_empty() {
        out.push_str("]\n}");
    } else {
        out.push_str("\n  ]\n}");
    }
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
