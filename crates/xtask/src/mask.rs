//! Source masking: blanks out comments and string literals so the
//! rule matchers never fire on text inside them, while extracting
//! `// lint: allow(...)` waiver comments.
//!
//! The mask preserves byte-for-byte line structure — every line of the
//! masked output aligns with the same line of the input, so findings
//! carry real line numbers.

/// A `// lint: allow(<rule>) — <reason>` waiver found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line the waiver comment sits on.
    pub line: usize,
    /// The rule name inside `allow(...)`.
    pub rule: String,
    /// The justification after the dash separator.
    pub reason: String,
    /// True if the waiver comment shares its line with code (then it
    /// covers that line); false if it stands alone (then it covers the
    /// next code line).
    pub inline: bool,
}

/// Result of masking one file.
pub struct Masked {
    /// The source with comments and string/char literals blanked.
    pub text: String,
    /// All waivers found in comments, in order.
    pub waivers: Vec<Waiver>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Masks `src`, blanking comments and literals and collecting waivers.
pub fn mask(src: &str) -> Masked {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut waivers = Vec::new();
    let mut state = State::Code;
    let mut i = 0;
    let mut line = 1usize;
    // Whether any code byte has appeared on the current line (decides
    // inline vs standalone waivers).
    let mut line_has_code = false;
    // Comment bytes being accumulated for waiver parsing. Kept as raw
    // bytes so multi-byte UTF-8 (e.g. the `—` separator) survives;
    // decoded once at flush time.
    let mut comment_buf: Vec<u8> = Vec::new();
    let mut comment_line = 1usize;
    let mut comment_inline = false;

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            if state == State::LineComment {
                flush_comment(
                    &mut waivers,
                    &String::from_utf8_lossy(&comment_buf),
                    comment_line,
                    comment_inline,
                );
                comment_buf.clear();
                state = State::Code;
            }
            out.push(b'\n');
            line += 1;
            line_has_code = false;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    comment_line = line;
                    comment_inline = line_has_code;
                    comment_buf.clear();
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    state = State::Str;
                    out.push(b'"');
                    line_has_code = true;
                    i += 1;
                } else if b == b'r' && matches!(bytes.get(i + 1), Some(b'"' | b'#')) {
                    // Raw string r"..." or r#"..."#.
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') {
                        state = State::RawStr(hashes);
                        out.extend(std::iter::repeat_n(b' ', j - i + 1));
                        line_has_code = true;
                        i = j + 1;
                    } else {
                        out.push(b);
                        line_has_code = true;
                        i += 1;
                    }
                } else if b == b'\'' {
                    // Either a char literal or a lifetime. A lifetime
                    // is 'ident not followed by a closing quote.
                    if is_char_literal(bytes, i) {
                        state = State::Char;
                        out.push(b'\'');
                        line_has_code = true;
                        i += 1;
                    } else {
                        out.push(b);
                        line_has_code = true;
                        i += 1;
                    }
                } else {
                    if !b.is_ascii_whitespace() {
                        line_has_code = true;
                    }
                    out.push(b);
                    i += 1;
                }
            }
            State::LineComment => {
                comment_buf.push(b);
                out.push(b' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' && i + 1 < bytes.len() {
                    if bytes[i + 1] == b'\n' {
                        // String line-continuation: the escape consumes
                        // the newline, but the mask must still emit it
                        // to stay line-aligned with the source.
                        out.extend_from_slice(b" \n");
                        line += 1;
                        line_has_code = false;
                    } else {
                        out.extend_from_slice(b"  ");
                    }
                    i += 2;
                } else if b == b'"' {
                    state = State::Code;
                    out.push(b'"');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' && closes_raw(bytes, i, hashes) {
                    state = State::Code;
                    out.extend(std::iter::repeat_n(b' ', hashes as usize + 1));
                    i += 1 + hashes as usize;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            State::Char => {
                if b == b'\\' && i + 1 < bytes.len() {
                    if bytes[i + 1] == b'\n' {
                        // Not valid Rust, but keep line alignment even
                        // on malformed input.
                        out.extend_from_slice(b" \n");
                        line += 1;
                        line_has_code = false;
                    } else {
                        out.extend_from_slice(b"  ");
                    }
                    i += 2;
                } else if b == b'\'' {
                    state = State::Code;
                    out.push(b'\'');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    if state == State::LineComment {
        flush_comment(
            &mut waivers,
            &String::from_utf8_lossy(&comment_buf),
            comment_line,
            comment_inline,
        );
    }

    Masked {
        // The mask only rewrites ASCII bytes in code state and blanks
        // everything else, so the output is valid UTF-8 whenever the
        // input was. Fall back to lossy just in case.
        text: String::from_utf8(out)
            .unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned()),
        waivers,
    }
}

/// Is the `'` at `i` opening a char literal (vs a lifetime)?
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(&c) => {
            if c == b'\'' {
                return false; // '' is nothing valid; treat as lifetime-ish
            }
            // 'x' → char; 'ident (no closing quote soon) → lifetime.
            if c.is_ascii_alphanumeric() || c == b'_' {
                bytes.get(i + 2) == Some(&b'\'')
            } else {
                // Punctuation like '(' — must be a char literal.
                true
            }
        }
        None => false,
    }
}

/// Does the `"` at `i` close a raw string opened with `hashes` hashes?
fn closes_raw(bytes: &[u8], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| bytes.get(i + 1 + k) == Some(&b'#'))
}

/// Parses a completed `//` comment body for a waiver.
///
/// Accepted form: `lint: allow(<rule>) <dash> <reason>` where `<dash>`
/// is `—`, `–`, `-`, or `:`. The reason must be non-empty — an
/// undocumented waiver is not a waiver.
fn flush_comment(waivers: &mut Vec<Waiver>, comment: &str, line: usize, inline: bool) {
    let text = comment.trim();
    let Some(rest) = text.strip_prefix("lint:") else {
        return;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return;
    };
    let Some(close) = rest.find(')') else {
        return;
    };
    let rule = rest[..close].trim().to_string();
    let mut reason = rest[close + 1..].trim_start();
    for dash in ["—", "–", "-", ":"] {
        if let Some(r) = reason.strip_prefix(dash) {
            reason = r.trim_start();
            break;
        }
    }
    if rule.is_empty() || reason.is_empty() {
        return;
    }
    waivers.push(Waiver {
        line,
        rule,
        reason: reason.trim_end().to_string(),
        inline,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let m = mask("let x = \"panic!(boom)\"; // .unwrap() in comment\nlet y = 1;\n");
        assert!(!m.text.contains("panic!"));
        assert!(!m.text.contains(".unwrap()"));
        assert!(m.text.contains("let y = 1;"));
        assert_eq!(m.text.lines().count(), 2);
    }

    #[test]
    fn raw_strings_and_chars() {
        let m = mask("let s = r#\"a \".unwrap()\" b\"#; let c = '\\''; let l: &'static str = s;");
        assert!(!m.text.contains("unwrap"));
        assert!(m.text.contains("&'static str"));
    }

    #[test]
    fn nested_block_comments() {
        let m = mask("/* outer /* inner .unwrap() */ still comment */ let x = 5;");
        assert!(!m.text.contains("unwrap"));
        assert!(m.text.contains("let x = 5;"));
    }

    #[test]
    fn string_line_continuation_keeps_line_alignment() {
        // The `\` at end of line 1 is a string line-continuation: the
        // escape consumes the newline, which must still appear in the
        // mask so later line numbers stay aligned.
        let src = "let s = \"abc\\\ndef\";\nbaz(); // lint: allow(unwrap) — reason here\n";
        let m = mask(src);
        assert_eq!(m.text.lines().count(), src.lines().count());
        assert_eq!(m.waivers.len(), 1);
        assert_eq!(m.waivers[0].line, 3);
        assert!(m.waivers[0].inline);
    }

    #[test]
    fn waiver_parsing() {
        let src = "\
foo(); // lint: allow(unwrap) — index is bounds-checked above
// lint: allow(float-cmp) - inputs are finite by construction
bar();
// not a waiver: lint allow(x)
// lint: allow(no-reason)
";
        let m = mask(src);
        assert_eq!(m.waivers.len(), 2);
        assert_eq!(m.waivers[0].rule, "unwrap");
        assert!(m.waivers[0].inline);
        assert_eq!(m.waivers[0].line, 1);
        // The em-dash separator is multi-byte UTF-8; the reason must
        // come out clean, with the whole separator stripped.
        assert_eq!(m.waivers[0].reason, "index is bounds-checked above");
        assert_eq!(m.waivers[1].rule, "float-cmp");
        assert!(!m.waivers[1].inline);
        assert_eq!(m.waivers[1].line, 2);
        assert_eq!(m.waivers[1].reason, "inputs are finite by construction");
    }
}
