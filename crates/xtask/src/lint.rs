//! The rule engine behind `cargo xtask lint`.
//!
//! Four rules, scoped per crate (see README "Static analysis &
//! error-handling policy"):
//!
//! * `unwrap` — no `.unwrap()` / `.expect(..)` / `panic!(..)` /
//!   `unreachable!(..)` in non-test library code of the tdess-*
//!   library crates;
//! * `float-cmp` — no NaN-unsafe comparators
//!   (`partial_cmp(..).unwrap()`-style) anywhere in scanned code;
//! * `forbid-unsafe` — every crate root declares
//!   `#![forbid(unsafe_code)]`;
//! * `lossy-cast` — heuristically flagged float↔int `as` casts in the
//!   numeric substrate crates (geom, voxel, index).
//!
//! Any finding can be waived in place with
//! `// lint: allow(<rule>) — <reason>`; the reason is mandatory.
//!
//! File walking, masking, waiver parsing, and the finding/report model
//! live in [`crate::scan`], shared with the `audit` pass.

use std::collections::HashSet;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::scan::{mask, push_finding, test_lines, workspace_units, Report, Tool, Waiver};

/// Crates whose library code must be panic-free (rule `unwrap`).
const PANIC_FREE_CRATES: [&str; 12] = [
    "geom", "voxel", "skeleton", "features", "cache", "index", "cluster", "core", "dataset",
    "eval", "net", "obs",
];

/// Crates whose `as` casts are audited (rule `lossy-cast`).
const CAST_AUDITED_CRATES: [&str; 3] = ["geom", "voxel", "index"];

/// The four lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Panic-freedom in library code.
    Unwrap,
    /// NaN-unsafe float comparators.
    FloatCmp,
    /// Missing `#![forbid(unsafe_code)]` at a crate root.
    ForbidUnsafe,
    /// Heuristically lossy float↔int `as` cast.
    LossyCast,
}

impl Rule {
    /// The name used in output and in `allow(...)` waivers.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Unwrap => "unwrap",
            Rule::FloatCmp => "float-cmp",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::LossyCast => "lossy-cast",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Lints the workspace rooted at `root`: the root package's `src/`
/// plus every `crates/*/src/`. When `changed` is given, only files in
/// that set are scanned. Returns an error string on I/O problems.
pub fn lint_root(root: &Path, changed: Option<&HashSet<PathBuf>>) -> Result<Report, String> {
    let mut report = Report::default();
    for unit in workspace_units(root, changed)? {
        let scope_base = FileScope {
            panic_free: PANIC_FREE_CRATES.contains(&unit.crate_name.as_str()),
            cast_audited: CAST_AUDITED_CRATES.contains(&unit.crate_name.as_str()),
            is_crate_root: false,
        };
        for file in &unit.files {
            report.files_scanned += 1;
            let source = std::fs::read_to_string(file)
                .map_err(|e| format!("read {}: {e}", file.display()))?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(file)
                .to_string_lossy()
                .into_owned();
            let is_crate_root = file
                .file_name()
                .is_some_and(|n| n == "lib.rs" || n == "main.rs")
                && file.parent().is_some_and(|p| p.ends_with("src"));
            lint_file(
                &mut report,
                &rel,
                &source,
                FileScope {
                    is_crate_root,
                    ..scope_base
                },
            );
        }
    }
    report.sort();
    Ok(report)
}

/// Which rules apply to a given file.
#[derive(Clone, Copy)]
struct FileScope {
    panic_free: bool,
    cast_audited: bool,
    is_crate_root: bool,
}

fn lint_file(report: &mut Report, rel: &str, source: &str, scope: FileScope) {
    let masked = mask(source);
    let lines: Vec<&str> = masked.text.lines().collect();

    if scope.is_crate_root && !masked.text.contains("#![forbid(unsafe_code)]") {
        push_finding(
            report,
            &masked.waivers,
            &lines,
            rel,
            1,
            Tool::Lint,
            Rule::ForbidUnsafe.name(),
            "crate root does not declare #![forbid(unsafe_code)]".to_string(),
        );
    }

    let in_test = test_lines(&lines);
    for (idx, line) in lines.iter().enumerate() {
        if !in_test[idx] {
            check_code_line(report, &masked.waivers, &lines, rel, idx + 1, line, &scope);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_code_line(
    report: &mut Report,
    waivers: &[Waiver],
    lines: &[&str],
    rel: &str,
    lineno: usize,
    line: &str,
    scope: &FileScope,
) {
    let nan_unsafe =
        line.contains("partial_cmp") && (line.contains(".unwrap()") || line.contains(".expect("));
    if nan_unsafe {
        push_finding(
            report,
            waivers,
            lines,
            rel,
            lineno,
            Tool::Lint,
            Rule::FloatCmp.name(),
            "NaN-unsafe comparator: partial_cmp(..).unwrap()/.expect(..) — \
             use f64::total_cmp or waive with a documented finiteness guard"
                .to_string(),
        );
    }

    if scope.panic_free && !nan_unsafe {
        for (pattern, what) in [
            (".unwrap()", ".unwrap()"),
            (".expect(", ".expect(..)"),
            ("panic!(", "panic!(..)"),
            ("unreachable!(", "unreachable!(..)"),
        ] {
            if find_pattern(line, pattern) {
                push_finding(
                    report,
                    waivers,
                    lines,
                    rel,
                    lineno,
                    Tool::Lint,
                    Rule::Unwrap.name(),
                    format!(
                        "{what} in library code — return a typed error \
                         (see PersistError in crates/core/src/persist.rs) or waive with a reason"
                    ),
                );
                break; // one finding per line is enough
            }
        }
    }

    if scope.cast_audited {
        if let Some(message) = lossy_cast_on_line(line) {
            push_finding(
                report,
                waivers,
                lines,
                rel,
                lineno,
                Tool::Lint,
                Rule::LossyCast.name(),
                message,
            );
        }
    }
}

/// Matches `pattern` in `line`. For patterns starting with an
/// identifier character (`panic!(`, `unreachable!(`), a match that is
/// the suffix of a longer identifier (e.g. a hypothetical
/// `my_panic!(`) is rejected; method patterns starting with `.` match
/// anywhere.
fn find_pattern(line: &str, pattern: &str) -> bool {
    let ident_start = pattern
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut start = 0;
    while let Some(pos) = line[start..].find(pattern) {
        let abs = start + pos;
        let prev = line[..abs].chars().next_back();
        let prev_is_ident = prev.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !(ident_start && prev_is_ident) {
            return true;
        }
        start = abs + pattern.len();
    }
    false
}

/// Integer type names that make a float→int cast lossy.
const INT_TYPES: [&str; 12] = [
    "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128",
];

/// Tokens indicating the line manipulates floats.
const FLOAT_EVIDENCE: [&str; 7] = [
    "f64", "f32", ".floor()", ".ceil()", ".round()", ".trunc()", ".sqrt(",
];

/// Heuristic lossy-cast detection on one masked line.
///
/// * `<float expr> as <int>` — flagged when the line shows float
///   evidence (an `f64`/`f32` token, a rounding call, or a float
///   literal): truncation and range overflow are silent.
/// * `<f64 expr> as f32` — flagged when the line mentions `f64`:
///   silent precision loss.
///
/// Being line-local it can both miss cross-line casts and flag casts
/// whose operand is integral; waivers exist for the latter.
fn lossy_cast_on_line(line: &str) -> Option<String> {
    let mut search = 0;
    while let Some(pos) = line[search..].find(" as ") {
        let abs = search + pos;
        let target: String = line[abs + 4..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        search = abs + 4;
        if INT_TYPES.contains(&target.as_str()) {
            let evidence =
                FLOAT_EVIDENCE.iter().any(|t| line.contains(t)) || has_float_literal(line);
            if evidence {
                return Some(format!(
                    "possible lossy float → {target} `as` cast — use a checked \
                     conversion helper or waive with a range/finiteness argument"
                ));
            }
        } else if target == "f32" && line.contains("f64") {
            return Some(
                "f64 → f32 `as` cast silently drops precision — waive if the \
                 value range is known to fit"
                    .to_string(),
            );
        }
    }
    None
}

/// Does the line contain a float literal like `1.5` or `2.`?
fn has_float_literal(line: &str) -> bool {
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'.'
            && i > 0
            && bytes[i - 1].is_ascii_digit()
            && bytes
                .get(i + 1)
                .is_none_or(|c| !c.is_ascii_alphabetic() && *c != b'.')
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope_all() -> FileScope {
        FileScope {
            panic_free: true,
            cast_audited: true,
            is_crate_root: false,
        }
    }

    fn run(src: &str, scope: FileScope) -> Report {
        let mut report = Report::default();
        lint_file(&mut report, "test.rs", src, scope);
        report
    }

    #[test]
    fn flags_unwrap_and_friends() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\nfn g() { panic!(\"no\") }\n";
        let r = run(src, scope_all());
        assert_eq!(r.findings.len(), 2);
        assert!(r.findings.iter().all(|f| f.rule == Rule::Unwrap.name()));
    }

    #[test]
    fn float_cmp_wins_over_unwrap() {
        // The {unwrap} placeholder keeps the repo-wide NaN-comparator
        // grep from matching the linter's own test input.
        let src = format!(
            "fn f(v: &mut [f64]) {{\n    v.sort_by(|a, b| a.partial_cmp(b).{unwrap}());\n}}\n",
            unwrap = "unwrap"
        );
        let r = run(&src, scope_all());
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, Rule::FloatCmp.name());
        assert_eq!(r.findings[0].line, 2);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
fn lib() -> u8 { 1 }
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(3u8).unwrap();
    }
}
";
        let r = run(src, scope_all());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn single_line_test_mod_does_not_leak_skip() {
        // The one-line test module is exempt itself, and its skip must
        // not transfer to the next (library) block.
        let src = "\
#[cfg(test)] mod t { fn p() { Some(1u8).unwrap(); } }
fn lib(x: Option<u8>) -> u8 {
    x.unwrap()
}
";
        let r = run(src, scope_all());
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].line, 3);
    }

    #[test]
    fn waivers_cover_inline_and_preceding() {
        // As above, {unwrap} keeps repo-wide greps away from this
        // intentional test input.
        let src = format!(
            "\
fn f(x: Option<u8>) -> u8 {{
    x.{unwrap}() // lint: allow(unwrap) — checked by caller invariant
}}
fn g(v: &mut [f64]) {{
    // lint: allow(float-cmp) — inputs validated finite at API boundary
    v.sort_by(|a, b| a.partial_cmp(b).{unwrap}());
}}
",
            unwrap = "unwrap"
        );
        let r = run(&src, scope_all());
        assert_eq!(r.findings.len(), 2);
        assert!(r.findings.iter().all(|f| f.waiver.is_some()));
        assert_eq!(r.unwaived_count(), 0);
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_cover() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // lint: allow(float-cmp) — wrong rule\n}\n";
        let r = run(src, scope_all());
        assert_eq!(r.unwaived_count(), 1);
    }

    #[test]
    fn audit_waiver_does_not_cover_lint_finding() {
        let src =
            "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // audit: allow(unwrap) — wrong tool\n}\n";
        let r = run(src, scope_all());
        assert_eq!(r.unwaived_count(), 1);
    }

    #[test]
    fn lossy_casts() {
        assert!(lossy_cast_on_line("let i = (x / step).floor() as usize;").is_some());
        assert!(lossy_cast_on_line("let i = 2.5 as u32;").is_some());
        assert!(lossy_cast_on_line("let y = narrow(x) as f32;").is_none()); // no f64 evidence
        assert!(lossy_cast_on_line("let y: f32 = narrow(x) as f32; let z: f64 = 0.0;").is_some());
        assert!(lossy_cast_on_line("let n = len as u32;").is_none());
        assert!(lossy_cast_on_line("let f = count as f64;").is_none());
    }

    #[test]
    fn crate_root_must_forbid_unsafe() {
        let scope = FileScope {
            panic_free: false,
            cast_audited: false,
            is_crate_root: true,
        };
        let r = run("pub fn ok() {}\n", scope);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, Rule::ForbidUnsafe.name());

        let scope = FileScope {
            panic_free: false,
            cast_audited: false,
            is_crate_root: true,
        };
        let r = run("#![forbid(unsafe_code)]\npub fn ok() {}\n", scope);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn strings_do_not_trip_rules() {
        let src = "fn f() -> &'static str {\n    \"call .unwrap() and panic!(now)\"\n}\n";
        let r = run(src, scope_all());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }
}
