//! The rule engine behind `cargo xtask lint`.
//!
//! Four rules, scoped per crate (see README "Static analysis &
//! error-handling policy"):
//!
//! * `unwrap` — no `.unwrap()` / `.expect(..)` / `panic!(..)` /
//!   `unreachable!(..)` in non-test library code of the tdess-*
//!   library crates;
//! * `float-cmp` — no NaN-unsafe comparators
//!   (`partial_cmp(..).unwrap()`-style) anywhere in scanned code;
//! * `forbid-unsafe` — every crate root declares
//!   `#![forbid(unsafe_code)]`;
//! * `lossy-cast` — heuristically flagged float↔int `as` casts in the
//!   numeric substrate crates (geom, voxel, index).
//!
//! Any finding can be waived in place with
//! `// lint: allow(<rule>) — <reason>`; the reason is mandatory.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::mask::{mask, Waiver};

/// Crates whose library code must be panic-free (rule `unwrap`).
const PANIC_FREE_CRATES: [&str; 11] = [
    "geom", "voxel", "skeleton", "features", "index", "cluster", "core", "dataset", "eval", "net",
    "obs",
];

/// Crates whose `as` casts are audited (rule `lossy-cast`).
const CAST_AUDITED_CRATES: [&str; 3] = ["geom", "voxel", "index"];

/// The four lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Panic-freedom in library code.
    Unwrap,
    /// NaN-unsafe float comparators.
    FloatCmp,
    /// Missing `#![forbid(unsafe_code)]` at a crate root.
    ForbidUnsafe,
    /// Heuristically lossy float↔int `as` cast.
    LossyCast,
}

impl Rule {
    /// The name used in output and in `allow(...)` waivers.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Unwrap => "unwrap",
            Rule::FloatCmp => "float-cmp",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::LossyCast => "lossy-cast",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation, waived or not.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path relative to the scanned root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
    /// The waiver reason, when a matching waiver covers this line.
    pub waiver: Option<String>,
}

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, waived and unwaived, in path/line order.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not covered by a waiver (these fail the build).
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waiver.is_none())
    }

    /// Number of waived findings.
    pub fn waived_count(&self) -> usize {
        self.findings.iter().filter(|f| f.waiver.is_some()).count()
    }

    /// Number of unwaived findings.
    pub fn unwaived_count(&self) -> usize {
        self.findings.len() - self.waived_count()
    }
}

/// Lints the workspace rooted at `root`: the root package's `src/`
/// plus every `crates/*/src/`. Returns an error string on I/O
/// problems.
pub fn lint_root(root: &Path) -> Result<Report, String> {
    let mut report = Report::default();
    let mut units: Vec<(String, PathBuf)> = Vec::new(); // (crate name, src dir)

    let root_src = root.join("src");
    if root_src.is_dir() {
        units.push(("threedess".to_string(), root_src));
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut names: Vec<String> = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
            .filter_map(|entry| entry.ok())
            .filter(|entry| entry.path().is_dir())
            .map(|entry| entry.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        for name in names {
            let src = crates_dir.join(&name).join("src");
            if src.is_dir() {
                units.push((name, src));
            }
        }
    }

    for (crate_name, src_dir) in &units {
        let mut files = Vec::new();
        collect_rs_files(src_dir, &mut files)?;
        files.sort();
        for file in files {
            report.files_scanned += 1;
            let source = std::fs::read_to_string(&file)
                .map_err(|e| format!("read {}: {e}", file.display()))?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .into_owned();
            let is_crate_root = file
                .file_name()
                .is_some_and(|n| n == "lib.rs" || n == "main.rs")
                && file.parent().is_some_and(|p| p.ends_with("src"));
            lint_file(
                &mut report,
                &rel,
                &source,
                FileScope {
                    panic_free: PANIC_FREE_CRATES.contains(&crate_name.as_str()),
                    cast_audited: CAST_AUDITED_CRATES.contains(&crate_name.as_str()),
                    is_crate_root,
                },
            );
        }
    }

    report
        .findings
        .sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    Ok(report)
}

/// Which rules apply to a given file.
struct FileScope {
    panic_free: bool,
    cast_audited: bool,
    is_crate_root: bool,
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))? {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn lint_file(report: &mut Report, rel: &str, source: &str, scope: FileScope) {
    let masked = mask(source);
    let lines: Vec<&str> = masked.text.lines().collect();

    if scope.is_crate_root && !masked.text.contains("#![forbid(unsafe_code)]") {
        push_finding(
            report,
            &masked.waivers,
            &lines,
            rel,
            1,
            Rule::ForbidUnsafe,
            "crate root does not declare #![forbid(unsafe_code)]".to_string(),
        );
    }

    // Brace-tracked skip regions for test code: a block opened after
    // `#[cfg(test)]` or `#[test]`.
    let mut depth: usize = 0;
    let mut skip_stack: Vec<usize> = Vec::new();
    let mut pending_skip = false;

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;

        // Detect the test attribute BEFORE processing the line's
        // braces, so a single-line `#[cfg(test)] mod t { ... }` both
        // exempts itself and consumes its pending skip on its own
        // opening brace (instead of leaking it to the next block).
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[test]") {
            pending_skip = true;
        }

        let in_test = !skip_stack.is_empty() || pending_skip;
        if !in_test {
            check_code_line(report, &masked.waivers, &lines, rel, lineno, line, &scope);
        }

        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending_skip {
                        skip_stack.push(depth);
                        pending_skip = false;
                    }
                }
                '}' => {
                    if skip_stack.last() == Some(&depth) {
                        skip_stack.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            }
        }
    }
}

fn check_code_line(
    report: &mut Report,
    waivers: &[Waiver],
    lines: &[&str],
    rel: &str,
    lineno: usize,
    line: &str,
    scope: &FileScope,
) {
    let nan_unsafe =
        line.contains("partial_cmp") && (line.contains(".unwrap()") || line.contains(".expect("));
    if nan_unsafe {
        push_finding(
            report,
            waivers,
            lines,
            rel,
            lineno,
            Rule::FloatCmp,
            "NaN-unsafe comparator: partial_cmp(..).unwrap()/.expect(..) — \
             use f64::total_cmp or waive with a documented finiteness guard"
                .to_string(),
        );
    }

    if scope.panic_free && !nan_unsafe {
        for (pattern, what) in [
            (".unwrap()", ".unwrap()"),
            (".expect(", ".expect(..)"),
            ("panic!(", "panic!(..)"),
            ("unreachable!(", "unreachable!(..)"),
        ] {
            if find_pattern(line, pattern) {
                push_finding(
                    report,
                    waivers,
                    lines,
                    rel,
                    lineno,
                    Rule::Unwrap,
                    format!(
                        "{what} in library code — return a typed error \
                         (see PersistError in crates/core/src/persist.rs) or waive with a reason"
                    ),
                );
                break; // one finding per line is enough
            }
        }
    }

    if scope.cast_audited {
        if let Some(message) = lossy_cast_on_line(line) {
            push_finding(
                report,
                waivers,
                lines,
                rel,
                lineno,
                Rule::LossyCast,
                message,
            );
        }
    }
}

/// Matches `pattern` in `line`. For patterns starting with an
/// identifier character (`panic!(`, `unreachable!(`), a match that is
/// the suffix of a longer identifier (e.g. a hypothetical
/// `my_panic!(`) is rejected; method patterns starting with `.` match
/// anywhere.
fn find_pattern(line: &str, pattern: &str) -> bool {
    let ident_start = pattern
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut start = 0;
    while let Some(pos) = line[start..].find(pattern) {
        let abs = start + pos;
        let prev = line[..abs].chars().next_back();
        let prev_is_ident = prev.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !(ident_start && prev_is_ident) {
            return true;
        }
        start = abs + pattern.len();
    }
    false
}

/// Integer type names that make a float→int cast lossy.
const INT_TYPES: [&str; 12] = [
    "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128",
];

/// Tokens indicating the line manipulates floats.
const FLOAT_EVIDENCE: [&str; 7] = [
    "f64", "f32", ".floor()", ".ceil()", ".round()", ".trunc()", ".sqrt(",
];

/// Heuristic lossy-cast detection on one masked line.
///
/// * `<float expr> as <int>` — flagged when the line shows float
///   evidence (an `f64`/`f32` token, a rounding call, or a float
///   literal): truncation and range overflow are silent.
/// * `<f64 expr> as f32` — flagged when the line mentions `f64`:
///   silent precision loss.
///
/// Being line-local it can both miss cross-line casts and flag casts
/// whose operand is integral; waivers exist for the latter.
fn lossy_cast_on_line(line: &str) -> Option<String> {
    let mut search = 0;
    while let Some(pos) = line[search..].find(" as ") {
        let abs = search + pos;
        let target: String = line[abs + 4..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        search = abs + 4;
        if INT_TYPES.contains(&target.as_str()) {
            let evidence =
                FLOAT_EVIDENCE.iter().any(|t| line.contains(t)) || has_float_literal(line);
            if evidence {
                return Some(format!(
                    "possible lossy float → {target} `as` cast — use a checked \
                     conversion helper or waive with a range/finiteness argument"
                ));
            }
        } else if target == "f32" && line.contains("f64") {
            return Some(
                "f64 → f32 `as` cast silently drops precision — waive if the \
                 value range is known to fit"
                    .to_string(),
            );
        }
    }
    None
}

/// Does the line contain a float literal like `1.5` or `2.`?
fn has_float_literal(line: &str) -> bool {
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'.'
            && i > 0
            && bytes[i - 1].is_ascii_digit()
            && bytes
                .get(i + 1)
                .is_none_or(|c| !c.is_ascii_alphabetic() && *c != b'.')
        {
            return true;
        }
    }
    false
}

/// Records a finding, attaching a waiver when one covers the line.
fn push_finding(
    report: &mut Report,
    waivers: &[Waiver],
    lines: &[&str],
    rel: &str,
    lineno: usize,
    rule: Rule,
    message: String,
) {
    let waiver = waivers.iter().find_map(|w| {
        if w.rule != rule.name() {
            return None;
        }
        let covered = if w.inline {
            w.line == lineno
        } else {
            standalone_target(lines, w.line) == Some(lineno)
        };
        covered.then(|| w.reason.clone())
    });
    report.findings.push(Finding {
        file: rel.to_string(),
        line: lineno,
        rule,
        message,
        waiver,
    });
}

/// The line a standalone waiver comment covers: the next non-blank
/// line of (masked) code after it.
fn standalone_target(lines: &[&str], waiver_line: usize) -> Option<usize> {
    lines
        .iter()
        .enumerate()
        .skip(waiver_line) // lines[waiver_line] is the line after (0-based vs 1-based)
        .find(|(_, l)| !l.trim().is_empty())
        .map(|(idx, _)| idx + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope_all() -> FileScope {
        FileScope {
            panic_free: true,
            cast_audited: true,
            is_crate_root: false,
        }
    }

    fn run(src: &str, scope: FileScope) -> Report {
        let mut report = Report::default();
        lint_file(&mut report, "test.rs", src, scope);
        report
    }

    #[test]
    fn flags_unwrap_and_friends() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\nfn g() { panic!(\"no\") }\n";
        let r = run(src, scope_all());
        assert_eq!(r.findings.len(), 2);
        assert!(r.findings.iter().all(|f| f.rule == Rule::Unwrap));
    }

    #[test]
    fn float_cmp_wins_over_unwrap() {
        // The {unwrap} placeholder keeps the repo-wide NaN-comparator
        // grep from matching the linter's own test input.
        let src = format!(
            "fn f(v: &mut [f64]) {{\n    v.sort_by(|a, b| a.partial_cmp(b).{unwrap}());\n}}\n",
            unwrap = "unwrap"
        );
        let r = run(&src, scope_all());
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, Rule::FloatCmp);
        assert_eq!(r.findings[0].line, 2);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
fn lib() -> u8 { 1 }
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(3u8).unwrap();
    }
}
";
        let r = run(src, scope_all());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn single_line_test_mod_does_not_leak_skip() {
        // The one-line test module is exempt itself, and its skip must
        // not transfer to the next (library) block.
        let src = "\
#[cfg(test)] mod t { fn p() { Some(1u8).unwrap(); } }
fn lib(x: Option<u8>) -> u8 {
    x.unwrap()
}
";
        let r = run(src, scope_all());
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].line, 3);
    }

    #[test]
    fn waivers_cover_inline_and_preceding() {
        // As above, {unwrap} keeps repo-wide greps away from this
        // intentional test input.
        let src = format!(
            "\
fn f(x: Option<u8>) -> u8 {{
    x.{unwrap}() // lint: allow(unwrap) — checked by caller invariant
}}
fn g(v: &mut [f64]) {{
    // lint: allow(float-cmp) — inputs validated finite at API boundary
    v.sort_by(|a, b| a.partial_cmp(b).{unwrap}());
}}
",
            unwrap = "unwrap"
        );
        let r = run(&src, scope_all());
        assert_eq!(r.findings.len(), 2);
        assert!(r.findings.iter().all(|f| f.waiver.is_some()));
        assert_eq!(r.unwaived_count(), 0);
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_cover() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // lint: allow(float-cmp) — wrong rule\n}\n";
        let r = run(src, scope_all());
        assert_eq!(r.unwaived_count(), 1);
    }

    #[test]
    fn lossy_casts() {
        assert!(lossy_cast_on_line("let i = (x / step).floor() as usize;").is_some());
        assert!(lossy_cast_on_line("let i = 2.5 as u32;").is_some());
        assert!(lossy_cast_on_line("let y = narrow(x) as f32;").is_none()); // no f64 evidence
        assert!(lossy_cast_on_line("let y: f32 = narrow(x) as f32; let z: f64 = 0.0;").is_some());
        assert!(lossy_cast_on_line("let n = len as u32;").is_none());
        assert!(lossy_cast_on_line("let f = count as f64;").is_none());
    }

    #[test]
    fn crate_root_must_forbid_unsafe() {
        let scope = FileScope {
            panic_free: false,
            cast_audited: false,
            is_crate_root: true,
        };
        let r = run("pub fn ok() {}\n", scope);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, Rule::ForbidUnsafe);

        let scope = FileScope {
            panic_free: false,
            cast_audited: false,
            is_crate_root: true,
        };
        let r = run("#![forbid(unsafe_code)]\npub fn ok() {}\n", scope);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn strings_do_not_trip_rules() {
        let src = "fn f() -> &'static str {\n    \"call .unwrap() and panic!(now)\"\n}\n";
        let r = run(src, scope_all());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }
}
