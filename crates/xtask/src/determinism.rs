//! The rule engine behind `cargo xtask determinism` — reproducibility
//! taint analysis.
//!
//! Every correctness claim the repo makes rests on bit-exactness:
//! seeded corpora byte-identical across runs, warm-vs-cold and
//! cached-vs-uncached extraction gates, JSON-vs-binary snapshot
//! equivalence, and the double-run index/query gate (`tab_repro`).
//! This pass statically guards that property by taint-tracking
//! nondeterminism *sources* toward output *sinks* over the shared
//! call graph ([`crate::graph`]):
//!
//! * **sinks** — functions whose bodies persist bytes (`save_to_path*`,
//!   `atomic_write`, `File::create`, `fs::write`), encode the wire
//!   (`write_frame`, `.write_all`), or export telemetry
//!   (`PromText::new`, `chrome_trace_json`). Sink-shaped writes inside
//!   the telemetry tier (`crates/obs/`, the `/metrics`//`/healthz`/
//!   `/traces` endpoint file) classify as telemetry, not persistence —
//!   logs and metrics are allowed to carry wall-clock values,
//!   persisted artifacts are not;
//! * **taint scope** — reverse reachability: every function that can
//!   reach a sink (it, or anything it calls, writes output) is in
//!   scope for the flow rules below. Like `hotpath`, the graph is
//!   deliberately over-approximate.
//!
//! Five rule families:
//!
//! * `unordered-iter` *(flow, function granularity)* — iteration over
//!   a `HashMap`/`HashSet` (declared in the same file: `let`
//!   bindings, struct fields, parameters) inside a sink-reaching
//!   function, with no intervening `.sort*`/`BTree*` before the
//!   function ends. Hash iteration order varies per process
//!   (`RandomState`), so it must never shape persisted or exported
//!   bytes;
//! * `time-taint` *(flow, function granularity)* — clock reads
//!   (`Instant::now`, `SystemTime::now`, `.elapsed`, `UNIX_EPOCH`)
//!   inside a function that reaches a *persist* sink. Benches
//!   (`crates/bench/src/`) are exempt — timing artifacts are their
//!   product — and telemetry sinks don't trigger it (latency belongs
//!   in metrics);
//! * `rng-discipline` *(site granularity, everywhere)* — RNG
//!   construction that bypasses explicit seeding (`thread_rng`,
//!   `from_entropy`, `OsRng`, `rand::random`). Seeded constructors
//!   (`seed_from_u64`, `from_seed`) are the only reproducible way in;
//! * `float-reduction` *(site granularity, everywhere)* — parallel or
//!   worker-chunked float accumulation (`.par_iter().sum()`-style, or
//!   explicit float folds in a thread-spawning function). Float
//!   addition is non-associative, so the reduction order must be
//!   fixed and the justification written down — the waiver *is* the
//!   written justification;
//! * `addr-hash` *(site granularity, everywhere)* — pointer identity
//!   laundered into hashes or comparators (`ptr::hash`,
//!   `.as_ptr() as usize`). Addresses change run to run.
//!
//! `#[cfg(test)]` regions contribute neither sinks, edges, nor
//! findings. Waivers use the unified grammar:
//! `// determinism: allow(<rule>) — <reason>`.

use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};

use crate::graph::{has_pattern, load_workspace_sources, CallGraph, COLD_LINE_PREFIXES};
use crate::scan::{push_finding, Report, Tool};

pub use crate::graph::SourceFile;

/// Rule names (shared with waiver `allow(...)` syntax).
pub const RULE_UNORDERED_ITER: &str = "unordered-iter";
pub const RULE_RNG_DISCIPLINE: &str = "rng-discipline";
pub const RULE_TIME_TAINT: &str = "time-taint";
pub const RULE_FLOAT_REDUCTION: &str = "float-reduction";
pub const RULE_ADDR_HASH: &str = "addr-hash";

/// All determinism rule names, for waiver-inventory validation.
pub const DETERMINISM_RULES: [&str; 5] = [
    RULE_UNORDERED_ITER,
    RULE_RNG_DISCIPLINE,
    RULE_TIME_TAINT,
    RULE_FLOAT_REDUCTION,
    RULE_ADDR_HASH,
];

/// Calls that persist bytes: snapshot/results writes and wire
/// encoding. Anything these produce is compared in a bit-exactness
/// gate somewhere (CI double-run, warm-vs-cold, JSON-vs-binary).
const PERSIST_SINK_PATTERNS: [&str; 6] = [
    "save_to_path",
    "atomic_write(",
    "File::create(",
    "fs::write(",
    "write_frame(",
    ".write_all(",
];

/// Telemetry exports whose byte layout should still be stable
/// (repeated scrapes of an idle server must be byte-identical), but
/// which are allowed to carry wall-clock values.
const TELEMETRY_SINK_PATTERNS: [&str; 2] = ["PromText::new(", "chrome_trace_json("];

/// Files whose writes are logs/metrics/traces by construction: the
/// obs crate (structured log writer, histogram export) and the net
/// metrics endpoint (`/metrics`, `/healthz`, `/traces`). Persist-shaped
/// writes there classify as telemetry sinks.
const TELEMETRY_TIER_PREFIXES: [&str; 2] = ["crates/obs/src/", "crates/net/src/metrics.rs"];

/// Bench binaries persist timing tables on purpose — wall-clock in
/// their artifacts is the product, not taint.
const TIME_EXEMPT_PREFIXES: [&str; 1] = ["crates/bench/src/"];

/// Clock reads.
const TIME_PATTERNS: [&str; 4] = [
    "Instant::now(",
    "SystemTime::now(",
    ".elapsed(",
    "UNIX_EPOCH",
];

/// RNG constructions that draw from ambient entropy.
const RNG_PATTERNS: [&str; 4] = ["thread_rng(", "from_entropy(", "OsRng", "rand::random("];

/// Pointer identity in hash/comparator position.
const ADDR_PATTERNS: [&str; 4] = [
    "ptr::hash(",
    ".as_ptr() as usize",
    "as *const _ as usize",
    "as *mut _ as usize",
];

/// Rayon-style parallel iterator entry points.
const PAR_ITER_PATTERNS: [&str; 5] = [
    ".par_iter(",
    ".par_iter_mut(",
    ".into_par_iter(",
    ".par_chunks(",
    ".par_bridge(",
];

/// Any reduction shape (used to decide whether a parallel iterator in
/// the function feeds an accumulation).
const REDUCE_ANY: [&str; 4] = [".sum", ".product", ".reduce(", ".fold("];

/// Explicitly-float accumulations (flagged in thread-spawning
/// functions, where worker merge order is the question).
const FLOAT_ACC_PATTERNS: [&str; 5] = [
    ".sum::<f32",
    ".sum::<f64",
    ".fold(0.0",
    ".fold(0f",
    ".reduce(",
];

/// Iteration methods that expose hash order when called on a
/// HashMap/HashSet. Lookup methods (`.get`, `.entry`, `.contains*`)
/// are deliberately absent — they don't observe order.
const ITER_METHODS: [&str; 9] = [
    "iter()",
    "iter_mut()",
    "keys()",
    "values()",
    "values_mut()",
    "into_iter()",
    "into_keys()",
    "into_values()",
    "drain(",
];

/// Analyzes the workspace rooted at `root`. The call graph always
/// covers the full tree; `changed` only restricts which files'
/// findings are emitted.
pub fn determinism_root(root: &Path, changed: Option<&HashSet<PathBuf>>) -> Result<Report, String> {
    let files = load_workspace_sources(root, changed)?;
    Ok(analyze(&files))
}

fn analyze(files: &[SourceFile]) -> Report {
    let g = CallGraph::build(files);
    let file_lines: Vec<Vec<&str>> = g.infos.iter().map(|i| i.masked.lines().collect()).collect();

    // Sink classification: a definition is a seed when its own body
    // contains a sink call. Telemetry-tier files downgrade
    // persist-shaped writes to telemetry.
    let mut persist_seeds: Vec<usize> = Vec::new();
    let mut telemetry_seeds: Vec<usize> = Vec::new();
    for (di, d) in g.defs.iter().enumerate() {
        if d.in_test {
            continue;
        }
        let telemetry_tier = TELEMETRY_TIER_PREFIXES
            .iter()
            .any(|p| files[d.file].rel.starts_with(p));
        let lines = &file_lines[d.file];
        let mut is_persist = false;
        let mut is_telemetry = false;
        for (idx, &line) in lines
            .iter()
            .enumerate()
            .take(d.end.min(lines.len()))
            .skip(d.start - 1)
        {
            if g.infos[d.file].in_test[idx] || g.fn_of_line[d.file][idx] != Some(di) {
                continue;
            }
            if PERSIST_SINK_PATTERNS.iter().any(|p| has_pattern(line, p)) {
                if telemetry_tier {
                    is_telemetry = true;
                } else {
                    is_persist = true;
                }
            }
            if TELEMETRY_SINK_PATTERNS.iter().any(|p| has_pattern(line, p)) {
                is_telemetry = true;
            }
        }
        if is_persist {
            persist_seeds.push(di);
        }
        if is_telemetry {
            telemetry_seeds.push(di);
        }
    }
    let persist_reach = g.reverse_reach(&persist_seeds);
    let telemetry_reach = g.reverse_reach(&telemetry_seeds);

    // Unordered container names, per file.
    let unordered: Vec<HashSet<String>> = file_lines
        .iter()
        .map(|lines| unordered_names(lines))
        .collect();

    let mut report = Report {
        files_scanned: files.iter().filter(|f| f.eligible).count(),
        ..Report::default()
    };

    for (di, d) in g.defs.iter().enumerate() {
        if d.in_test || !files[d.file].eligible {
            continue;
        }
        let rel = &files[d.file].rel;
        let info = &g.infos[d.file];
        let lines = &file_lines[d.file];
        let persist_sink = persist_reach.get(&di).copied();
        let telemetry_sink = telemetry_reach.get(&di).copied();
        let time_exempt = TIME_EXEMPT_PREFIXES.iter().any(|p| rel.starts_with(p));

        let mut iter_sites: Vec<(usize, String)> = Vec::new();
        let mut time_sites: Vec<(usize, &str)> = Vec::new();
        let mut par_sites: Vec<(usize, &str)> = Vec::new();
        let mut float_acc_sites: Vec<(usize, &str)> = Vec::new();
        let mut fn_has_reduce = false;
        let mut fn_has_spawn = false;

        for idx in d.start - 1..d.end.min(lines.len()) {
            if info.in_test[idx] || g.fn_of_line[d.file][idx] != Some(di) {
                continue;
            }
            let line = lines[idx];
            let trimmed = line.trim_start();
            if COLD_LINE_PREFIXES.iter().any(|p| trimmed.starts_with(p)) {
                continue;
            }

            // Site-granularity source rules, applied everywhere.
            if let Some(pat) = RNG_PATTERNS.iter().find(|p| has_pattern(line, p)) {
                push_finding(
                    &mut report,
                    &info.waivers,
                    lines,
                    rel,
                    idx + 1,
                    Tool::Determinism,
                    RULE_RNG_DISCIPLINE,
                    format!(
                        "nondeterministic RNG source `{}` — construct RNGs from an \
                         explicit seed (seed_from_u64 / from_seed) so runs reproduce, \
                         or waive with a reason",
                        pat.trim_end_matches('('),
                    ),
                );
            }
            if let Some(pat) = ADDR_PATTERNS.iter().find(|p| has_pattern(line, p)) {
                push_finding(
                    &mut report,
                    &info.waivers,
                    lines,
                    rel,
                    idx + 1,
                    Tool::Determinism,
                    RULE_ADDR_HASH,
                    format!(
                        "pointer identity `{}` in hash/comparator position — addresses \
                         change run to run; key on content instead, or waive with a reason",
                        pat.trim_end_matches('('),
                    ),
                );
            }

            if REDUCE_ANY.iter().any(|p| line.contains(p)) {
                fn_has_reduce = true;
            }
            if has_pattern(line, "spawn(") {
                fn_has_spawn = true;
            }
            if let Some(pat) = PAR_ITER_PATTERNS.iter().find(|p| has_pattern(line, p)) {
                par_sites.push((idx + 1, pat));
            }
            if let Some(pat) = FLOAT_ACC_PATTERNS.iter().find(|p| line.contains(*p)) {
                float_acc_sites.push((idx + 1, pat));
            }

            // Flow rules, gated on sink reachability.
            if persist_sink.is_some() || telemetry_sink.is_some() {
                for name in &unordered[d.file] {
                    if let Some(how) = iterates(line, name) {
                        if !sorted_later(lines, idx, d.end) {
                            iter_sites.push((idx + 1, how));
                        }
                        break;
                    }
                }
            }
            if persist_sink.is_some() && !time_exempt {
                if let Some(pat) = TIME_PATTERNS.iter().find(|p| has_pattern(line, p)) {
                    time_sites.push((idx + 1, pat));
                }
            }
        }

        // float-reduction: parallel-iterator reductions, plus explicit
        // float accumulations in worker-spawning functions. One
        // finding per site, deduplicated by line.
        let mut float_sites: BTreeMap<usize, &str> = BTreeMap::new();
        if fn_has_reduce {
            for (l, p) in &par_sites {
                float_sites.entry(*l).or_insert(p);
            }
        }
        if fn_has_spawn {
            for (l, p) in &float_acc_sites {
                float_sites.entry(*l).or_insert(p);
            }
        }
        for (lineno, pat) in float_sites {
            push_finding(
                &mut report,
                &info.waivers,
                lines,
                rel,
                lineno,
                Tool::Determinism,
                RULE_FLOAT_REDUCTION,
                format!(
                    "parallel/chunked float accumulation `{}` in `{}` — float addition \
                     is non-associative, so the reduction order must be fixed; waive \
                     with the written ordering argument",
                    pat.trim_end_matches('('),
                    d.name,
                ),
            );
        }

        // Function-granularity flow findings, anchored at the first
        // site (mirrors hotpath).
        let (sink_name, class) = match (persist_sink, telemetry_sink) {
            (Some(s), _) => (g.defs[s].name.as_str(), "persisted output"),
            (None, Some(s)) => (g.defs[s].name.as_str(), "telemetry export"),
            (None, None) => ("", ""),
        };
        if let Some((lineno, how)) = iter_sites.first() {
            let more = if iter_sites.len() > 1 {
                let rest: Vec<String> =
                    iter_sites[1..].iter().map(|(l, _)| l.to_string()).collect();
                format!(
                    " (+{} more: line {})",
                    iter_sites.len() - 1,
                    rest.join(", ")
                )
            } else {
                String::new()
            };
            push_finding(
                &mut report,
                &info.waivers,
                lines,
                rel,
                *lineno,
                Tool::Determinism,
                RULE_UNORDERED_ITER,
                format!(
                    "fn `{}` feeds {class} (via `{sink_name}`) but iterates hash order: \
                     {how}{more} — iterate a sorted view (collect+sort, fixed key list, \
                     or BTreeMap), or waive with a reason",
                    d.name,
                ),
            );
        }
        if let Some(&(lineno, pat)) = time_sites.first() {
            let more = if time_sites.len() > 1 {
                let rest: Vec<String> =
                    time_sites[1..].iter().map(|(l, _)| l.to_string()).collect();
                format!(
                    " (+{} more: line {})",
                    time_sites.len() - 1,
                    rest.join(", ")
                )
            } else {
                String::new()
            };
            push_finding(
                &mut report,
                &info.waivers,
                lines,
                rel,
                lineno,
                Tool::Determinism,
                RULE_TIME_TAINT,
                format!(
                    "fn `{}` feeds persisted output (via `{sink_name}`) and reads the \
                     clock: `{}`{more} — keep wall-clock values out of persisted \
                     artifacts (route them to logs/metrics), or waive with a reason",
                    d.name,
                    pat.trim_end_matches('('),
                ),
            );
        }
    }
    report.sort();
    report
}

/// Identifier names in one (masked) file that hold HashMap/HashSet
/// values: `let` bindings initialized or annotated with one, and
/// `name: ... Hash{Map,Set}` annotations (struct fields, parameters,
/// typed lets).
fn unordered_names(lines: &[&str]) -> HashSet<String> {
    let mut names = HashSet::new();
    for line in lines {
        if !(line.contains("HashMap") || line.contains("HashSet")) {
            continue;
        }
        let trimmed = line.trim_start();
        let let_body = trimmed.strip_prefix("let ").or_else(|| {
            trimmed
                .strip_prefix("pub ")
                .and_then(|r| r.strip_prefix("let "))
        });
        if let Some(rest) = let_body {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                names.insert(name);
            }
        }
        for kw in ["HashMap", "HashSet"] {
            let mut start = 0;
            while let Some(pos) = line[start..].find(kw) {
                let abs = start + pos;
                start = abs + kw.len();
                // Identifier boundary on the right (`HashMapLike` is
                // not a std map).
                let after_ok = line[abs + kw.len()..]
                    .chars()
                    .next()
                    .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
                if !after_ok {
                    continue;
                }
                if let Some(name) = name_before_colon(&line[..abs]) {
                    names.insert(name);
                }
            }
        }
    }
    names
}

/// The identifier annotated by the nearest type-annotation `:` to the
/// left of a type occurrence, when everything between is type syntax
/// (`Option<&HashSet<..>>` resolves through `Option<&`). Returns
/// `None` across `::` paths (`collections::HashMap` is a use/path,
/// not an annotation).
fn name_before_colon(before: &str) -> Option<String> {
    let chars: Vec<char> = before.chars().collect();
    let mut i = chars.len();
    while i > 0 {
        let c = chars[i - 1];
        if c.is_alphanumeric() || c == '_' || matches!(c, '&' | '<' | '>' | '\'' | ' ' | ',' | '(')
        {
            i -= 1;
        } else {
            break;
        }
    }
    if i == 0 || chars[i - 1] != ':' || (i >= 2 && chars[i - 2] == ':') {
        return None;
    }
    let mut j = i - 1; // position of the ':'
    let mut name = String::new();
    while j > 0 {
        let c = chars[j - 1];
        if c.is_alphanumeric() || c == '_' {
            name.insert(0, c);
            j -= 1;
        } else {
            break;
        }
    }
    (!name.is_empty()).then_some(name)
}

/// Describes how `line` iterates the unordered container `name`, if
/// it does: a hash-order method call (`name.keys()`, `self.name.iter()`)
/// or direct `for .. in [&mut ][self.]name` iteration.
fn iterates(line: &str, name: &str) -> Option<String> {
    for m in ITER_METHODS {
        let needle = format!("{name}.{m}");
        if has_pattern(line, &needle) {
            return Some(format!("`{name}.{}`", m.trim_end_matches('(')));
        }
    }
    if line.contains("for ") {
        if let Some(pos) = line.find(" in ") {
            let mut rest = line[pos + 4..].trim_start();
            rest = rest.strip_prefix("&mut ").unwrap_or(rest);
            rest = rest.strip_prefix('&').unwrap_or(rest);
            rest = rest.strip_prefix("self.").unwrap_or(rest);
            if let Some(after) = rest.strip_prefix(name) {
                let boundary = after
                    .chars()
                    .next()
                    .is_none_or(|c| !(c.is_alphanumeric() || c == '_' || c == '.'));
                if boundary {
                    return Some(format!("`for .. in {name}`"));
                }
            }
        }
    }
    None
}

/// Does a sort (or an ordered BTree collection) appear at or after the
/// iteration site before the function ends? If so the iteration's
/// order is (heuristically) re-established before anything escapes.
fn sorted_later(lines: &[&str], site_idx: usize, end: usize) -> bool {
    lines[site_idx..end.min(lines.len())]
        .iter()
        .any(|l| l.contains(".sort") || l.contains("BTreeMap") || l.contains("BTreeSet"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Report {
        let files: Vec<SourceFile> = files
            .iter()
            .map(|(rel, src)| SourceFile {
                rel: rel.to_string(),
                source: src.to_string(),
                eligible: true,
            })
            .collect();
        analyze(&files)
    }

    #[test]
    fn unordered_iteration_reaching_a_persist_sink_is_flagged() {
        let src = "\
use std::collections::HashMap;
pub struct Db {
    pub counts: HashMap<String, u64>,
}
pub fn encode(db: &Db, out: &mut Vec<u8>) {
    for (k, v) in db.counts.iter() {
        out.extend_from_slice(k.as_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    persist(out);
}
fn persist(bytes: &[u8]) {
    std::fs::write(\"snapshot.tdss\", bytes).ok();
}
pub fn cold_iterates(db: &Db) -> usize {
    db.counts.values().count()
}
";
        let r = run(&[("crates/core/src/lib.rs", src)]);
        let iter: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_UNORDERED_ITER)
            .collect();
        // `encode` reaches the sink through `persist`; `cold_iterates`
        // never feeds output and stays silent.
        assert_eq!(iter.len(), 1, "{:?}", r.findings);
        assert_eq!(iter[0].line, 6);
        assert!(iter[0].message.contains("`encode`"), "{}", iter[0].message);
        assert!(
            iter[0].message.contains("counts.iter"),
            "{}",
            iter[0].message
        );
        assert!(
            iter[0].message.contains("persisted output"),
            "{}",
            iter[0].message
        );
    }

    #[test]
    fn intervening_sort_exempts_iteration() {
        let src = "\
use std::collections::HashMap;
pub fn encode(map: &HashMap<u32, u32>, out: &mut Vec<u8>) {
    let mut pairs: Vec<(u32, u32)> = map.iter().map(|(k, v)| (*k, *v)).collect();
    pairs.sort_unstable();
    for (k, v) in pairs {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    std::fs::write(\"out.bin\", &out).ok();
}
pub fn encode_btree(map: &HashMap<u32, u32>) -> Vec<u8> {
    let ordered: std::collections::BTreeMap<u32, u32> = map.iter().map(|(k, v)| (*k, *v)).collect();
    let bytes: Vec<u8> = ordered.keys().map(|k| *k as u8).collect();
    std::fs::write(\"out2.bin\", &bytes).ok();
    bytes
}
";
        let r = run(&[("crates/core/src/lib.rs", src)]);
        assert!(
            r.findings.is_empty(),
            "sorted iteration must not fire: {:?}",
            r.findings
        );
    }

    #[test]
    fn lookups_do_not_fire() {
        let src = "\
use std::collections::HashMap;
pub fn encode(map: &HashMap<u32, u32>, keys: &[u32], out: &mut Vec<u8>) {
    for k in keys {
        if let Some(v) = map.get(k) {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    std::fs::write(\"out.bin\", &out).ok();
}
";
        let r = run(&[("crates/core/src/lib.rs", src)]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn telemetry_sinks_catch_iteration_but_not_time() {
        let src = "\
use std::collections::HashMap;
pub fn render(series: &HashMap<String, f64>) -> String {
    let started = Instant::now();
    let mut text = PromText::new();
    for (name, value) in series.iter() {
        text.push(name, *value);
    }
    let _ = started.elapsed();
    text.finish()
}
";
        let r = run(&[("crates/net/src/server.rs", src)]);
        let rules: Vec<&str> = r.findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec![RULE_UNORDERED_ITER], "{:?}", r.findings);
        assert!(
            r.findings[0].message.contains("telemetry export"),
            "{}",
            r.findings[0].message
        );
    }

    #[test]
    fn clock_reads_feeding_persistence_are_flagged() {
        let src = "\
pub fn snapshot(out_path: &str, payload: &[u8]) {
    let stamp = SystemTime::now();
    let secs = stamp.duration_since(UNIX_EPOCH).unwrap().as_secs();
    let mut bytes = secs.to_le_bytes().to_vec();
    bytes.extend_from_slice(payload);
    std::fs::write(out_path, &bytes).ok();
}
";
        let r = run(&[("crates/core/src/snapshot.rs", src)]);
        let time: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_TIME_TAINT)
            .collect();
        assert_eq!(time.len(), 1, "{:?}", r.findings);
        assert_eq!(time[0].line, 2);
        assert!(time[0].message.contains("+1 more"), "{}", time[0].message);
    }

    #[test]
    fn bench_and_obs_clock_reads_are_exempt() {
        let bench = "\
pub fn measure(out: &str) {
    let t = Instant::now();
    work();
    let json = render(t.elapsed());
    std::fs::write(out, json).ok();
}
";
        let obs = "\
pub fn write_event(line: &str, w: &mut impl Write) {
    let now = SystemTime::now();
    w.write_all(line.as_bytes()).ok();
    let _ = now;
}
";
        let r = run(&[
            ("crates/bench/src/bin/tab_x.rs", bench),
            ("crates/obs/src/writer.rs", obs),
        ]);
        let time: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_TIME_TAINT)
            .collect();
        assert!(time.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn unseeded_rng_is_flagged_seeded_is_not() {
        let src = "\
pub fn scramble() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}
pub fn corpus() -> u64 {
    let mut rng = StdRng::seed_from_u64(2004);
    rng.next_u64()
}
";
        let r = run(&[("crates/dataset/src/lib.rs", src)]);
        let rng: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_RNG_DISCIPLINE)
            .collect();
        assert_eq!(rng.len(), 1, "{:?}", r.findings);
        assert_eq!(rng[0].line, 2);
    }

    #[test]
    fn parallel_float_reduction_needs_justification_sequential_does_not() {
        let src = "\
pub fn par_total(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * x).sum()
}
pub fn seq_total(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |a, x| a + x)
}
";
        let r = run(&[("crates/core/src/features.rs", src)]);
        let float: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_FLOAT_REDUCTION)
            .collect();
        assert_eq!(float.len(), 1, "{:?}", r.findings);
        assert_eq!(float[0].line, 2);
    }

    #[test]
    fn float_accumulation_in_spawning_fn_is_flagged() {
        let src = "\
pub fn chunked_total(xs: &[f64]) -> f64 {
    let partials = std::thread::scope(|s| {
        let handles: Vec<_> = xs.chunks(64).map(|c| s.spawn(move || c.len())).collect();
        handles
    });
    partials.into_iter().map(|h| h as f64).sum::<f64>()
}
";
        let r = run(&[("crates/core/src/features.rs", src)]);
        let float: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_FLOAT_REDUCTION)
            .collect();
        assert_eq!(float.len(), 1, "{:?}", r.findings);
        assert_eq!(float[0].line, 6);
    }

    #[test]
    fn pointer_identity_is_flagged() {
        let src = "\
pub fn bucket_of(item: &Item) -> usize {
    let addr = item as *const _ as usize;
    addr % 16
}
";
        let r = run(&[("crates/core/src/lib.rs", src)]);
        let addr: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_ADDR_HASH)
            .collect();
        assert_eq!(addr.len(), 1, "{:?}", r.findings);
        assert_eq!(addr[0].line, 2);
    }

    #[test]
    fn waivers_silence_and_cross_tool_waivers_do_not() {
        let src = "\
pub fn scramble() -> u64 {
    let mut rng = thread_rng(); // determinism: allow(rng-discipline) — jitter only, never persisted
    let addr = std::ptr::hash(&rng, &mut h); // lint: allow(addr-hash) — wrong tool
    rng.next_u64()
}
";
        let r = run(&[("crates/core/src/lib.rs", src)]);
        assert_eq!(r.waived_count(), 1, "{:?}", r.findings);
        assert_eq!(r.unwaived_count(), 1);
        assert_eq!(r.unwaived().next().unwrap().rule, RULE_ADDR_HASH);
    }

    #[test]
    fn cfg_test_regions_are_invisible() {
        let src = "\
pub fn lib_code() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        for (k, v) in m.iter() {
            std::fs::write(\"x\", format!(\"{k}{v}\")).ok();
        }
        let _ = thread_rng();
    }
}
";
        let r = run(&[("crates/core/src/lib.rs", src)]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn unordered_name_extraction_covers_lets_fields_and_params() {
        let lines = vec![
            "    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();",
            "    pub indexes: HashMap<FeatureKind, RTree>,",
            "pub fn f(changed: Option<&HashSet<PathBuf>>) {}",
            "use std::collections::HashMap;",
            "    let plain = HashSet::new();",
        ];
        let names = unordered_names(&lines);
        assert!(names.contains("by_name"), "{names:?}");
        assert!(names.contains("indexes"), "{names:?}");
        assert!(names.contains("changed"), "{names:?}");
        assert!(names.contains("plain"), "{names:?}");
        // `use` paths never contribute a name.
        assert!(!names.contains("collections"), "{names:?}");
        assert!(!names.contains("std"), "{names:?}");
    }

    #[test]
    fn for_in_iteration_is_detected_with_boundaries() {
        assert!(iterates("    for k in &counts {", "counts").is_some());
        assert!(iterates("    for k in counts_by_kind {", "counts").is_none());
        // Method-call chains report through the method form, not for-in.
        let how = iterates("    for k in self.counts.keys() {", "counts").unwrap();
        assert!(how.contains("counts.keys"), "{how}");
    }

    #[test]
    fn ineligible_files_stay_in_the_graph_but_emit_nothing() {
        let sink = "\
pub fn persist(bytes: &[u8]) {
    std::fs::write(\"snapshot.tdss\", bytes).ok();
}
";
        let caller = "\
use std::collections::HashMap;
pub fn encode(map: &HashMap<u32, u32>) {
    let mut out = Vec::new();
    for (k, _) in map.iter() {
        out.push(*k as u8);
    }
    persist(&out);
}
";
        let files = vec![
            SourceFile {
                rel: "crates/core/src/persist.rs".to_string(),
                source: sink.to_string(),
                eligible: false,
            },
            SourceFile {
                rel: "crates/core/src/encode.rs".to_string(),
                source: caller.to_string(),
                eligible: true,
            },
        ];
        let r = analyze(&files);
        // The sink file is filtered out of reporting, but its sink
        // still taints the caller.
        assert_eq!(r.files_scanned, 1);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].file, "crates/core/src/encode.rs");
        assert_eq!(r.findings[0].rule, RULE_UNORDERED_ITER);
    }
}
