//! The rule engine behind `cargo xtask hotpath` — hot-path
//! allocation and blocking analysis.
//!
//! Unlike `lint` and `audit`, which scan every line, this pass first
//! builds the shared intra-workspace call graph ([`crate::graph`])
//! over the masked sources and only judges functions *reachable from
//! the hot path*:
//!
//! * **roots** — every function whose body starts a stage timer
//!   (`StageTimer::start(`), i.e. the nine instrumented pipeline
//!   stages, plus the net request-dispatch path (`dispatch` /
//!   `serve_request` in `crates/net/src/`);
//! * **edges** — the shared graph's name-resolved call edges (see
//!   `graph.rs` for the resolution rules and their deliberate
//!   over-approximation).
//!
//! Two rule families fire inside reachable functions, at **function
//! granularity** — one finding per (function, rule), anchored at the
//! first offending line, with the remaining sites listed in the
//! message:
//!
//! * `hot-alloc` — per-call heap allocation: `Vec::new`, `vec![]`,
//!   `.collect()`, `.clone()`, `.to_vec()`, `.to_owned()`, `String`
//!   construction, `format!`, `Box::new`, and `with_capacity` sized
//!   by an un-capped variable;
//! * `hot-block` — blocking calls (audit's table minus the
//!   extraction/search entries, which *are* the hot path, plus
//!   `.lock()`).
//!
//! `#[cfg(test)]` regions contribute neither definitions, edges, nor
//! findings. Assertion/panic lines are exempt (their format arguments
//! only run on failure). Waivers use the unified grammar:
//! `// hotpath: allow(<rule>) — <reason>`.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use crate::audit::{suspicious_size_var, BLOCKING_PATTERNS};
use crate::graph::{has_pattern, load_workspace_sources, CallGraph, COLD_LINE_PREFIXES};
use crate::scan::{push_finding, Report, Tool};

pub use crate::graph::SourceFile;

/// Rule names (shared with waiver `allow(...)` syntax).
pub const RULE_HOT_ALLOC: &str = "hot-alloc";
pub const RULE_HOT_BLOCK: &str = "hot-block";

/// All hotpath rule names, for waiver-inventory validation.
pub const HOTPATH_RULES: [&str; 2] = [RULE_HOT_ALLOC, RULE_HOT_BLOCK];

/// Per-call allocation forms. Exact-arity suffixes (`.clone()` rather
/// than `.clone(`) keep `.cloned()` and friends out.
const ALLOC_PATTERNS: [&str; 16] = [
    "Vec::new(",
    "VecDeque::new(",
    "HashMap::new(",
    "HashSet::new(",
    "BTreeMap::new(",
    "vec![",
    ".collect()",
    ".collect::<",
    ".clone()",
    ".to_vec()",
    ".to_owned()",
    "String::new(",
    "String::from(",
    ".to_string()",
    "format!(",
    "Box::new(",
];

/// Entries of audit's blocking table that are calls *into* the
/// pipeline — they are the hot path, not a detour off it.
const PIPELINE_CALLS: [&str; 6] = [
    "extract(",
    "search_mesh(",
    "search_features(",
    "multi_step_search(",
    "multi_step_mesh(",
    "bulk_insert(",
];

/// Analyzes the workspace rooted at `root`. The call graph always
/// covers the full tree; `changed` only restricts which files'
/// findings are emitted.
pub fn hotpath_root(root: &Path, changed: Option<&HashSet<PathBuf>>) -> Result<Report, String> {
    let files = load_workspace_sources(root, changed)?;
    Ok(analyze(&files))
}

fn analyze(files: &[SourceFile]) -> Report {
    let g = CallGraph::build(files);

    // Roots: stage-timer starts (in file/line order), then the net
    // dispatch entry points.
    let mut roots: Vec<usize> = Vec::new();
    for (fi, info) in g.infos.iter().enumerate() {
        for (idx, line) in info.masked.lines().enumerate() {
            if info.in_test[idx] {
                continue;
            }
            let Some(di) = g.fn_of_line[fi][idx] else {
                continue;
            };
            if g.defs[di].in_test {
                continue;
            }
            if line.contains("StageTimer::start(") && !roots.contains(&di) {
                roots.push(di);
            }
        }
    }
    for (di, d) in g.defs.iter().enumerate() {
        if !d.in_test
            && (d.name == "dispatch" || d.name == "serve_request")
            && files[d.file].rel.starts_with("crates/net/src/")
            && !roots.contains(&di)
        {
            roots.push(di);
        }
    }

    let reach = g.forward_reach(&roots);

    // Findings, one per (reachable fn, rule family).
    let mut report = Report {
        files_scanned: files.iter().filter(|f| f.eligible).count(),
        ..Report::default()
    };
    for (di, d) in g.defs.iter().enumerate() {
        let Some(&root) = reach.get(&di) else {
            continue;
        };
        if !files[d.file].eligible {
            continue;
        }
        let info = &g.infos[d.file];
        let lines: Vec<&str> = info.masked.lines().collect();
        let mut alloc_sites: Vec<(usize, &str)> = Vec::new();
        let mut block_sites: Vec<(usize, &str)> = Vec::new();
        for (idx, &line) in lines
            .iter()
            .enumerate()
            .take(d.end.min(lines.len()))
            .skip(d.start - 1)
        {
            if info.in_test[idx] || g.fn_of_line[d.file][idx] != Some(di) {
                continue;
            }
            let trimmed = line.trim_start();
            if COLD_LINE_PREFIXES.iter().any(|p| trimmed.starts_with(p)) {
                continue;
            }
            if let Some(pat) = alloc_pattern(line) {
                alloc_sites.push((idx + 1, pat));
            }
            if let Some(pat) = block_pattern(line) {
                block_sites.push((idx + 1, pat));
            }
        }
        for (rule, sites, verb, advice) in [
            (
                RULE_HOT_ALLOC,
                &alloc_sites,
                "allocates per call",
                "reuse a scratch buffer or hoist the allocation",
            ),
            (
                RULE_HOT_BLOCK,
                &block_sites,
                "may block",
                "move I/O and locking off the hot path",
            ),
        ] {
            let Some(&(lineno, pat)) = sites.first() else {
                continue;
            };
            let more = if sites.len() > 1 {
                let rest: Vec<String> = sites[1..].iter().map(|(l, _)| l.to_string()).collect();
                format!(" (+{} more: line {})", sites.len() - 1, rest.join(", "))
            } else {
                String::new()
            };
            push_finding(
                &mut report,
                &info.waivers,
                &lines,
                &files[d.file].rel,
                lineno,
                Tool::Hotpath,
                rule,
                format!(
                    "hot fn `{}` (reachable from `{}`) {verb}: `{}`{more} — {advice}, \
                     or waive with a reason",
                    d.name,
                    g.defs[root].name,
                    pat.trim_end_matches('('),
                ),
            );
        }
    }
    report.sort();
    report
}

/// The first allocation pattern on `line`, if any. `with_capacity` is
/// only an allocation smell when sized by an un-capped variable.
fn alloc_pattern(line: &str) -> Option<&'static str> {
    for pat in ALLOC_PATTERNS {
        if has_pattern(line, pat) {
            return Some(pat);
        }
    }
    if let Some(pos) = line.find("with_capacity(") {
        let arg = crate::audit::balanced_span(&line[pos + "with_capacity(".len()..], '(', ')');
        if suspicious_size_var(arg).is_some() {
            return Some("with_capacity(");
        }
    }
    None
}

/// The first blocking pattern on `line`, if any.
fn block_pattern(line: &str) -> Option<&'static str> {
    BLOCKING_PATTERNS
        .iter()
        .filter(|p| !PIPELINE_CALLS.contains(p))
        .chain(std::iter::once(&".lock()"))
        .find(|p| has_pattern(line, p))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Report {
        let files: Vec<SourceFile> = files
            .iter()
            .map(|(rel, src)| SourceFile {
                rel: rel.to_string(),
                source: src.to_string(),
                eligible: true,
            })
            .collect();
        analyze(&files)
    }

    const ROOT_FN: &str = "\
pub fn voxelize(m: &Mesh) {
    let _t = StageTimer::start(Stage::Voxelize);
    helper(m);
}
";

    #[test]
    fn allocation_in_root_fn_is_flagged() {
        let src = "\
pub fn voxelize(m: &Mesh) {
    let _t = StageTimer::start(Stage::Voxelize);
    let v: Vec<u8> = Vec::new();
    let w = v.clone();
}
";
        let r = run(&[("crates/voxel/src/lib.rs", src)]);
        let alloc: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_HOT_ALLOC)
            .collect();
        // One finding per fn, anchored at the first site, listing the
        // second.
        assert_eq!(alloc.len(), 1, "{:?}", r.findings);
        assert_eq!(alloc[0].line, 3);
        assert!(alloc[0].message.contains("+1 more"), "{}", alloc[0].message);
    }

    #[test]
    fn unreachable_fn_is_not_flagged() {
        let src = "\
pub fn cold(m: &Mesh) {
    let v: Vec<u8> = Vec::new();
    let _ = v;
}
";
        let r = run(&[("crates/voxel/src/lib.rs", src)]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn reachability_crosses_files_and_crates() {
        let callee = "\
pub fn helper(m: &Mesh) {
    let v = m.verts.to_vec();
    let _ = v;
}
";
        let r = run(&[
            ("crates/voxel/src/lib.rs", ROOT_FN),
            ("crates/geom/src/lib.rs", callee),
        ]);
        let alloc: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_HOT_ALLOC)
            .collect();
        assert_eq!(alloc.len(), 1, "{:?}", r.findings);
        assert_eq!(alloc[0].file, "crates/geom/src/lib.rs");
        assert!(alloc[0].message.contains("reachable from `voxelize`"));
    }

    #[test]
    fn qualified_calls_resolve_against_workspace_impls_only() {
        let root = "\
pub fn voxelize(m: &Mesh) {
    let _t = StageTimer::start(Stage::Voxelize);
    let g = Grid::make(m);
    let v = Vec::with_capacity(16);
    let _ = (g, v);
}
";
        let callee = "\
pub struct Grid;
impl Grid {
    pub fn make(m: &Mesh) -> Grid {
        let bits = vec![0u64; 4];
        let _ = bits;
        Grid
    }
}
pub struct Other;
impl Other {
    pub fn make(m: &Mesh) -> Other {
        let leak: Vec<u8> = Vec::new();
        let _ = leak;
        Other
    }
}
";
        let r = run(&[
            ("crates/voxel/src/lib.rs", root),
            ("crates/voxel/src/grid.rs", callee),
        ]);
        // Grid::make is reachable; Other::make is not (the qualifier
        // disambiguates); Vec::with_capacity creates no edge.
        let files: Vec<(&str, usize)> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_HOT_ALLOC)
            .map(|f| (f.file.as_str(), f.line))
            .collect();
        assert_eq!(
            files,
            vec![("crates/voxel/src/grid.rs", 4)],
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn method_calls_resolve_by_name() {
        let root = "\
pub fn skeletonize(g: &Grid) {
    let _t = StageTimer::start(Stage::Skeletonize);
    g.thin_once();
}
";
        let callee = "\
impl Grid {
    pub fn thin_once(&self) {
        let c: Vec<u8> = Vec::new();
        let _ = c;
    }
}
";
        let r = run(&[
            ("crates/skeleton/src/lib.rs", root),
            ("crates/skeleton/src/thin.rs", callee),
        ]);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].file, "crates/skeleton/src/thin.rs");
    }

    #[test]
    fn cfg_test_fns_contribute_neither_edges_nor_findings() {
        let src = "\
pub fn voxelize(m: &Mesh) {
    let _t = StageTimer::start(Stage::Voxelize);
    helper(m);
}
#[cfg(test)]
mod tests {
    fn helper(m: &Mesh) {
        let v: Vec<u8> = Vec::new();
        let _ = v;
    }
    #[test]
    fn t() {
        let big: Vec<u8> = Vec::new();
        let _ = big;
    }
}
";
        let r = run(&[("crates/voxel/src/lib.rs", src)]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn net_dispatch_is_a_root() {
        let src = "\
fn serve_request(req: Request) {
    let body = req.body.to_vec();
    let _ = body;
}
";
        let r = run(&[("crates/net/src/server.rs", src)]);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert!(r.findings[0].message.contains("serve_request"));
    }

    #[test]
    fn blocking_calls_are_flagged_but_pipeline_calls_are_not() {
        let src = "\
pub fn voxelize(m: &Mesh) {
    let _t = StageTimer::start(Stage::Voxelize);
    let g = sink.lock();
    extract(m);
    let _ = g;
}
";
        let r = run(&[("crates/voxel/src/lib.rs", src)]);
        let block: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_HOT_BLOCK)
            .collect();
        assert_eq!(block.len(), 1, "{:?}", r.findings);
        assert_eq!(block[0].line, 3);
        assert!(
            !block[0].message.contains("+1 more"),
            "{}",
            block[0].message
        );
    }

    #[test]
    fn capped_with_capacity_is_fine_uncapped_is_not() {
        let src = "\
pub fn voxelize(m: &Mesh, n: usize) {
    let _t = StageTimer::start(Stage::Voxelize);
    let a: Vec<u8> = Vec::with_capacity(MAX_CELLS);
    let b: Vec<u8> = Vec::with_capacity(n);
    let _ = (a, b);
}
";
        let r = run(&[("crates/voxel/src/lib.rs", src)]);
        let alloc: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_HOT_ALLOC)
            .collect();
        assert_eq!(alloc.len(), 1, "{:?}", r.findings);
        assert_eq!(alloc[0].line, 4);
    }

    #[test]
    fn assertion_lines_are_exempt() {
        let src = "\
pub fn voxelize(m: &Mesh) {
    let _t = StageTimer::start(Stage::Voxelize);
    assert!(m.ok(), \"bad mesh: {}\", m.id.to_string());
    debug_assert_eq!(m.n, m.verts.clone().len());
}
";
        let r = run(&[("crates/voxel/src/lib.rs", src)]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn waivers_silence_and_cross_tool_waivers_do_not() {
        let src = "\
pub fn voxelize(m: &Mesh) {
    let _t = StageTimer::start(Stage::Voxelize);
    let v: Vec<u8> = Vec::new(); // hotpath: allow(hot-alloc) — grown once, reused after
    let g = sink.lock(); // audit: allow(hot-block) — wrong tool
    let _ = (v, g);
}
";
        let r = run(&[("crates/voxel/src/lib.rs", src)]);
        assert_eq!(r.waived_count(), 1, "{:?}", r.findings);
        assert_eq!(r.unwaived_count(), 1);
        assert_eq!(r.unwaived().next().unwrap().rule, RULE_HOT_BLOCK);
    }

    #[test]
    fn shadowed_local_names_still_resolve_to_workspace_fns() {
        // A local closure named like a workspace fn still produces the
        // edge — the scanner is name-based and over-approximate by
        // design; this test pins that behavior.
        let root = "\
pub fn voxelize(m: &Mesh) {
    let _t = StageTimer::start(Stage::Voxelize);
    let helper = |x: u32| x + 1;
    helper(3);
}
";
        let callee = "\
pub fn helper(m: &Mesh) {
    let v: Vec<u8> = Vec::new();
    let _ = v;
}
";
        let r = run(&[
            ("crates/voxel/src/lib.rs", root),
            ("crates/geom/src/lib.rs", callee),
        ]);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].file, "crates/geom/src/lib.rs");
    }

    #[test]
    fn ineligible_files_stay_in_the_graph_but_emit_nothing() {
        let callee = "\
pub fn helper(m: &Mesh) {
    let v = m.verts.to_vec();
    let _ = v;
}
";
        let files = vec![
            SourceFile {
                rel: "crates/voxel/src/lib.rs".to_string(),
                source: ROOT_FN.to_string(),
                eligible: false,
            },
            SourceFile {
                rel: "crates/geom/src/lib.rs".to_string(),
                source: callee.to_string(),
                eligible: true,
            },
        ];
        let r = analyze(&files);
        // The root file is filtered out, but its edges still make the
        // callee reachable.
        assert_eq!(r.files_scanned, 1);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].file, "crates/geom/src/lib.rs");
    }

    #[test]
    fn self_calls_resolve_through_the_impl_type() {
        let src = "\
pub struct Pipe;
impl Pipe {
    pub fn run(&self) {
        let _t = StageTimer::start(Stage::Normalize);
        Self::step();
    }
    fn step() {
        let v: Vec<u8> = Vec::new();
        let _ = v;
    }
}
";
        let r = run(&[("crates/core/src/lib.rs", src)]);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].line, 8);
    }
}
