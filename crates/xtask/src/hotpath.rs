//! The rule engine behind `cargo xtask hotpath` — hot-path
//! allocation and blocking analysis.
//!
//! Unlike `lint` and `audit`, which scan every line, this pass first
//! builds a lightweight intra-workspace call graph over the masked
//! sources and only judges functions *reachable from the hot path*:
//!
//! * **roots** — every function whose body starts a stage timer
//!   (`StageTimer::start(`), i.e. the nine instrumented pipeline
//!   stages, plus the net request-dispatch path (`dispatch` /
//!   `serve_request` in `crates/net/src/`);
//! * **edges** — call sites resolved by name against workspace
//!   function definitions. Qualified calls (`Type::fn`) resolve
//!   against `impl Type` blocks when the type is defined in the
//!   workspace and are dropped when it is foreign (`Vec::new` never
//!   drags every workspace `new` into the graph); `Self::fn` uses the
//!   caller's impl type; module-path and method calls fall back to
//!   name-only resolution. This is deliberately over-approximate —
//!   a method call reaches every workspace function of that name.
//!
//! Two rule families fire inside reachable functions, at **function
//! granularity** — one finding per (function, rule), anchored at the
//! first offending line, with the remaining sites listed in the
//! message:
//!
//! * `hot-alloc` — per-call heap allocation: `Vec::new`, `vec![]`,
//!   `.collect()`, `.clone()`, `.to_vec()`, `.to_owned()`, `String`
//!   construction, `format!`, `Box::new`, and `with_capacity` sized
//!   by an un-capped variable;
//! * `hot-block` — blocking calls (audit's table minus the
//!   extraction/search entries, which *are* the hot path, plus
//!   `.lock()`).
//!
//! `#[cfg(test)]` regions contribute neither definitions, edges, nor
//! findings. Assertion/panic lines are exempt (their format arguments
//! only run on failure). Waivers use the unified grammar:
//! `// hotpath: allow(<rule>) — <reason>`.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};

use crate::audit::{suspicious_size_var, BLOCKING_PATTERNS};
use crate::scan::{mask, push_finding, test_lines, workspace_units, Report, Tool, Waiver};

/// Rule names (shared with waiver `allow(...)` syntax).
pub const RULE_HOT_ALLOC: &str = "hot-alloc";
pub const RULE_HOT_BLOCK: &str = "hot-block";

/// All hotpath rule names, for waiver-inventory validation.
pub const HOTPATH_RULES: [&str; 2] = [RULE_HOT_ALLOC, RULE_HOT_BLOCK];

/// Per-call allocation forms. Exact-arity suffixes (`.clone()` rather
/// than `.clone(`) keep `.cloned()` and friends out.
const ALLOC_PATTERNS: [&str; 16] = [
    "Vec::new(",
    "VecDeque::new(",
    "HashMap::new(",
    "HashSet::new(",
    "BTreeMap::new(",
    "vec![",
    ".collect()",
    ".collect::<",
    ".clone()",
    ".to_vec()",
    ".to_owned()",
    "String::new(",
    "String::from(",
    ".to_string()",
    "format!(",
    "Box::new(",
];

/// Entries of audit's blocking table that are calls *into* the
/// pipeline — they are the hot path, not a detour off it.
const PIPELINE_CALLS: [&str; 6] = [
    "extract(",
    "search_mesh(",
    "search_features(",
    "multi_step_search(",
    "multi_step_mesh(",
    "bulk_insert(",
];

/// Lines whose trailing arguments only evaluate on failure (assert /
/// panic family) or behind the trace-level guard (obs event macros
/// expand to `if enabled(level) { ... }`) — eager allocation there is
/// free on the fast path.
const COLD_LINE_PREFIXES: [&str; 11] = [
    "assert!",
    "assert_eq!",
    "assert_ne!",
    "debug_assert",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "event!(",
    "event_kv!(",
    "tdess_obs::event",
];

/// One input file for [`analyze`]: workspace-relative path, raw
/// source, and whether findings in it should be emitted (`--changed`
/// keeps every file in the graph but only reports on changed ones).
pub struct SourceFile {
    pub rel: String,
    pub source: String,
    pub eligible: bool,
}

/// Analyzes the workspace rooted at `root`. The call graph always
/// covers the full tree; `changed` only restricts which files'
/// findings are emitted.
pub fn hotpath_root(root: &Path, changed: Option<&HashSet<PathBuf>>) -> Result<Report, String> {
    let mut files = Vec::new();
    for unit in workspace_units(root, None)? {
        for file in &unit.files {
            let source = std::fs::read_to_string(file)
                .map_err(|e| format!("read {}: {e}", file.display()))?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(file)
                .to_string_lossy()
                .into_owned();
            let eligible = changed.is_none_or(|set| {
                std::fs::canonicalize(file)
                    .map(|abs| set.contains(&abs))
                    .unwrap_or(false)
            });
            files.push(SourceFile {
                rel,
                source,
                eligible,
            });
        }
    }
    Ok(analyze(&files))
}

/// A function definition discovered in the masked source.
#[derive(Debug)]
struct FnDef {
    file: usize,
    name: String,
    /// The `impl` block's type name, when defined inside one.
    impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    start: usize,
    /// 1-based line of the closing brace (>= start).
    end: usize,
    in_test: bool,
}

/// One call site inside a function body.
#[derive(Debug)]
enum Call {
    /// `foo(` or `.foo(` — resolved by name alone.
    Name(String),
    /// `Qual::foo(` — resolved against `impl Qual` when `Qual` is a
    /// workspace type (capitalized); by name for module paths.
    Qualified(String, String),
}

struct FileInfo {
    masked: String,
    in_test: Vec<bool>,
    waivers: Vec<Waiver>,
}

fn analyze(files: &[SourceFile]) -> Report {
    // Pass 1: mask + definitions.
    let mut infos: Vec<FileInfo> = Vec::with_capacity(files.len());
    let mut defs: Vec<FnDef> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        let masked = mask(&f.source);
        let lines: Vec<&str> = masked.text.lines().collect();
        let in_test = test_lines(&lines);
        extract_defs(fi, &lines, &in_test, &mut defs);
        infos.push(FileInfo {
            masked: masked.text,
            in_test,
            waivers: masked.waivers,
        });
    }

    // Resolution maps over non-test definitions.
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut by_type: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    for (di, d) in defs.iter().enumerate() {
        if d.in_test {
            continue;
        }
        by_name.entry(&d.name).or_default().push(di);
        if let Some(ty) = &d.impl_type {
            by_type.entry((ty.as_str(), &d.name)).or_default().push(di);
        }
    }

    // Innermost enclosing function per line, per file.
    let mut fn_of_line: Vec<Vec<Option<usize>>> = infos
        .iter()
        .map(|info| vec![None; info.masked.lines().count()])
        .collect();
    for (di, d) in defs.iter().enumerate() {
        // Definitions are pushed outer-before-inner, so later (inner)
        // entries override within their narrower range.
        for slot in &mut fn_of_line[d.file][d.start - 1..d.end] {
            *slot = Some(di);
        }
    }

    // Pass 2: per-fn call lists and roots.
    let mut calls: Vec<Vec<Call>> = (0..defs.len()).map(|_| Vec::new()).collect();
    let mut roots: Vec<usize> = Vec::new();
    for (fi, info) in infos.iter().enumerate() {
        for (idx, line) in info.masked.lines().enumerate() {
            if info.in_test[idx] {
                continue;
            }
            let Some(di) = fn_of_line[fi][idx] else {
                continue;
            };
            if defs[di].in_test {
                continue;
            }
            if line.contains("StageTimer::start(") && !roots.contains(&di) {
                roots.push(di);
            }
            collect_calls(line, &mut calls[di]);
        }
    }
    for (di, d) in defs.iter().enumerate() {
        if !d.in_test
            && (d.name == "dispatch" || d.name == "serve_request")
            && files[d.file].rel.starts_with("crates/net/src/")
            && !roots.contains(&di)
        {
            roots.push(di);
        }
    }

    // BFS with root provenance.
    let mut reach: HashMap<usize, &str> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in &roots {
        reach.entry(r).or_insert(defs[r].name.as_str());
        queue.push_back(r);
    }
    while let Some(di) = queue.pop_front() {
        let root = reach[&di];
        for call in &calls[di] {
            let targets: &[usize] = match call {
                Call::Name(name) => by_name.get(name.as_str()).map_or(&[], Vec::as_slice),
                Call::Qualified(q, name) => {
                    let ty = if q == "Self" {
                        defs[di].impl_type.as_deref()
                    } else {
                        Some(q.as_str())
                    };
                    match ty.and_then(|t| by_type.get(&(t, name.as_str()))) {
                        Some(ids) => ids.as_slice(),
                        // Capitalized qualifiers are type paths; when
                        // the type is foreign (Vec, String, ...) there
                        // is no workspace edge. Lowercase qualifiers
                        // are module paths — resolve by name.
                        None if q.chars().next().is_some_and(char::is_uppercase) => &[],
                        None => by_name.get(name.as_str()).map_or(&[], Vec::as_slice),
                    }
                }
            };
            for &t in targets {
                if let std::collections::hash_map::Entry::Vacant(e) = reach.entry(t) {
                    e.insert(root);
                    queue.push_back(t);
                }
            }
        }
    }

    // Pass 3: findings, one per (reachable fn, rule family).
    let mut report = Report {
        files_scanned: files.iter().filter(|f| f.eligible).count(),
        ..Report::default()
    };
    for (di, d) in defs.iter().enumerate() {
        let Some(&root) = reach.get(&di) else {
            continue;
        };
        if !files[d.file].eligible {
            continue;
        }
        let info = &infos[d.file];
        let lines: Vec<&str> = info.masked.lines().collect();
        let mut alloc_sites: Vec<(usize, &str)> = Vec::new();
        let mut block_sites: Vec<(usize, &str)> = Vec::new();
        for idx in d.start - 1..d.end.min(lines.len()) {
            if info.in_test[idx] || fn_of_line[d.file][idx] != Some(di) {
                continue;
            }
            let line = lines[idx];
            let trimmed = line.trim_start();
            if COLD_LINE_PREFIXES.iter().any(|p| trimmed.starts_with(p)) {
                continue;
            }
            if let Some(pat) = alloc_pattern(line) {
                alloc_sites.push((idx + 1, pat));
            }
            if let Some(pat) = block_pattern(line) {
                block_sites.push((idx + 1, pat));
            }
        }
        for (rule, sites, verb, advice) in [
            (
                RULE_HOT_ALLOC,
                &alloc_sites,
                "allocates per call",
                "reuse a scratch buffer or hoist the allocation",
            ),
            (
                RULE_HOT_BLOCK,
                &block_sites,
                "may block",
                "move I/O and locking off the hot path",
            ),
        ] {
            let Some(&(lineno, pat)) = sites.first() else {
                continue;
            };
            let more = if sites.len() > 1 {
                let rest: Vec<String> = sites[1..].iter().map(|(l, _)| l.to_string()).collect();
                format!(" (+{} more: line {})", sites.len() - 1, rest.join(", "))
            } else {
                String::new()
            };
            push_finding(
                &mut report,
                &info.waivers,
                &lines,
                &files[d.file].rel,
                lineno,
                Tool::Hotpath,
                rule,
                format!(
                    "hot fn `{}` (reachable from `{}`) {verb}: `{}`{more} — {advice}, \
                     or waive with a reason",
                    d.name,
                    root,
                    pat.trim_end_matches('('),
                ),
            );
        }
    }
    report.sort();
    report
}

/// The first allocation pattern on `line`, if any. `with_capacity` is
/// only an allocation smell when sized by an un-capped variable.
fn alloc_pattern(line: &str) -> Option<&'static str> {
    for pat in ALLOC_PATTERNS {
        if has_pattern(line, pat) {
            return Some(pat);
        }
    }
    if let Some(pos) = line.find("with_capacity(") {
        let arg = crate::audit::balanced_span(&line[pos + "with_capacity(".len()..], '(', ')');
        if suspicious_size_var(arg).is_some() {
            return Some("with_capacity(");
        }
    }
    None
}

/// The first blocking pattern on `line`, if any.
fn block_pattern(line: &str) -> Option<&'static str> {
    BLOCKING_PATTERNS
        .iter()
        .filter(|p| !PIPELINE_CALLS.contains(p))
        .chain(std::iter::once(&".lock()"))
        .find(|p| has_pattern(line, p))
        .copied()
}

/// Substring match that, when the pattern starts with an identifier
/// character, requires a non-identifier character (or line start)
/// before it — `connect(` must not match inside `is_disconnect(`.
fn has_pattern(line: &str, pat: &str) -> bool {
    let ident_start = pat
        .as_bytes()
        .first()
        .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_');
    let mut start = 0;
    while let Some(pos) = line[start..].find(pat) {
        let abs = start + pos;
        if !ident_start
            || !line[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            return true;
        }
        start = abs + 1;
    }
    false
}

/// Extracts function definitions (with enclosing `impl` type and line
/// ranges) from one file's masked lines.
fn extract_defs(file: usize, lines: &[&str], in_test: &[bool], defs: &mut Vec<FnDef>) {
    let mut depth = 0usize;
    // (type name, block depth)
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    let mut pending_impl: Option<String> = None;
    // (name, header line)
    let mut pending_fn: Option<(String, usize)> = None;
    // (defs index, body depth)
    let mut open_fns: Vec<(usize, usize)> = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        if pending_impl.is_none() && pending_fn.is_none() {
            if let Some(ty) = impl_header(line) {
                pending_impl = Some(ty);
            }
        }
        if pending_fn.is_none() {
            if let Some(name) = fn_header(line) {
                pending_fn = Some((name, lineno));
            }
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    // On `impl Foo { fn bar() {` the first brace
                    // belongs to the impl, the second to the fn.
                    if let Some(ty) = pending_impl.take() {
                        impl_stack.push((ty, depth));
                    } else if let Some((name, start)) = pending_fn.take() {
                        let impl_type = impl_stack.last().map(|(t, _)| t.clone());
                        defs.push(FnDef {
                            file,
                            name,
                            impl_type,
                            start,
                            end: start,
                            in_test: in_test[start - 1],
                        });
                        open_fns.push((defs.len() - 1, depth));
                    }
                }
                '}' => {
                    if let Some(&(di, d)) = open_fns.last() {
                        if d == depth {
                            defs[di].end = lineno;
                            open_fns.pop();
                        }
                    }
                    if impl_stack.last().is_some_and(|&(_, d)| d == depth) {
                        impl_stack.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                // A `;` before the body brace is a bodyless
                // declaration (trait method signature).
                ';' => pending_fn = None,
                _ => {}
            }
        }
    }
    // Unclosed trailing fns (truncated file) keep end == start.
    for (di, _) in open_fns {
        defs[di].end = lines.len().max(defs[di].start);
    }
}

/// The function name when `line` opens a definition (`fn name...`).
fn fn_header(line: &str) -> Option<String> {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find("fn") {
        let abs = start + pos;
        let prev_ok = abs == 0
            || !{
                let c = bytes[abs - 1];
                c.is_ascii_alphanumeric() || c == b'_'
            };
        let after = abs + 2;
        let next_ws = bytes.get(after).is_some_and(u8::is_ascii_whitespace);
        if prev_ok && next_ws {
            let name: String = line[after..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
        start = after;
    }
    None
}

/// The implemented type's name when `line` opens an `impl` block
/// (`impl Foo`, `impl<T> Foo<T>`, `impl Trait for Foo`).
fn impl_header(line: &str) -> Option<String> {
    let t = line.trim_start();
    let rest = t.strip_prefix("impl")?;
    let rest = if let Some(r) = rest.strip_prefix('<') {
        // Skip the generic parameter list.
        let mut depth = 1usize;
        let mut cut = r.len();
        for (i, c) in r.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        &r[cut..]
    } else if rest.starts_with(char::is_whitespace) {
        rest
    } else {
        return None;
    };
    let rest = rest.trim_start();
    let target = match rest.find(" for ") {
        Some(pos) => rest[pos + 5..].trim_start(),
        None => rest,
    };
    // Strip leading `&`/`mut` (impl for references is rare but legal).
    let target = target.trim_start_matches(['&', ' ']);
    let name: String = target
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Appends the call sites found on one masked line.
fn collect_calls(line: &str, out: &mut Vec<Call>) {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if !(b.is_ascii_alphabetic() || b == b'_') {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        // Numeric-literal suffix (`100usize`).
        if start > 0 && bytes[start - 1].is_ascii_digit() {
            continue;
        }
        // Macros are not function edges.
        if bytes.get(i) == Some(&b'!') {
            continue;
        }
        let name = &line[start..i];
        // Skip a turbofish between name and argument list.
        let mut j = i;
        if line[j..].starts_with("::<") {
            let mut depth = 0usize;
            let mut k = j + 2;
            while k < bytes.len() {
                match bytes[k] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k;
        }
        if bytes.get(j) != Some(&b'(') {
            continue;
        }
        let before = line[..start].trim_end();
        // The name in `fn name(` is a definition, not a call.
        if before.ends_with("fn")
            && !before[..before.len() - 2].ends_with(|c: char| c.is_alphanumeric() || c == '_')
        {
            continue;
        }
        if let Some(path) = before.strip_suffix("::") {
            let qual: String = path
                .chars()
                .rev()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            if !qual.is_empty() {
                out.push(Call::Qualified(qual, name.to_string()));
                continue;
            }
        }
        out.push(Call::Name(name.to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Report {
        let files: Vec<SourceFile> = files
            .iter()
            .map(|(rel, src)| SourceFile {
                rel: rel.to_string(),
                source: src.to_string(),
                eligible: true,
            })
            .collect();
        analyze(&files)
    }

    const ROOT_FN: &str = "\
pub fn voxelize(m: &Mesh) {
    let _t = StageTimer::start(Stage::Voxelize);
    helper(m);
}
";

    #[test]
    fn allocation_in_root_fn_is_flagged() {
        let src = "\
pub fn voxelize(m: &Mesh) {
    let _t = StageTimer::start(Stage::Voxelize);
    let v: Vec<u8> = Vec::new();
    let w = v.clone();
}
";
        let r = run(&[("crates/voxel/src/lib.rs", src)]);
        let alloc: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_HOT_ALLOC)
            .collect();
        // One finding per fn, anchored at the first site, listing the
        // second.
        assert_eq!(alloc.len(), 1, "{:?}", r.findings);
        assert_eq!(alloc[0].line, 3);
        assert!(alloc[0].message.contains("+1 more"), "{}", alloc[0].message);
    }

    #[test]
    fn unreachable_fn_is_not_flagged() {
        let src = "\
pub fn cold(m: &Mesh) {
    let v: Vec<u8> = Vec::new();
    let _ = v;
}
";
        let r = run(&[("crates/voxel/src/lib.rs", src)]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn reachability_crosses_files_and_crates() {
        let callee = "\
pub fn helper(m: &Mesh) {
    let v = m.verts.to_vec();
    let _ = v;
}
";
        let r = run(&[
            ("crates/voxel/src/lib.rs", ROOT_FN),
            ("crates/geom/src/lib.rs", callee),
        ]);
        let alloc: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_HOT_ALLOC)
            .collect();
        assert_eq!(alloc.len(), 1, "{:?}", r.findings);
        assert_eq!(alloc[0].file, "crates/geom/src/lib.rs");
        assert!(alloc[0].message.contains("reachable from `voxelize`"));
    }

    #[test]
    fn qualified_calls_resolve_against_workspace_impls_only() {
        let root = "\
pub fn voxelize(m: &Mesh) {
    let _t = StageTimer::start(Stage::Voxelize);
    let g = Grid::make(m);
    let v = Vec::with_capacity(16);
    let _ = (g, v);
}
";
        let callee = "\
pub struct Grid;
impl Grid {
    pub fn make(m: &Mesh) -> Grid {
        let bits = vec![0u64; 4];
        let _ = bits;
        Grid
    }
}
pub struct Other;
impl Other {
    pub fn make(m: &Mesh) -> Other {
        let leak: Vec<u8> = Vec::new();
        let _ = leak;
        Other
    }
}
";
        let r = run(&[
            ("crates/voxel/src/lib.rs", root),
            ("crates/voxel/src/grid.rs", callee),
        ]);
        // Grid::make is reachable; Other::make is not (the qualifier
        // disambiguates); Vec::with_capacity creates no edge.
        let files: Vec<(&str, usize)> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_HOT_ALLOC)
            .map(|f| (f.file.as_str(), f.line))
            .collect();
        assert_eq!(
            files,
            vec![("crates/voxel/src/grid.rs", 4)],
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn method_calls_resolve_by_name() {
        let root = "\
pub fn skeletonize(g: &Grid) {
    let _t = StageTimer::start(Stage::Skeletonize);
    g.thin_once();
}
";
        let callee = "\
impl Grid {
    pub fn thin_once(&self) {
        let c: Vec<u8> = Vec::new();
        let _ = c;
    }
}
";
        let r = run(&[
            ("crates/skeleton/src/lib.rs", root),
            ("crates/skeleton/src/thin.rs", callee),
        ]);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].file, "crates/skeleton/src/thin.rs");
    }

    #[test]
    fn cfg_test_fns_contribute_neither_edges_nor_findings() {
        let src = "\
pub fn voxelize(m: &Mesh) {
    let _t = StageTimer::start(Stage::Voxelize);
    helper(m);
}
#[cfg(test)]
mod tests {
    fn helper(m: &Mesh) {
        let v: Vec<u8> = Vec::new();
        let _ = v;
    }
    #[test]
    fn t() {
        let big: Vec<u8> = Vec::new();
        let _ = big;
    }
}
";
        let r = run(&[("crates/voxel/src/lib.rs", src)]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn net_dispatch_is_a_root() {
        let src = "\
fn serve_request(req: Request) {
    let body = req.body.to_vec();
    let _ = body;
}
";
        let r = run(&[("crates/net/src/server.rs", src)]);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert!(r.findings[0].message.contains("serve_request"));
    }

    #[test]
    fn blocking_calls_are_flagged_but_pipeline_calls_are_not() {
        let src = "\
pub fn voxelize(m: &Mesh) {
    let _t = StageTimer::start(Stage::Voxelize);
    let g = sink.lock();
    extract(m);
    let _ = g;
}
";
        let r = run(&[("crates/voxel/src/lib.rs", src)]);
        let block: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_HOT_BLOCK)
            .collect();
        assert_eq!(block.len(), 1, "{:?}", r.findings);
        assert_eq!(block[0].line, 3);
        assert!(
            !block[0].message.contains("+1 more"),
            "{}",
            block[0].message
        );
    }

    #[test]
    fn capped_with_capacity_is_fine_uncapped_is_not() {
        let src = "\
pub fn voxelize(m: &Mesh, n: usize) {
    let _t = StageTimer::start(Stage::Voxelize);
    let a: Vec<u8> = Vec::with_capacity(MAX_CELLS);
    let b: Vec<u8> = Vec::with_capacity(n);
    let _ = (a, b);
}
";
        let r = run(&[("crates/voxel/src/lib.rs", src)]);
        let alloc: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_HOT_ALLOC)
            .collect();
        assert_eq!(alloc.len(), 1, "{:?}", r.findings);
        assert_eq!(alloc[0].line, 4);
    }

    #[test]
    fn assertion_lines_are_exempt() {
        let src = "\
pub fn voxelize(m: &Mesh) {
    let _t = StageTimer::start(Stage::Voxelize);
    assert!(m.ok(), \"bad mesh: {}\", m.id.to_string());
    debug_assert_eq!(m.n, m.verts.clone().len());
}
";
        let r = run(&[("crates/voxel/src/lib.rs", src)]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn waivers_silence_and_cross_tool_waivers_do_not() {
        let src = "\
pub fn voxelize(m: &Mesh) {
    let _t = StageTimer::start(Stage::Voxelize);
    let v: Vec<u8> = Vec::new(); // hotpath: allow(hot-alloc) — grown once, reused after
    let g = sink.lock(); // audit: allow(hot-block) — wrong tool
    let _ = (v, g);
}
";
        let r = run(&[("crates/voxel/src/lib.rs", src)]);
        assert_eq!(r.waived_count(), 1, "{:?}", r.findings);
        assert_eq!(r.unwaived_count(), 1);
        assert_eq!(r.unwaived().next().unwrap().rule, RULE_HOT_BLOCK);
    }

    #[test]
    fn shadowed_local_names_still_resolve_to_workspace_fns() {
        // A local closure named like a workspace fn still produces the
        // edge — the scanner is name-based and over-approximate by
        // design; this test pins that behavior.
        let root = "\
pub fn voxelize(m: &Mesh) {
    let _t = StageTimer::start(Stage::Voxelize);
    let helper = |x: u32| x + 1;
    helper(3);
}
";
        let callee = "\
pub fn helper(m: &Mesh) {
    let v: Vec<u8> = Vec::new();
    let _ = v;
}
";
        let r = run(&[
            ("crates/voxel/src/lib.rs", root),
            ("crates/geom/src/lib.rs", callee),
        ]);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].file, "crates/geom/src/lib.rs");
    }

    #[test]
    fn ineligible_files_stay_in_the_graph_but_emit_nothing() {
        let callee = "\
pub fn helper(m: &Mesh) {
    let v = m.verts.to_vec();
    let _ = v;
}
";
        let files = vec![
            SourceFile {
                rel: "crates/voxel/src/lib.rs".to_string(),
                source: ROOT_FN.to_string(),
                eligible: false,
            },
            SourceFile {
                rel: "crates/geom/src/lib.rs".to_string(),
                source: callee.to_string(),
                eligible: true,
            },
        ];
        let r = analyze(&files);
        // The root file is filtered out, but its edges still make the
        // callee reachable.
        assert_eq!(r.files_scanned, 1);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].file, "crates/geom/src/lib.rs");
    }

    #[test]
    fn self_calls_resolve_through_the_impl_type() {
        let src = "\
pub struct Pipe;
impl Pipe {
    pub fn run(&self) {
        let _t = StageTimer::start(Stage::Normalize);
        Self::step();
    }
    fn step() {
        let v: Vec<u8> = Vec::new();
        let _ = v;
    }
}
";
        let r = run(&[("crates/core/src/lib.rs", src)]);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].line, 8);
    }
}
