//! The lightweight intra-workspace call graph shared by the
//! reachability-based passes (`hotpath`, `determinism`).
//!
//! Built once over the *masked* sources (comments/strings blanked, see
//! [`crate::scan::mask`]): function definitions with their enclosing
//! `impl` type and line ranges, an innermost-enclosing-function map per
//! line, and call edges resolved by name against workspace
//! definitions. Qualified calls (`Type::fn`) resolve against
//! `impl Type` blocks when the type is defined in the workspace and
//! are dropped when it is foreign (`Vec::new` never drags every
//! workspace `new` into the graph); `Self::fn` uses the caller's impl
//! type; module-path and method calls fall back to name-only
//! resolution. This is deliberately over-approximate — a method call
//! reaches every workspace function of that name.
//!
//! `#[cfg(test)]` regions contribute neither definitions nor edges.
//! The passes differ only in how they traverse: `hotpath` walks
//! *forward* from the stage-timer/dispatch roots, `determinism` walks
//! *backward* from the output sinks.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};

use crate::scan::{mask, test_lines, workspace_units, Waiver};

/// One input file for graph construction: workspace-relative path, raw
/// source, and whether findings in it should be emitted (`--changed`
/// keeps every file in the graph but only reports on changed ones).
pub struct SourceFile {
    pub rel: String,
    pub source: String,
    pub eligible: bool,
}

/// Loads every workspace source file under `root`, marking files
/// outside `changed` (when given) as graph-only. Shared by the
/// reachability passes, whose call graphs must always span the full
/// tree regardless of `--changed`.
pub fn load_workspace_sources(
    root: &Path,
    changed: Option<&HashSet<PathBuf>>,
) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    for unit in workspace_units(root, None)? {
        for file in &unit.files {
            let source = std::fs::read_to_string(file)
                .map_err(|e| format!("read {}: {e}", file.display()))?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(file)
                .to_string_lossy()
                .into_owned();
            let eligible = changed.is_none_or(|set| {
                std::fs::canonicalize(file)
                    .map(|abs| set.contains(&abs))
                    .unwrap_or(false)
            });
            files.push(SourceFile {
                rel,
                source,
                eligible,
            });
        }
    }
    Ok(files)
}

/// A function definition discovered in the masked source.
#[derive(Debug)]
pub struct FnDef {
    /// Index into the input file slice.
    pub file: usize,
    pub name: String,
    /// The `impl` block's type name, when defined inside one.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub start: usize,
    /// 1-based line of the closing brace (>= start).
    pub end: usize,
    pub in_test: bool,
}

/// One call site inside a function body.
#[derive(Debug)]
enum Call {
    /// `foo(` or `.foo(` — resolved by name alone.
    Name(String),
    /// `Qual::foo(` — resolved against `impl Qual` when `Qual` is a
    /// workspace type (capitalized); by name for module paths.
    Qualified(String, String),
}

/// Per-file masking artifacts kept alongside the graph.
pub struct FileInfo {
    pub masked: String,
    pub in_test: Vec<bool>,
    pub waivers: Vec<Waiver>,
}

/// The resolved call graph over one set of [`SourceFile`]s.
pub struct CallGraph {
    pub infos: Vec<FileInfo>,
    pub defs: Vec<FnDef>,
    /// Innermost enclosing function (index into `defs`) per masked
    /// line, per file.
    pub fn_of_line: Vec<Vec<Option<usize>>>,
    /// Resolved callee definition indices per definition, in call-site
    /// order (duplicates preserved).
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Masks every file, extracts definitions, and resolves call
    /// edges. Test regions contribute nothing.
    pub fn build(files: &[SourceFile]) -> CallGraph {
        // Pass 1: mask + definitions.
        let mut infos: Vec<FileInfo> = Vec::with_capacity(files.len());
        let mut defs: Vec<FnDef> = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            let masked = mask(&f.source);
            let lines: Vec<&str> = masked.text.lines().collect();
            let in_test = test_lines(&lines);
            extract_defs(fi, &lines, &in_test, &mut defs);
            infos.push(FileInfo {
                masked: masked.text,
                in_test,
                waivers: masked.waivers,
            });
        }

        // Resolution maps over non-test definitions.
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_type: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        for (di, d) in defs.iter().enumerate() {
            if d.in_test {
                continue;
            }
            by_name.entry(&d.name).or_default().push(di);
            if let Some(ty) = &d.impl_type {
                by_type.entry((ty.as_str(), &d.name)).or_default().push(di);
            }
        }

        // Innermost enclosing function per line, per file.
        let mut fn_of_line: Vec<Vec<Option<usize>>> = infos
            .iter()
            .map(|info| vec![None; info.masked.lines().count()])
            .collect();
        for (di, d) in defs.iter().enumerate() {
            // Definitions are pushed outer-before-inner, so later
            // (inner) entries override within their narrower range.
            for slot in &mut fn_of_line[d.file][d.start - 1..d.end] {
                *slot = Some(di);
            }
        }

        // Pass 2: per-fn call lists.
        let mut calls: Vec<Vec<Call>> = (0..defs.len()).map(|_| Vec::new()).collect();
        for (fi, info) in infos.iter().enumerate() {
            for (idx, line) in info.masked.lines().enumerate() {
                if info.in_test[idx] {
                    continue;
                }
                let Some(di) = fn_of_line[fi][idx] else {
                    continue;
                };
                if defs[di].in_test {
                    continue;
                }
                collect_calls(line, &mut calls[di]);
            }
        }

        // Resolve calls into edges, in call-site order.
        let edges: Vec<Vec<usize>> = calls
            .iter()
            .enumerate()
            .map(|(di, fn_calls)| {
                let mut out = Vec::new();
                for call in fn_calls {
                    let targets: &[usize] = match call {
                        Call::Name(name) => by_name.get(name.as_str()).map_or(&[], Vec::as_slice),
                        Call::Qualified(q, name) => {
                            let ty = if q == "Self" {
                                defs[di].impl_type.as_deref()
                            } else {
                                Some(q.as_str())
                            };
                            match ty.and_then(|t| by_type.get(&(t, name.as_str()))) {
                                Some(ids) => ids.as_slice(),
                                // Capitalized qualifiers are type
                                // paths; when the type is foreign
                                // (Vec, String, ...) there is no
                                // workspace edge. Lowercase qualifiers
                                // are module paths — resolve by name.
                                None if q.chars().next().is_some_and(char::is_uppercase) => &[],
                                None => by_name.get(name.as_str()).map_or(&[], Vec::as_slice),
                            }
                        }
                    };
                    out.extend_from_slice(targets);
                }
                out
            })
            .collect();

        CallGraph {
            infos,
            defs,
            fn_of_line,
            edges,
        }
    }

    /// BFS forward from `roots`, recording which root first reached
    /// each definition (root provenance). Roots map to themselves.
    pub fn forward_reach(&self, roots: &[usize]) -> HashMap<usize, usize> {
        let mut reach: HashMap<usize, usize> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            reach.entry(r).or_insert(r);
            queue.push_back(r);
        }
        while let Some(di) = queue.pop_front() {
            let root = reach[&di];
            for &t in &self.edges[di] {
                if let std::collections::hash_map::Entry::Vacant(e) = reach.entry(t) {
                    e.insert(root);
                    queue.push_back(t);
                }
            }
        }
        reach
    }

    /// BFS backward from `seeds` over reversed edges, recording which
    /// seed (sink) each definition first reached. Seeds map to
    /// themselves. Used by `determinism` to find every function whose
    /// output can flow into a sink.
    pub fn reverse_reach(&self, seeds: &[usize]) -> HashMap<usize, usize> {
        let mut reverse: Vec<Vec<usize>> = (0..self.defs.len()).map(|_| Vec::new()).collect();
        for (di, targets) in self.edges.iter().enumerate() {
            for &t in targets {
                reverse[t].push(di);
            }
        }
        let mut reach: HashMap<usize, usize> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &s in seeds {
            reach.entry(s).or_insert(s);
            queue.push_back(s);
        }
        while let Some(di) = queue.pop_front() {
            let sink = reach[&di];
            for &caller in &reverse[di] {
                if let std::collections::hash_map::Entry::Vacant(e) = reach.entry(caller) {
                    e.insert(sink);
                    queue.push_back(caller);
                }
            }
        }
        reach
    }
}

/// Lines whose trailing arguments only evaluate on failure (assert /
/// panic family) or behind the trace-level guard (obs event macros
/// expand to `if enabled(level) { ... }`) — work there is off the
/// fast path and never part of persisted output.
pub(crate) const COLD_LINE_PREFIXES: [&str; 11] = [
    "assert!",
    "assert_eq!",
    "assert_ne!",
    "debug_assert",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "event!(",
    "event_kv!(",
    "tdess_obs::event",
];

/// Substring match that, when the pattern starts with an identifier
/// character, requires a non-identifier character (or line start)
/// before it — `connect(` must not match inside `is_disconnect(`.
pub(crate) fn has_pattern(line: &str, pat: &str) -> bool {
    let ident_start = pat
        .as_bytes()
        .first()
        .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_');
    let mut start = 0;
    while let Some(pos) = line[start..].find(pat) {
        let abs = start + pos;
        if !ident_start
            || !line[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            return true;
        }
        start = abs + 1;
    }
    false
}

/// Extracts function definitions (with enclosing `impl` type and line
/// ranges) from one file's masked lines.
fn extract_defs(file: usize, lines: &[&str], in_test: &[bool], defs: &mut Vec<FnDef>) {
    let mut depth = 0usize;
    // (type name, block depth)
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    let mut pending_impl: Option<String> = None;
    // (name, header line)
    let mut pending_fn: Option<(String, usize)> = None;
    // (defs index, body depth)
    let mut open_fns: Vec<(usize, usize)> = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        if pending_impl.is_none() && pending_fn.is_none() {
            if let Some(ty) = impl_header(line) {
                pending_impl = Some(ty);
            }
        }
        if pending_fn.is_none() {
            if let Some(name) = fn_header(line) {
                pending_fn = Some((name, lineno));
            }
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    // On `impl Foo { fn bar() {` the first brace
                    // belongs to the impl, the second to the fn.
                    if let Some(ty) = pending_impl.take() {
                        impl_stack.push((ty, depth));
                    } else if let Some((name, start)) = pending_fn.take() {
                        let impl_type = impl_stack.last().map(|(t, _)| t.clone());
                        defs.push(FnDef {
                            file,
                            name,
                            impl_type,
                            start,
                            end: start,
                            in_test: in_test[start - 1],
                        });
                        open_fns.push((defs.len() - 1, depth));
                    }
                }
                '}' => {
                    if let Some(&(di, d)) = open_fns.last() {
                        if d == depth {
                            defs[di].end = lineno;
                            open_fns.pop();
                        }
                    }
                    if impl_stack.last().is_some_and(|&(_, d)| d == depth) {
                        impl_stack.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                // A `;` before the body brace is a bodyless
                // declaration (trait method signature).
                ';' => pending_fn = None,
                _ => {}
            }
        }
    }
    // Unclosed trailing fns (truncated file) keep end == start.
    for (di, _) in open_fns {
        defs[di].end = lines.len().max(defs[di].start);
    }
}

/// The function name when `line` opens a definition (`fn name...`).
fn fn_header(line: &str) -> Option<String> {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find("fn") {
        let abs = start + pos;
        let prev_ok = abs == 0
            || !{
                let c = bytes[abs - 1];
                c.is_ascii_alphanumeric() || c == b'_'
            };
        let after = abs + 2;
        let next_ws = bytes.get(after).is_some_and(u8::is_ascii_whitespace);
        if prev_ok && next_ws {
            let name: String = line[after..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
        start = after;
    }
    None
}

/// The implemented type's name when `line` opens an `impl` block
/// (`impl Foo`, `impl<T> Foo<T>`, `impl Trait for Foo`).
fn impl_header(line: &str) -> Option<String> {
    let t = line.trim_start();
    let rest = t.strip_prefix("impl")?;
    let rest = if let Some(r) = rest.strip_prefix('<') {
        // Skip the generic parameter list.
        let mut depth = 1usize;
        let mut cut = r.len();
        for (i, c) in r.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        &r[cut..]
    } else if rest.starts_with(char::is_whitespace) {
        rest
    } else {
        return None;
    };
    let rest = rest.trim_start();
    let target = match rest.find(" for ") {
        Some(pos) => rest[pos + 5..].trim_start(),
        None => rest,
    };
    // Strip leading `&`/`mut` (impl for references is rare but legal).
    let target = target.trim_start_matches(['&', ' ']);
    let name: String = target
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Appends the call sites found on one masked line.
fn collect_calls(line: &str, out: &mut Vec<Call>) {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if !(b.is_ascii_alphabetic() || b == b'_') {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        // Numeric-literal suffix (`100usize`).
        if start > 0 && bytes[start - 1].is_ascii_digit() {
            continue;
        }
        // Macros are not function edges.
        if bytes.get(i) == Some(&b'!') {
            continue;
        }
        let name = &line[start..i];
        // Skip a turbofish between name and argument list.
        let mut j = i;
        if line[j..].starts_with("::<") {
            let mut depth = 0usize;
            let mut k = j + 2;
            while k < bytes.len() {
                match bytes[k] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k;
        }
        if bytes.get(j) != Some(&b'(') {
            continue;
        }
        let before = line[..start].trim_end();
        // The name in `fn name(` is a definition, not a call.
        if before.ends_with("fn")
            && !before[..before.len() - 2].ends_with(|c: char| c.is_alphanumeric() || c == '_')
        {
            continue;
        }
        if let Some(path) = before.strip_suffix("::") {
            let qual: String = path
                .chars()
                .rev()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            if !qual.is_empty() {
                out.push(Call::Qualified(qual, name.to_string()));
                continue;
            }
        }
        out.push(Call::Name(name.to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let files: Vec<SourceFile> = files
            .iter()
            .map(|(rel, src)| SourceFile {
                rel: rel.to_string(),
                source: src.to_string(),
                eligible: true,
            })
            .collect();
        CallGraph::build(&files)
    }

    fn def_index(g: &CallGraph, name: &str) -> usize {
        g.defs
            .iter()
            .position(|d| d.name == name)
            .unwrap_or_else(|| panic!("no def named {name}"))
    }

    #[test]
    fn reverse_reach_walks_callers_with_sink_provenance() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "\
pub fn entry() {
    middle();
}
fn middle() {
    sink();
}
fn sink() {}
fn unrelated() {}
",
        )]);
        let sink = def_index(&g, "sink");
        let reach = g.reverse_reach(&[sink]);
        assert_eq!(reach.get(&def_index(&g, "entry")), Some(&sink));
        assert_eq!(reach.get(&def_index(&g, "middle")), Some(&sink));
        assert_eq!(reach.get(&sink), Some(&sink));
        assert!(!reach.contains_key(&def_index(&g, "unrelated")));
    }

    #[test]
    fn forward_reach_maps_roots_to_themselves() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "\
pub fn root() {
    callee();
}
fn callee() {}
",
        )]);
        let root = def_index(&g, "root");
        let reach = g.forward_reach(&[root]);
        assert_eq!(reach.get(&root), Some(&root));
        assert_eq!(reach.get(&def_index(&g, "callee")), Some(&root));
    }

    #[test]
    fn test_defs_stay_out_of_the_graph() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "\
pub fn entry() {
    sink();
}
fn sink() {}
#[cfg(test)]
mod tests {
    fn test_only() {
        sink();
    }
}
",
        )]);
        let sink = def_index(&g, "sink");
        let reach = g.reverse_reach(&[sink]);
        let test_only = def_index(&g, "test_only");
        assert!(!reach.contains_key(&test_only));
    }
}
