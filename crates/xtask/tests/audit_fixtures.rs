//! Integration tests for `cargo xtask audit` and `cargo xtask
//! waivers`: run over the fixture trees as library calls and through
//! the built binary, covering every rule family, waiver parsing,
//! `--json`, and `--changed`.

use std::path::PathBuf;
use std::process::Command;

use xtask::audit::{RULE_LOCK, RULE_ORDERING, RULE_THREAD, RULE_WIRE};
use xtask::{audit_root, waiver_inventory};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn positive_fixture_trips_every_rule_family() {
    let report = audit_root(&fixture("audit-positive"), None).unwrap();
    let rules: Vec<&str> = report.unwaived().map(|f| f.rule).collect();
    for rule in [RULE_LOCK, RULE_ORDERING, RULE_THREAD, RULE_WIRE] {
        assert!(rules.contains(&rule), "rule {rule} did not fire: {rules:?}");
    }
    assert_eq!(report.waived_count(), 0);
    // Both allocation forms in the net fixture fire: vec![_; n] and
    // .reserve(n).
    assert_eq!(
        report.unwaived().filter(|f| f.rule == RULE_WIRE).count(),
        2,
        "{:?}",
        report.findings
    );
    // The SeqCst store and the Relaxed load each produce a finding.
    assert_eq!(
        report
            .unwaived()
            .filter(|f| f.rule == RULE_ORDERING)
            .count(),
        2
    );
}

#[test]
fn negative_fixture_is_clean_with_waivers_counted() {
    let report = audit_root(&fixture("audit-negative"), None).unwrap();
    assert_eq!(
        report.unwaived_count(),
        0,
        "unexpected findings: {:?}",
        report.unwaived().collect::<Vec<_>>()
    );
    // One waived detach spawn + one ordering() shorthand waiver.
    assert_eq!(report.waived_count(), 2);
    for f in &report.findings {
        let reason = f.waiver.as_deref().unwrap_or("");
        assert!(!reason.is_empty(), "waiver without a reason: {f:?}");
    }
}

#[test]
fn binary_exits_nonzero_on_positive_and_zero_on_negative() {
    let bin = env!("CARGO_BIN_EXE_xtask");

    let out = Command::new(bin)
        .args(["audit", "--root"])
        .arg(fixture("audit-positive"))
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(RULE_WIRE), "stdout: {text}");
    assert!(text.contains(RULE_LOCK), "stdout: {text}");

    let out = Command::new(bin)
        .args(["audit", "--json", "--root"])
        .arg(fixture("audit-negative"))
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(0));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"unwaived\": 0"), "json: {json}");
    assert!(json.contains("\"waived\": 2"), "json: {json}");
    assert!(json.contains("\"waiver_reason\""), "json: {json}");
}

#[test]
fn malformed_waivers_fail_the_inventory() {
    let inv = waiver_inventory(&fixture("malformed"), None).unwrap();
    assert_eq!(inv.malformed.len(), 1, "{:?}", inv.malformed);
    assert!(inv.malformed[0].1.problem.contains("reason"));

    let bin = env!("CARGO_BIN_EXE_xtask");
    let out = Command::new(bin)
        .args(["waivers", "--json", "--root"])
        .arg(fixture("malformed"))
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"malformed\": 1"), "json: {json}");
    assert!(json.contains("\"unknown_rule\": 1"), "json: {json}");
    assert!(
        json.contains("waiver without a written reason"),
        "json: {json}"
    );
}

#[test]
fn waivers_inventory_is_clean_on_negative_fixture() {
    let bin = env!("CARGO_BIN_EXE_xtask");
    let out = Command::new(bin)
        .args(["waivers", "--json", "--root"])
        .arg(fixture("audit-negative"))
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(0));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"malformed\": 0"), "json: {json}");
    assert!(
        json.contains("\"rule\": \"thread-hygiene\""),
        "json: {json}"
    );
    // The ordering() shorthand surfaces as an atomic-ordering waiver.
    assert!(
        json.contains("\"rule\": \"atomic-ordering\""),
        "json: {json}"
    );
    // Both waivers cover live findings.
    assert!(json.contains("\"status\": \"active\""), "json: {json}");
    assert!(!json.contains("\"status\": \"stale\""), "json: {json}");
}

/// `--changed` scans only files differing from the merge-base (or the
/// working tree vs HEAD when no `main` ref exists, as in this temp
/// repo).
#[test]
fn changed_mode_scans_only_modified_files() {
    let bin = env!("CARGO_BIN_EXE_xtask");
    let dir = std::env::temp_dir().join(format!("tdess_xtask_changed_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let src_a = dir.join("crates/a/src");
    let src_b = dir.join("crates/b/src");
    std::fs::create_dir_all(&src_a).unwrap();
    std::fs::create_dir_all(&src_b).unwrap();
    // File A carries a committed violation; file B starts clean.
    std::fs::write(
        src_a.join("lib.rs"),
        "pub fn f(n: &AtomicU64) -> u64 { n.load(Ordering::Relaxed) }\n",
    )
    .unwrap();
    std::fs::write(src_b.join("lib.rs"), "pub fn ok() {}\n").unwrap();

    let git = |args: &[&str]| {
        let out = Command::new("git")
            .arg("-C")
            .arg(&dir)
            .args([
                "-c",
                "user.name=fixture",
                "-c",
                "user.email=fixture@example.invalid",
            ])
            .args(args)
            .output()
            .expect("run git");
        assert!(
            out.status.success(),
            "git {args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    git(&["init", "-q"]);
    git(&["add", "."]);
    git(&["commit", "-q", "-m", "seed"]);

    // Uncommitted edit: B gains an audit violation (but stays clean
    // for lint — crate root declares forbid(unsafe_code)); A is
    // untouched.
    std::fs::write(
        src_b.join("lib.rs"),
        "#![forbid(unsafe_code)]\npub fn bad(f: &AtomicBool) { f.store(true, Ordering::SeqCst); }\n",
    )
    .unwrap();

    let full = Command::new(bin)
        .args(["audit", "--json", "--root"])
        .arg(&dir)
        .output()
        .expect("run xtask");
    let full_json = String::from_utf8_lossy(&full.stdout);
    assert!(full_json.contains("\"unwaived\": 2"), "json: {full_json}");

    let changed = Command::new(bin)
        .args(["audit", "--json", "--changed", "--root"])
        .arg(&dir)
        .output()
        .expect("run xtask");
    let changed_json = String::from_utf8_lossy(&changed.stdout);
    assert_eq!(changed.status.code(), Some(1));
    assert!(
        changed_json.contains("\"unwaived\": 1"),
        "json: {changed_json}"
    );
    assert!(
        changed_json.contains("crates/b/src/lib.rs"),
        "{changed_json}"
    );
    assert!(
        !changed_json.contains("crates/a/src/lib.rs"),
        "{changed_json}"
    );

    // lint --changed takes the same path through the shared scanner.
    let lint_changed = Command::new(bin)
        .args(["lint", "--json", "--changed", "--root"])
        .arg(&dir)
        .output()
        .expect("run xtask");
    assert_eq!(lint_changed.status.code(), Some(0));
    let lint_json = String::from_utf8_lossy(&lint_changed.stdout);
    assert!(lint_json.contains("\"files_scanned\": 1"), "{lint_json}");

    let _ = std::fs::remove_dir_all(&dir);
}
