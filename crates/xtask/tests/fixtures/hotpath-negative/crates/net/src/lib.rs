//! Hotpath negative fixture — net crate: the dispatch root's two
//! unavoidable costs carry written waivers, so the tree is clean.

/// Root: the response envelope and the frame write are the request.
pub fn dispatch(req: Request, sock: &mut TcpStream) -> Response {
    let body = req.render();
    // hotpath: allow(hot-alloc) — the response envelope is the returned artifact
    let owned = body.to_string();
    // hotpath: allow(hot-block) — writing the reply frame is the request itself
    sock.write_all(owned.as_bytes());
    Response::ok(owned)
}
