//! Hotpath negative fixture — core crate: a hot stage that works in
//! caller-owned buffers, next to cold code that may allocate freely.

/// Root: allocation-free because it fills the caller's scratch.
pub fn voxelize_stage(mesh: &Mesh, scratch: &mut Scratch) -> u32 {
    let _stage = tdess_obs::StageTimer::start(tdess_obs::Stage::Voxelize);
    scratch.cells.clear();
    rasterize(mesh, scratch)
}

fn rasterize(mesh: &Mesh, scratch: &mut Scratch) -> u32 {
    let mut filled = 0;
    for tri in mesh.tris() {
        filled += scratch.mark(tri);
    }
    filled
}

/// Cold setup code, unreachable from any stage root: allocation here
/// is none of hotpath's business.
pub fn build_scratch(capacity_hint: usize) -> Scratch {
    Scratch {
        cells: Vec::with_capacity(capacity_hint.min(1 << 20)),
        names: vec![String::new()],
    }
}
