//! Fixture for `cargo xtask waivers`: waiver-shaped comments that must
//! fail the inventory — one without a reason, one naming a rule that
//! does not exist.

pub fn f(n: &AtomicU64) -> u64 {
    n.load(Ordering::Relaxed) // audit: allow(atomic-ordering)
}

pub fn g(x: Option<u8>) -> u8 {
    x.unwrap() // lint: allow(unwraps) — rule name is a typo, can never match
}
