//! Determinism negative fixture — core crate: disciplined
//! reproducibility (sorted views before persisting, seeded RNG) next
//! to two justified waivers, so the tree is clean.

use std::collections::HashMap;

/// Persist sink for the fixture.
fn persist(rows: &[String]) {
    std::fs::write("manifest.txt", rows.join("\n")).ok();
}

/// Collects and sorts before anything escapes: no finding.
pub fn export_sorted(counts: &HashMap<String, u32>) {
    let mut rows: Vec<String> = counts.iter().map(|(k, v)| format!("{k}={v}")).collect();
    rows.sort();
    persist(&rows);
}

/// Seeded RNG is the reproducible way in: no finding.
pub fn sample_rows(rows: &mut Vec<String>) {
    let mut rng = StdRng::seed_from_u64(2004);
    rows.shuffle(&mut rng);
}

/// The manifest records how long the build took, by design.
pub fn persist_with_duration(rows: &mut Vec<String>) {
    // determinism: allow(time-taint) — the build-seconds field is informational; the bit-exactness gate masks it before diffing
    let t0 = std::time::Instant::now();
    rows.push(format!("build_secs={}", t0.elapsed().as_secs()));
    persist(rows);
}

/// Integer-valued part masses: the sum is exact in f64, so worker
/// merge order cannot change it.
pub fn total_mass(parts: &[f64]) -> f64 {
    // determinism: allow(float-reduction) — every part mass is an integer count scaled by 1.0, so the f64 sum is exact and order-free
    parts.par_iter().sum::<f64>()
}
