// Positive fixture: NaN-unsafe comparator (float-cmp rule).

#![forbid(unsafe_code)]

pub fn sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
