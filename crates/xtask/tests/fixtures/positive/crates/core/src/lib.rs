// Positive fixture: `.unwrap()` / `panic!` in non-test library code of
// a panic-free crate (unwrap rule).

#![forbid(unsafe_code)]

pub fn first(v: &[i32]) -> i32 {
    *v.first().unwrap()
}

pub fn boom() {
    panic!("nope");
}
