// Positive fixture: missing `#![forbid(unsafe_code)]` (forbid-unsafe)
// and a lossy float → int cast in a cast-audited crate (lossy-cast).

pub fn bucket(x: f64) -> usize {
    x.floor() as usize
}
