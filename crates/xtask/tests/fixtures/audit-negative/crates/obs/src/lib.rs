//! Audit negative fixture: waived detach spawn and a justified
//! Relaxed ordering (via the `ordering(...)` shorthand).

pub fn start_monitor() {
    std::thread::spawn(monitor); // audit: allow(thread-hygiene) — monitor is detached by design and exits with the process
}

pub fn record(n: &AtomicU64) {
    n.fetch_add(1, Ordering::Relaxed); // audit: ordering(pure event counter; nothing else is published)
}
