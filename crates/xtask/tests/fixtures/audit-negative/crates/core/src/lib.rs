//! Audit negative fixture: scoped spawns auto-join (exempt from
//! thread-hygiene) and Acquire/Release orderings pass without waivers.

pub fn fan_out(n: usize) {
    crossbeam::scope(|scope| {
        for _ in 0..n {
            scope.spawn(|_| work());
        }
    });
}

pub fn publish(flag: &AtomicBool) {
    flag.store(true, Ordering::Release);
}

pub fn observe(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Acquire)
}
