//! Audit negative fixture: the same shapes as the positive tree, done
//! correctly — capped wire allocation, guard dropped before I/O, and a
//! spawned thread joined on shutdown.

const MAX_PAYLOAD: usize = 1 << 20;

pub fn decode_frame(len: usize) -> Result<Vec<u8>, ()> {
    if len > MAX_PAYLOAD {
        return Err(());
    }
    Ok(vec![0u8; len])
}

pub fn reply(m: &std::sync::Mutex<u32>, stream: &mut std::net::TcpStream) {
    let guard = m.lock();
    let n = *guard;
    drop(guard);
    stream.write_all(&n.to_le_bytes());
}

pub fn run_worker() {
    let handle = std::thread::spawn(work);
    let _ = handle.join();
}
