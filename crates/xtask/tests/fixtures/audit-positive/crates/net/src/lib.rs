//! Audit positive fixture: wire-alloc and lock-discipline violations.
//! Scanned by the audit tests, never compiled.

pub fn decode_frame(len: usize) -> Vec<u8> {
    // Size comes straight from the wire with no cap check.
    vec![0u8; len]
}

pub fn reserve_payload(out: &mut Vec<u8>, declared: usize) {
    out.reserve(declared);
}

pub fn reply(m: &std::sync::Mutex<u32>, stream: &mut std::net::TcpStream) {
    let guard = m.lock();
    stream.write_all(b"hello");
    drop(guard);
}
