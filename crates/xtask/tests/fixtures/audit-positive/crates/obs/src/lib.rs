//! Audit positive fixture: thread-hygiene violation — a spawn whose
//! handle is never joined anywhere in the file.

pub fn start_background() {
    std::thread::spawn(|| loop {
        tick();
    });
}
