//! Audit positive fixture: atomic-ordering violations — an
//! unjustified Relaxed and an over-synchronized SeqCst.

pub fn publish(flag: &AtomicBool, n: &AtomicU64) -> u64 {
    flag.store(true, Ordering::SeqCst);
    n.load(Ordering::Relaxed)
}
