//! Determinism positive fixture — net crate: the persist sink the
//! core crate's sources are taint-tracked toward.

/// Persist sink: the index bytes land on disk, so everything that can
/// reach this function is in scope for the flow rules.
pub fn save_index(lines: &[String]) {
    let joined = lines.join("\n");
    std::fs::write("index.txt", joined).ok();
}
