//! Determinism positive fixture — core crate: every nondeterminism
//! source the pass knows, feeding the cross-crate persist sink, plus
//! unreachable and test-only code that must stay silent.

use std::collections::HashMap;

/// Reaches the persist sink cross-crate while iterating hash order:
/// `unordered-iter` fires with `save_index` provenance.
pub fn export_index(counts: &HashMap<String, u32>) {
    let mut out = Vec::new();
    for (name, n) in counts {
        out.push(format!("{name}={n}"));
    }
    save_index(&out);
}

/// Stamps the wall clock into the persisted artifact: `time-taint`.
pub fn stamp_header(out: &mut Vec<String>) {
    let built_at = std::time::SystemTime::now();
    out.push(format!("built_at={built_at:?}"));
    save_index(out);
}

/// Ambient entropy, no seed: `rng-discipline` fires even though
/// nothing here reaches a sink — it is a site rule.
pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

/// Parallel float accumulation: `float-reduction`.
pub fn mean_energy(vals: &[f64]) -> f64 {
    let total: f64 = vals.par_iter().sum::<f64>();
    total / vals.len() as f64
}

/// Pointer identity as a key: `addr-hash`.
pub fn identity_key(buf: &[u8]) -> usize {
    buf.as_ptr() as usize
}

/// Iterates hash order but reaches no sink: the flow rule stays quiet.
pub fn count_only(counts: &HashMap<String, u32>) -> usize {
    counts.values().map(|n| *n as usize).sum()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_rng_is_invisible_to_determinism() {
        let mut rng = rand::thread_rng();
        let _: u64 = rng.gen();
    }
}
