// Negative fixture: everything the lint checks is either clean, waived
// with a reason, or inside test code.

#![forbid(unsafe_code)]

pub fn sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.total_cmp(b));
}

pub fn first(v: &[i32]) -> i32 {
    // lint: allow(unwrap) — callers guarantee a non-empty slice
    *v.first().unwrap()
}

pub fn bucket(x: f64) -> usize {
    // lint: allow(lossy-cast) — x is finite and clamped non-negative
    x.floor().max(0.0) as usize
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
