//! Hotpath positive fixture — core crate: a stage-timer root whose
//! callees allocate, plus unreachable and test-only code that must
//! stay silent.

/// Root: starts a stage timer, so everything it reaches is hot.
pub fn extract_stage(mesh: &Mesh) -> Features {
    let _stage = tdess_obs::StageTimer::start(tdess_obs::Stage::Voxelize);
    let buf = helper();
    Worker::run(&buf)
}

/// Reached by a plain name call from the root.
fn helper() -> Vec<u8> {
    let out = Vec::new();
    out
}

pub struct Worker;

impl Worker {
    /// Reached by a qualified call resolved against this impl block.
    pub fn run(buf: &[u8]) -> Features {
        let label = format!("{} bytes", buf.len());
        cross(&label)
    }
}

/// Never called from any root: its allocation must not be reported.
pub fn cold_utility() -> Vec<u32> {
    vec![1, 2, 3]
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_invisible_to_hotpath() {
        let v: Vec<u8> = Vec::new();
        let s = format!("{}", v.len());
        assert!(s.is_empty() || !s.is_empty());
    }
}
