//! Hotpath positive fixture — net crate: the dispatch root blocks and
//! sizes a buffer from the wire, and a helper is reached cross-crate
//! from the core root.

/// Root by name and location: request dispatch in `crates/net/src/`.
pub fn dispatch(req: Request, sock: &mut TcpStream) -> Response {
    let payload_len = req.len;
    let mut frame = Vec::with_capacity(payload_len);
    encode(&req, &mut frame);
    sock.write_all(&frame);
    // Calls into the pipeline are the hot path itself, not a detour:
    // audit's blocking table entry for them must not fire here.
    let features = req.extractor.extract(&req.mesh);
    Response::from(features)
}

/// Reached from `core::Worker::run` by a cross-crate name call.
pub fn cross(label: &str) -> Features {
    let owned = label.to_string();
    Features::tagged(owned)
}

fn encode(_req: &Request, _frame: &mut [u8]) {}
