//! Integration tests: run the lint over the fixture trees (as a
//! library call and through the built binary) and check that every
//! rule fires on the positive fixture and stays quiet on the negative
//! one.

use std::path::PathBuf;
use std::process::Command;

use xtask::lint_root;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn positive_fixture_trips_every_rule() {
    let report = lint_root(&fixture("positive"), None).unwrap();
    let rules: Vec<&str> = report.unwaived().map(|f| f.rule).collect();
    for rule in ["unwrap", "float-cmp", "forbid-unsafe", "lossy-cast"] {
        assert!(rules.contains(&rule), "rule {rule} did not fire: {rules:?}");
    }
    assert_eq!(report.waived_count(), 0);
    // The float-cmp line must not double-report as unwrap.
    let index_findings: Vec<_> = report
        .unwaived()
        .filter(|f| f.file.contains("index"))
        .collect();
    assert_eq!(index_findings.len(), 1, "{index_findings:?}");
    assert_eq!(index_findings[0].rule, "float-cmp");
}

#[test]
fn negative_fixture_is_clean_with_waivers_counted() {
    let report = lint_root(&fixture("negative"), None).unwrap();
    assert_eq!(
        report.unwaived_count(),
        0,
        "unexpected findings: {:?}",
        report.unwaived().collect::<Vec<_>>()
    );
    // One waived unwrap + one waived cast, each with a written reason.
    assert_eq!(report.waived_count(), 2);
    for f in &report.findings {
        let reason = f.waiver.as_deref().unwrap_or("");
        assert!(!reason.is_empty(), "waiver without a reason: {f:?}");
    }
}

#[test]
fn binary_exits_nonzero_on_positive_and_zero_on_negative() {
    let bin = env!("CARGO_BIN_EXE_xtask");

    let out = Command::new(bin)
        .args(["lint", "--root"])
        .arg(fixture("positive"))
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("forbid-unsafe"), "stdout: {text}");

    let out = Command::new(bin)
        .args(["lint", "--json", "--root"])
        .arg(fixture("negative"))
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(0));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"unwaived\": 0"), "json: {json}");
    assert!(json.contains("\"waived\": 2"), "json: {json}");
    assert!(json.contains("\"waiver_reason\""), "json: {json}");
}
