//! Integration tests for `cargo xtask determinism`: fixture trees as
//! library calls and through the built binary, covering all five rule
//! families, cross-crate sink provenance, cfg(test) exclusion,
//! waivers, `--json`, and the full-graph/filtered-findings
//! `--changed` split.

use std::path::PathBuf;
use std::process::Command;

use xtask::determinism::{
    RULE_ADDR_HASH, RULE_FLOAT_REDUCTION, RULE_RNG_DISCIPLINE, RULE_TIME_TAINT, RULE_UNORDERED_ITER,
};
use xtask::determinism_root;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn positive_fixture_trips_every_rule_family_once() {
    let report = determinism_root(&fixture("determinism-positive"), None).unwrap();
    assert_eq!(report.waived_count(), 0);
    let rules: Vec<&str> = report.unwaived().map(|f| f.rule).collect();
    for rule in [
        RULE_UNORDERED_ITER,
        RULE_TIME_TAINT,
        RULE_RNG_DISCIPLINE,
        RULE_FLOAT_REDUCTION,
        RULE_ADDR_HASH,
    ] {
        assert_eq!(
            rules.iter().filter(|r| **r == rule).count(),
            1,
            "rule {rule}: {rules:?}"
        );
    }
    assert_eq!(report.unwaived_count(), 5);

    // Flow findings name the tainted fn and its cross-crate sink.
    let iter = report
        .unwaived()
        .find(|f| f.rule == RULE_UNORDERED_ITER)
        .unwrap();
    assert!(iter.message.contains("`export_index`"), "{}", iter.message);
    assert!(
        iter.message.contains("via `save_index`"),
        "{}",
        iter.message
    );
    assert!(
        iter.message.contains("persisted output"),
        "{}",
        iter.message
    );
    assert!(
        iter.message.contains("`for .. in counts`"),
        "{}",
        iter.message
    );
    let time = report
        .unwaived()
        .find(|f| f.rule == RULE_TIME_TAINT)
        .unwrap();
    assert!(time.message.contains("`stamp_header`"), "{}", time.message);
    assert!(
        time.message.contains("`SystemTime::now`"),
        "{}",
        time.message
    );

    // The sink-free iteration and the cfg(test) RNG stay silent.
    for f in &report.findings {
        assert!(!f.message.contains("count_only"), "{f:?}");
        assert!(!f.file.contains("net"), "the sink itself is clean: {f:?}");
    }
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == RULE_RNG_DISCIPLINE && f.line > 45),
        "cfg(test) rng leaked into findings"
    );
}

#[test]
fn negative_fixture_is_clean_with_waivers_counted() {
    let report = determinism_root(&fixture("determinism-negative"), None).unwrap();
    assert_eq!(
        report.unwaived_count(),
        0,
        "unexpected findings: {:?}",
        report.unwaived().collect::<Vec<_>>()
    );
    // The waived build-duration stamp and exact-sum parallel reduction.
    assert_eq!(report.waived_count(), 2);
    for f in &report.findings {
        let reason = f.waiver.as_deref().unwrap_or("");
        assert!(!reason.is_empty(), "waiver without a reason: {f:?}");
    }
}

#[test]
fn binary_exits_nonzero_on_positive_and_zero_on_negative() {
    let bin = env!("CARGO_BIN_EXE_xtask");

    let out = Command::new(bin)
        .args(["determinism", "--root"])
        .arg(fixture("determinism-positive"))
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in [
        RULE_UNORDERED_ITER,
        RULE_TIME_TAINT,
        RULE_RNG_DISCIPLINE,
        RULE_FLOAT_REDUCTION,
        RULE_ADDR_HASH,
    ] {
        assert!(text.contains(rule), "stdout missing {rule}: {text}");
    }

    let out = Command::new(bin)
        .args(["determinism", "--json", "--root"])
        .arg(fixture("determinism-negative"))
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(0));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"unwaived\": 0"), "json: {json}");
    assert!(json.contains("\"waived\": 2"), "json: {json}");
    assert!(json.contains("\"waiver_reason\""), "json: {json}");
}

#[test]
fn waivers_inventory_sees_determinism_waivers_as_active() {
    let bin = env!("CARGO_BIN_EXE_xtask");
    let out = Command::new(bin)
        .args(["waivers", "--json", "--root"])
        .arg(fixture("determinism-negative"))
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(0));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"tool\": \"determinism\""), "json: {json}");
    assert!(json.contains("\"rule\": \"time-taint\""), "json: {json}");
    assert!(
        json.contains("\"rule\": \"float-reduction\""),
        "json: {json}"
    );
    assert!(json.contains("\"status\": \"active\""), "json: {json}");
    assert!(!json.contains("\"status\": \"stale\""), "json: {json}");
    assert!(
        !json.contains("\"status\": \"unknown-rule\""),
        "json: {json}"
    );
}

/// `--changed` filters *findings* to modified files, but the call
/// graph still spans the whole tree: an unchanged sink keeps a changed
/// caller in taint scope.
#[test]
fn changed_mode_keeps_the_full_graph() {
    let bin = env!("CARGO_BIN_EXE_xtask");
    let dir =
        std::env::temp_dir().join(format!("tdess_determinism_changed_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let src_a = dir.join("crates/a/src");
    let src_b = dir.join("crates/b/src");
    std::fs::create_dir_all(&src_a).unwrap();
    std::fs::create_dir_all(&src_b).unwrap();
    // A holds the persist sink (with its own rng violation) and is
    // committed untouched; B holds the exporter, committed clean.
    std::fs::write(
        src_a.join("lib.rs"),
        "pub fn save(rows: &[String]) {\n    let _ = std::fs::write(\"out.txt\", rows.join(\"\\n\"));\n    let _rng = rand::thread_rng();\n}\n",
    )
    .unwrap();
    std::fs::write(
        src_b.join("lib.rs"),
        "pub fn export(m: &std::collections::HashMap<String, u32>) -> usize {\n    m.len()\n}\n",
    )
    .unwrap();

    let git = |args: &[&str]| {
        let out = Command::new("git")
            .arg("-C")
            .arg(&dir)
            .args([
                "-c",
                "user.name=fixture",
                "-c",
                "user.email=fixture@example.invalid",
            ])
            .args(args)
            .output()
            .expect("run git");
        assert!(
            out.status.success(),
            "git {args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    git(&["init", "-q"]);
    git(&["add", "."]);
    git(&["commit", "-q", "-m", "seed"]);

    // Uncommitted edit: the exporter in B starts feeding hash order
    // into the unchanged sink in A.
    std::fs::write(
        src_b.join("lib.rs"),
        "use std::collections::HashMap;\npub fn export(m: &HashMap<String, u32>) {\n    let rows: Vec<String> = m.keys().cloned().collect();\n    save(&rows);\n}\n",
    )
    .unwrap();

    let full = Command::new(bin)
        .args(["determinism", "--json", "--root"])
        .arg(&dir)
        .output()
        .expect("run xtask");
    let full_json = String::from_utf8_lossy(&full.stdout);
    // Full tree: A's thread_rng and B's hash-order export.
    assert!(full_json.contains("\"unwaived\": 2"), "json: {full_json}");

    let changed = Command::new(bin)
        .args(["determinism", "--json", "--changed", "--root"])
        .arg(&dir)
        .output()
        .expect("run xtask");
    assert_eq!(changed.status.code(), Some(1));
    let changed_json = String::from_utf8_lossy(&changed.stdout);
    // Only B changed, so only B's finding is reported — but it is
    // reported, which requires the unchanged sink in A to be in the
    // graph.
    assert!(
        changed_json.contains("\"unwaived\": 1"),
        "json: {changed_json}"
    );
    assert!(
        changed_json.contains("crates/b/src/lib.rs"),
        "{changed_json}"
    );
    assert!(
        !changed_json.contains("crates/a/src/lib.rs"),
        "{changed_json}"
    );
    assert!(changed_json.contains("unordered-iter"), "{changed_json}");
    assert!(
        changed_json.contains("\"files_scanned\": 1"),
        "{changed_json}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
