//! Integration tests for `cargo xtask hotpath`: fixture trees as
//! library calls and through the built binary, covering reachability
//! (cross-crate, qualified, method), cfg(test) exclusion, waivers,
//! `--json`, and the full-graph/filtered-findings `--changed` split.

use std::path::PathBuf;
use std::process::Command;

use xtask::hotpath::{RULE_HOT_ALLOC, RULE_HOT_BLOCK};
use xtask::hotpath_root;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn positive_fixture_flags_reachable_fns_only() {
    let report = hotpath_root(&fixture("hotpath-positive"), None).unwrap();
    assert_eq!(report.waived_count(), 0);

    let allocs: Vec<&str> = report
        .unwaived()
        .filter(|f| f.rule == RULE_HOT_ALLOC)
        .map(|f| f.message.as_str())
        .collect();
    // One finding per hot function: the free helper (name call), the
    // impl method (qualified call), the cross-crate callee, and the
    // net dispatch root's un-capped with_capacity.
    assert_eq!(allocs.len(), 4, "{allocs:?}");
    for name in ["`helper`", "`run`", "`cross`", "`dispatch`"] {
        assert!(
            allocs.iter().any(|m| m.contains(name)),
            "no hot-alloc finding for {name}: {allocs:?}"
        );
    }
    // Root provenance is part of the message.
    assert!(
        allocs
            .iter()
            .any(|m| m.contains("reachable from `extract_stage`")),
        "{allocs:?}"
    );

    let blocks: Vec<&str> = report
        .unwaived()
        .filter(|f| f.rule == RULE_HOT_BLOCK)
        .map(|f| f.message.as_str())
        .collect();
    // dispatch's write_all fires; its call into the pipeline
    // (`.extract(`) does not.
    assert_eq!(blocks.len(), 1, "{blocks:?}");
    assert!(blocks[0].contains("`dispatch`"), "{blocks:?}");
    assert!(blocks[0].contains("write_all"), "{blocks:?}");

    // The unreachable fn and the cfg(test) module stay silent.
    for f in &report.findings {
        assert!(!f.message.contains("cold_utility"), "{f:?}");
        assert!(!f.message.contains("test_code_is_invisible"), "{f:?}");
    }
}

#[test]
fn negative_fixture_is_clean_with_waivers_counted() {
    let report = hotpath_root(&fixture("hotpath-negative"), None).unwrap();
    assert_eq!(
        report.unwaived_count(),
        0,
        "unexpected findings: {:?}",
        report.unwaived().collect::<Vec<_>>()
    );
    // The waived response-envelope alloc and reply-frame write.
    assert_eq!(report.waived_count(), 2);
    for f in &report.findings {
        let reason = f.waiver.as_deref().unwrap_or("");
        assert!(!reason.is_empty(), "waiver without a reason: {f:?}");
    }
}

#[test]
fn binary_exits_nonzero_on_positive_and_zero_on_negative() {
    let bin = env!("CARGO_BIN_EXE_xtask");

    let out = Command::new(bin)
        .args(["hotpath", "--root"])
        .arg(fixture("hotpath-positive"))
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(RULE_HOT_ALLOC), "stdout: {text}");
    assert!(text.contains(RULE_HOT_BLOCK), "stdout: {text}");

    let out = Command::new(bin)
        .args(["hotpath", "--json", "--root"])
        .arg(fixture("hotpath-negative"))
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(0));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"unwaived\": 0"), "json: {json}");
    assert!(json.contains("\"waived\": 2"), "json: {json}");
    assert!(json.contains("\"waiver_reason\""), "json: {json}");
}

#[test]
fn waivers_inventory_sees_hotpath_waivers_as_active() {
    let bin = env!("CARGO_BIN_EXE_xtask");
    let out = Command::new(bin)
        .args(["waivers", "--json", "--root"])
        .arg(fixture("hotpath-negative"))
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(0));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"tool\": \"hotpath\""), "json: {json}");
    assert!(json.contains("\"rule\": \"hot-alloc\""), "json: {json}");
    assert!(json.contains("\"rule\": \"hot-block\""), "json: {json}");
    assert!(json.contains("\"status\": \"active\""), "json: {json}");
    assert!(!json.contains("\"status\": \"stale\""), "json: {json}");
}

/// `--changed` filters *findings* to modified files, but the call
/// graph still spans the whole tree: an unchanged root keeps a changed
/// callee hot.
#[test]
fn changed_mode_keeps_the_full_graph() {
    let bin = env!("CARGO_BIN_EXE_xtask");
    let dir = std::env::temp_dir().join(format!("tdess_hotpath_changed_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let src_a = dir.join("crates/a/src");
    let src_b = dir.join("crates/b/src");
    std::fs::create_dir_all(&src_a).unwrap();
    std::fs::create_dir_all(&src_b).unwrap();
    // A holds the stage root (with its own allocation) and is
    // committed untouched; B holds the callee, committed clean.
    std::fs::write(
        src_a.join("lib.rs"),
        "pub fn stage_root() {\n    let _t = StageTimer::start(Stage::Voxelize);\n    let v = vec![0u8; 4];\n    helper(&v);\n}\n",
    )
    .unwrap();
    std::fs::write(
        src_b.join("lib.rs"),
        "pub fn helper(v: &[u8]) -> usize {\n    v.len()\n}\n",
    )
    .unwrap();

    let git = |args: &[&str]| {
        let out = Command::new("git")
            .arg("-C")
            .arg(&dir)
            .args([
                "-c",
                "user.name=fixture",
                "-c",
                "user.email=fixture@example.invalid",
            ])
            .args(args)
            .output()
            .expect("run git");
        assert!(
            out.status.success(),
            "git {args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    git(&["init", "-q"]);
    git(&["add", "."]);
    git(&["commit", "-q", "-m", "seed"]);

    // Uncommitted edit: the callee in B starts allocating.
    std::fs::write(
        src_b.join("lib.rs"),
        "pub fn helper(v: &[u8]) -> Vec<u8> {\n    v.to_vec()\n}\n",
    )
    .unwrap();

    let full = Command::new(bin)
        .args(["hotpath", "--json", "--root"])
        .arg(&dir)
        .output()
        .expect("run xtask");
    let full_json = String::from_utf8_lossy(&full.stdout);
    // Full tree: the root's vec![] and the callee's to_vec().
    assert!(full_json.contains("\"unwaived\": 2"), "json: {full_json}");

    let changed = Command::new(bin)
        .args(["hotpath", "--json", "--changed", "--root"])
        .arg(&dir)
        .output()
        .expect("run xtask");
    assert_eq!(changed.status.code(), Some(1));
    let changed_json = String::from_utf8_lossy(&changed.stdout);
    // Only B changed, so only B's finding is reported — but it is
    // reported, which requires the unchanged root in A to be in the
    // graph.
    assert!(
        changed_json.contains("\"unwaived\": 1"),
        "json: {changed_json}"
    );
    assert!(
        changed_json.contains("crates/b/src/lib.rs"),
        "{changed_json}"
    );
    assert!(
        !changed_json.contains("crates/a/src/lib.rs"),
        "{changed_json}"
    );
    assert!(
        changed_json.contains("\"files_scanned\": 1"),
        "{changed_json}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
