//! Eigen-decomposition of real symmetric matrices via the cyclic
//! Jacobi method.
//!
//! Two entry points are provided:
//!
//! * [`sym3_eigen`] — specialized for the 3×3 moment/covariance matrices
//!   used during pose normalization and principal-moment extraction.
//! * [`sym_eigenvalues`] — a dense N×N symmetric solver used for the
//!   adjacency matrices of skeletal graphs.
//!
//! Jacobi iteration is slow for very large matrices but is simple,
//! numerically robust, and more than fast enough for the small, dense
//! matrices this system produces (N is the node count of a skeletal
//! graph, typically < 50).

use crate::mat3::Mat3;
use crate::vec3::Vec3;

/// Result of a 3×3 symmetric eigen-decomposition.
///
/// Eigenvalues are sorted in **descending** order, and `vectors.col(i)`
/// is the unit eigenvector for `values[i]`. The eigenvector basis is
/// chosen to form a proper rotation (`det = +1`).
#[derive(Debug, Clone, Copy)]
pub struct Eigen3 {
    /// Eigenvalues in descending order.
    pub values: Vec3,
    /// Matrix whose *columns* are the corresponding unit eigenvectors.
    pub vectors: Mat3,
}

/// Maximum Jacobi sweeps before giving up; convergence for small
/// matrices typically takes < 10 sweeps.
const MAX_SWEEPS: usize = 64;

/// Computes the eigen-decomposition of a symmetric 3×3 matrix.
///
/// The input is symmetrized as `(M + Mᵀ)/2` so tiny asymmetries from
/// floating-point accumulation do not matter.
pub fn sym3_eigen(m: &Mat3) -> Eigen3 {
    // Flatten to the generic solver and reassemble.
    let sym = [
        [
            m.get(0, 0),
            0.5 * (m.get(0, 1) + m.get(1, 0)),
            0.5 * (m.get(0, 2) + m.get(2, 0)),
        ],
        [
            0.5 * (m.get(0, 1) + m.get(1, 0)),
            m.get(1, 1),
            0.5 * (m.get(1, 2) + m.get(2, 1)),
        ],
        [
            0.5 * (m.get(0, 2) + m.get(2, 0)),
            0.5 * (m.get(1, 2) + m.get(2, 1)),
            m.get(2, 2),
        ],
    ];
    // hotpath: allow(hot-alloc) — three-element buffers for the 3x3 solve, dominated by the arithmetic
    let mut a = vec![vec![0.0; 3]; 3];
    for r in 0..3 {
        for c in 0..3 {
            a[r][c] = sym[r][c];
        }
    }
    let (vals, vecs) = jacobi(&mut a);
    // Sort descending by eigenvalue.
    let mut order = [0usize, 1, 2];
    order.sort_by(|&i, &j| vals[j].total_cmp(&vals[i]));
    let values = Vec3::new(vals[order[0]], vals[order[1]], vals[order[2]]);
    let mut cols = [Vec3::ZERO; 3];
    for (k, &oi) in order.iter().enumerate() {
        cols[k] = Vec3::new(vecs[0][oi], vecs[1][oi], vecs[2][oi]);
    }
    // Make the basis a proper rotation.
    let mut vectors = Mat3::from_cols(cols[0], cols[1], cols[2]);
    if vectors.det() < 0.0 {
        let c2 = -vectors.col(2);
        vectors = Mat3::from_cols(vectors.col(0), vectors.col(1), c2);
    }
    Eigen3 { values, vectors }
}

/// Computes the eigenvalues of a dense symmetric N×N matrix, sorted in
/// descending order.
///
/// The input is given as a flat row-major slice of length `n*n`; only
/// the symmetric part is used. Returns an empty vector for `n = 0`.
pub fn sym_eigenvalues(matrix: &[f64], n: usize) -> Vec<f64> {
    assert_eq!(matrix.len(), n * n, "matrix slice must be n*n");
    if n == 0 {
        // hotpath: allow(hot-alloc) — the eigenvalue list is the returned artifact
        return Vec::new();
    }
    let mut a = vec![vec![0.0; n]; n];
    for r in 0..n {
        for c in 0..n {
            a[r][c] = 0.5 * (matrix[r * n + c] + matrix[c * n + r]);
        }
    }
    let (mut vals, _) = jacobi(&mut a);
    vals.sort_by(|x, y| y.total_cmp(x));
    vals
}

/// Cyclic Jacobi eigen-decomposition of a symmetric matrix.
///
/// Destroys `a`; returns `(eigenvalues, eigenvectors)` where
/// `eigenvectors[r][c]` is component `r` of eigenvector `c` (unsorted).
#[allow(clippy::needless_range_loop)] // index loops mirror the matrix algebra
fn jacobi(a: &mut [Vec<f64>]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = a.len();
    // hotpath: allow(hot-alloc) — n-by-n work matrices are the solve's state
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    if n == 1 {
        return (vec![a[0][0]], v);
    }

    for _sweep in 0..MAX_SWEEPS {
        // Sum of absolute off-diagonal elements.
        let mut off = 0.0;
        for r in 0..n {
            for c in (r + 1)..n {
                off += a[r][c].abs();
            }
        }
        if off < 1e-14 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p][q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                let tau = s / (1.0 + c);

                let app = a[p][p];
                let aqq = a[q][q];
                a[p][p] = app - t * apq;
                a[q][q] = aqq + t * apq;
                a[p][q] = 0.0;
                a[q][p] = 0.0;
                for r in 0..n {
                    if r != p && r != q {
                        let arp = a[r][p];
                        let arq = a[r][q];
                        a[r][p] = arp - s * (arq + tau * arp);
                        a[p][r] = a[r][p];
                        a[r][q] = arq + s * (arp - tau * arq);
                        a[q][r] = a[r][q];
                    }
                }
                for row in v.iter_mut() {
                    let vp = row[p];
                    let vq = row[q];
                    row[p] = vp - s * (vq + tau * vp);
                    row[q] = vq + s * (vp - tau * vq);
                }
            }
        }
    }

    let vals = (0..n).map(|i| a[i][i]).collect();
    (vals, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_eigen3(m: &Mat3, eig: &Eigen3, eps: f64) {
        // A v = λ v for each column.
        for i in 0..3 {
            let v = eig.vectors.col(i);
            let av = *m * v;
            let lv = v * eig.values[i];
            assert!(
                av.approx_eq(lv, eps),
                "eigen pair {i} failed: Av={av:?}, λv={lv:?}"
            );
            assert!((v.norm() - 1.0).abs() < eps, "eigenvector {i} not unit");
        }
        // Descending order.
        assert!(eig.values.x >= eig.values.y - eps);
        assert!(eig.values.y >= eig.values.z - eps);
        // Proper rotation basis.
        assert!(eig.vectors.is_rotation(1e-9));
    }

    #[test]
    fn diagonal_matrix() {
        let m = Mat3::diagonal(Vec3::new(2.0, 5.0, 3.0));
        let e = sym3_eigen(&m);
        assert!(e.values.approx_eq(Vec3::new(5.0, 3.0, 2.0), 1e-12));
        check_eigen3(&m, &e, 1e-10);
    }

    #[test]
    fn known_symmetric_matrix() {
        // [[2,1,0],[1,2,0],[0,0,3]] has eigenvalues 3, 3, 1.
        let m = Mat3::from_rows(
            Vec3::new(2.0, 1.0, 0.0),
            Vec3::new(1.0, 2.0, 0.0),
            Vec3::new(0.0, 0.0, 3.0),
        );
        let e = sym3_eigen(&m);
        assert!((e.values.x - 3.0).abs() < 1e-10);
        assert!((e.values.y - 3.0).abs() < 1e-10);
        assert!((e.values.z - 1.0).abs() < 1e-10);
        check_eigen3(&m, &e, 1e-9);
    }

    #[test]
    fn rotated_diagonal_recovers_spectrum() {
        let d = Mat3::diagonal(Vec3::new(7.0, 4.0, 1.0));
        let r = Mat3::rotation_axis_angle(Vec3::new(1.0, 1.0, 0.3), 0.8);
        let m = r * d * r.transpose();
        let e = sym3_eigen(&m);
        assert!(e.values.approx_eq(Vec3::new(7.0, 4.0, 1.0), 1e-10));
        check_eigen3(&m, &e, 1e-9);
    }

    #[test]
    fn repeated_eigenvalues() {
        let m = Mat3::diagonal(Vec3::new(2.0, 2.0, 2.0));
        let e = sym3_eigen(&m);
        assert!(e.values.approx_eq(Vec3::splat(2.0), 1e-12));
        check_eigen3(&m, &e, 1e-10);
    }

    #[test]
    fn general_eigenvalues_small_graph() {
        // Path graph P3 adjacency: eigenvalues ±sqrt(2), 0.
        let a = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let vals = sym_eigenvalues(&a, 3);
        let s2 = 2f64.sqrt();
        assert!((vals[0] - s2).abs() < 1e-10);
        assert!(vals[1].abs() < 1e-10);
        assert!((vals[2] + s2).abs() < 1e-10);
    }

    #[test]
    fn general_eigenvalues_cycle_graph() {
        // Cycle C4 adjacency: eigenvalues 2, 0, 0, -2.
        let n = 4;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            let j = (i + 1) % n;
            a[i * n + j] = 1.0;
            a[j * n + i] = 1.0;
        }
        let vals = sym_eigenvalues(&a, n);
        assert!((vals[0] - 2.0).abs() < 1e-10);
        assert!(vals[1].abs() < 1e-10);
        assert!(vals[2].abs() < 1e-10);
        assert!((vals[3] + 2.0).abs() < 1e-10);
    }

    #[test]
    fn trace_is_preserved() {
        let n = 6;
        let mut a = vec![0.0; n * n];
        // Deterministic pseudo-random symmetric matrix.
        let mut seed = 42u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for r in 0..n {
            for c in r..n {
                let v = next();
                a[r * n + c] = v;
                a[c * n + r] = v;
            }
        }
        let trace: f64 = (0..n).map(|i| a[i * n + i]).sum();
        let vals = sym_eigenvalues(&a, n);
        let sum: f64 = vals.iter().sum();
        assert!(
            (trace - sum).abs() < 1e-9,
            "trace {trace} vs eigensum {sum}"
        );
    }

    #[test]
    fn empty_and_single() {
        assert!(sym_eigenvalues(&[], 0).is_empty());
        let vals = sym_eigenvalues(&[5.0], 1);
        assert_eq!(vals, vec![5.0]);
    }
}
