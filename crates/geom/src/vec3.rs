//! Three-component double-precision vector.
//!
//! `Vec3` is the workhorse value type of the geometry substrate. It is a
//! plain `Copy` struct with `f64` components and the usual arithmetic
//! operators, plus the handful of products and norms the moment and
//! voxelization code needs.

use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

use serde::{Deserialize, Serialize};

/// A 3-D vector (or point) with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The vector (1, 1, 1).
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };
    /// Unit X axis.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit Y axis.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit Z axis.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Returns the vector scaled to unit length, or `None` if its norm is
    /// too small to normalize reliably.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n > 1e-300 {
            Some(self / n)
        } else {
            None
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// The smallest component.
    #[inline]
    pub fn min_element(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// The largest component.
    #[inline]
    pub fn max_element(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Distance between two points.
    #[inline]
    pub fn distance(self, rhs: Vec3) -> f64 {
        (self - rhs).norm()
    }

    /// Squared distance between two points.
    #[inline]
    pub fn distance_sq(self, rhs: Vec3) -> f64 {
        (self - rhs).norm_sq()
    }

    /// Linear interpolation between `self` (t = 0) and `rhs` (t = 1).
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f64) -> Vec3 {
        self + (rhs - self) * t
    }

    /// Returns `true` if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Returns the components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Builds a vector from an array `[x, y, z]`.
    #[inline]
    pub fn from_array(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }

    /// Approximate equality with absolute tolerance `eps` per component.
    #[inline]
    pub fn approx_eq(self, rhs: Vec3, eps: f64) -> bool {
        (self.x - rhs.x).abs() <= eps
            && (self.y - rhs.y).abs() <= eps
            && (self.z - rhs.z).abs() <= eps
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            // lint: allow(unwrap) — Index contract: out-of-range is a caller bug, as with slices
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            // lint: allow(unwrap) — Index contract: out-of-range is a caller bug, as with slices
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a.dot(b), 32.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
        // Cross product is perpendicular to both inputs.
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn norms_and_normalization() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-15);
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn min_max_abs() {
        let a = Vec3::new(1.0, -5.0, 3.0);
        let b = Vec3::new(-2.0, 4.0, 3.5);
        assert_eq!(a.min(b), Vec3::new(-2.0, -5.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(1.0, 4.0, 3.5));
        assert_eq!(a.abs(), Vec3::new(1.0, 5.0, 3.0));
        assert_eq!(a.min_element(), -5.0);
        assert_eq!(a.max_element(), 3.0);
    }

    #[test]
    fn distance_and_lerp() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 0.0, 0.0);
        assert_eq!(a.distance(b), 2.0);
        assert_eq!(a.distance_sq(b), 4.0);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn indexing() {
        let mut v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
        v[1] = 10.0;
        assert_eq!(v.y, 10.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn array_roundtrip() {
        let v = Vec3::new(1.5, -2.5, 3.25);
        assert_eq!(Vec3::from_array(v.to_array()), v);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(1.0 + 1e-9, 1.0 - 1e-9, 1.0);
        assert!(a.approx_eq(b, 1e-8));
        assert!(!a.approx_eq(b, 1e-10));
    }
}
