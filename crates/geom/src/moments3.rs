//! Exact third-order volume moments of polyhedra.
//!
//! The paper's architecture (Fig. 1) lists "higher order invariants"
//! among the moment-based descriptors, and §3.5.3 notes that 4th–7th
//! order moments have been used elsewhere but are sensitive to noise.
//! This module supplies the exact third-order moments `m_lmn`
//! (`l+m+n = 3`) of a watertight mesh, using the closed-form cubic
//! integrals over the signed tetrahedra `(O, a, b, c)`:
//!
//! `∫ f g h dV = V/120 · [ S_f S_g S_h
//!                        + Σₘ (fₘgₘS_h + fₘhₘS_g + gₘhₘS_f)
//!                        + 2 Σₘ fₘgₘhₘ ]`
//!
//! for linear functions `f, g, h` with vertex values `fₘ` and vertex
//! sums `S_f` (the origin vertex contributes zero).

use serde::{Deserialize, Serialize};

use crate::mesh::TriMesh;
use crate::moments::mesh_moments;
use crate::vec3::Vec3;

/// The ten third-order moments of a solid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ThirdMoments {
    /// m300 = ∭ x³ dV
    pub m300: f64,
    /// m030 = ∭ y³ dV
    pub m030: f64,
    /// m003 = ∭ z³ dV
    pub m003: f64,
    /// m210 = ∭ x²y dV
    pub m210: f64,
    /// m201 = ∭ x²z dV
    pub m201: f64,
    /// m120 = ∭ xy² dV
    pub m120: f64,
    /// m021 = ∭ y²z dV
    pub m021: f64,
    /// m102 = ∭ xz² dV
    pub m102: f64,
    /// m012 = ∭ yz² dV
    pub m012: f64,
    /// m111 = ∭ xyz dV
    pub m111: f64,
}

impl ThirdMoments {
    /// The moments as a fixed-order array
    /// `[m300, m030, m003, m210, m201, m120, m021, m102, m012, m111]`.
    pub fn to_array(&self) -> [f64; 10] {
        [
            self.m300, self.m030, self.m003, self.m210, self.m201, self.m120, self.m021, self.m102,
            self.m012, self.m111,
        ]
    }

    /// Transforms under uniform scaling of the solid:
    /// `m_lmn → s^(l+m+n+3) m_lmn = s⁶ m_lmn`.
    pub fn scaled(&self, s: f64) -> ThirdMoments {
        let k = s.powi(6);
        let a = self.to_array().map(|v| v * k);
        ThirdMoments::from_array(a)
    }

    /// Builds from the fixed-order array (inverse of
    /// [`ThirdMoments::to_array`]).
    pub fn from_array(a: [f64; 10]) -> ThirdMoments {
        ThirdMoments {
            m300: a[0],
            m030: a[1],
            m003: a[2],
            m210: a[3],
            m201: a[4],
            m120: a[5],
            m021: a[6],
            m102: a[7],
            m012: a[8],
            m111: a[9],
        }
    }
}

/// Exact cubic simplex integral over tet (O, a, b, c) with signed
/// volume `vol`, for vertex-value triples of three linear coordinate
/// functions.
#[inline]
fn cubic(vol: f64, f: [f64; 3], g: [f64; 3], h: [f64; 3]) -> f64 {
    let sf = f[0] + f[1] + f[2];
    let sg = g[0] + g[1] + g[2];
    let sh = h[0] + h[1] + h[2];
    let mut pair = 0.0;
    let mut triple = 0.0;
    for m in 0..3 {
        pair += f[m] * g[m] * sh + f[m] * h[m] * sg + g[m] * h[m] * sf;
        triple += f[m] * g[m] * h[m];
    }
    vol / 120.0 * (sf * sg * sh + pair + 2.0 * triple)
}

/// Computes the raw (origin-referenced) third-order moments of the
/// solid bounded by `mesh`.
pub fn mesh_third_moments(mesh: &TriMesh) -> ThirdMoments {
    third_moments_shifted(mesh, Vec3::ZERO)
}

/// Computes the central (centroid-referenced) third-order moments —
/// the solid's skewness tensor. Returns zeroed moments for degenerate
/// (zero-volume) meshes.
pub fn central_third_moments(mesh: &TriMesh) -> ThirdMoments {
    let m = mesh_moments(mesh);
    if m.m000.abs() < 1e-12 {
        return ThirdMoments::default();
    }
    third_moments_shifted(mesh, m.centroid())
}

/// Third-order moments about an arbitrary reference point `origin`.
fn third_moments_shifted(mesh: &TriMesh, origin: Vec3) -> ThirdMoments {
    let mut out = ThirdMoments::default();
    for [pa, pb, pc] in mesh.triangle_iter() {
        let a = pa - origin;
        let b = pb - origin;
        let c = pc - origin;
        let vol = a.dot(b.cross(c)) / 6.0;
        let x = [a.x, b.x, c.x];
        let y = [a.y, b.y, c.y];
        let z = [a.z, b.z, c.z];
        out.m300 += cubic(vol, x, x, x);
        out.m030 += cubic(vol, y, y, y);
        out.m003 += cubic(vol, z, z, z);
        out.m210 += cubic(vol, x, x, y);
        out.m201 += cubic(vol, x, x, z);
        out.m120 += cubic(vol, x, y, y);
        out.m021 += cubic(vol, y, y, z);
        out.m102 += cubic(vol, x, z, z);
        out.m012 += cubic(vol, y, z, z);
        out.m111 += cubic(vol, x, y, z);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives;

    fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "{what}: {a} vs {b}");
    }

    #[test]
    fn symmetric_solids_have_zero_central_skew() {
        // Boxes, spheres, cylinders are centro-symmetric: every central
        // third moment vanishes.
        for mesh in [
            primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)),
            primitives::uv_sphere(1.0, 24, 12),
            primitives::cylinder(0.7, 2.0, 32),
            primitives::torus(1.5, 0.4, 32, 16),
        ] {
            let t = central_third_moments(&mesh);
            for (i, v) in t.to_array().iter().enumerate() {
                assert!(v.abs() < 1e-9, "component {i} = {v}");
            }
        }
    }

    #[test]
    fn unit_cube_raw_third_moments() {
        // Cube [0,1]³: m300 = 1/4, m210 = 1/6, m111 = 1/8.
        let mut mesh = primitives::box_mesh(Vec3::ONE);
        mesh.translate(Vec3::splat(0.5));
        let t = mesh_third_moments(&mesh);
        assert_close(t.m300, 0.25, 1e-12, "m300");
        assert_close(t.m030, 0.25, 1e-12, "m030");
        assert_close(t.m210, 1.0 / 6.0, 1e-12, "m210");
        assert_close(t.m120, 1.0 / 6.0, 1e-12, "m120");
        assert_close(t.m111, 0.125, 1e-12, "m111");
    }

    #[test]
    fn cone_has_axial_skew_only() {
        // A cone on the z-axis is rotationally symmetric about z:
        // central skew must be non-zero only in m003 (and the
        // axially-symmetric mixed terms m201, m021 which share the z
        // direction).
        let mesh = primitives::cone(1.0, 2.0, 64);
        let t = central_third_moments(&mesh);
        assert!(t.m003.abs() > 1e-4, "m003 = {}", t.m003);
        for (name, v) in [
            ("m300", t.m300),
            ("m030", t.m030),
            ("m111", t.m111),
            ("m210", t.m210),
            ("m120", t.m120),
            ("m012", t.m012),
            ("m102", t.m102),
        ] {
            assert!(v.abs() < 1e-3 * t.m003.abs().max(1e-3), "{name} = {v}");
        }
        // m201 ≈ m021 by the rotational symmetry.
        assert_close(t.m201, t.m021, 1e-6, "m201 vs m021");
    }

    #[test]
    fn origin_independence_of_central_moments() {
        let mesh = primitives::cone(1.0, 2.0, 32);
        let t0 = central_third_moments(&mesh);
        let mut moved = mesh.clone();
        moved.translate(Vec3::new(50.0, -20.0, 30.0));
        let t1 = central_third_moments(&moved);
        for (a, b) in t0.to_array().iter().zip(t1.to_array()) {
            assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn scaling_rule() {
        let mesh = primitives::cone(1.0, 2.0, 32);
        let t = central_third_moments(&mesh);
        let mut big = mesh.clone();
        big.scale_uniform(1.7);
        let tb = central_third_moments(&big);
        let rule = t.scaled(1.7);
        for (a, b) in tb.to_array().iter().zip(rule.to_array()) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn array_roundtrip() {
        let t = ThirdMoments {
            m300: 1.0,
            m030: 2.0,
            m003: 3.0,
            m210: 4.0,
            m201: 5.0,
            m120: 6.0,
            m021: 7.0,
            m102: 8.0,
            m012: 9.0,
            m111: 10.0,
        };
        assert_eq!(ThirdMoments::from_array(t.to_array()), t);
    }
}
