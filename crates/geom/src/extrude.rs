//! Linear extrusion of 2-D profiles into watertight prisms.

use crate::mesh::TriMesh;
use crate::polygon::{triangulate, Polygon};
use crate::vec3::Vec3;

/// Extrudes `profile` along Z into a solid of height `h`, centered so
/// the caps sit at `z = ±h/2`.
///
/// The profile's triangulation supplies both caps (bottom flipped), and
/// every ring (outer and holes) contributes a wall strip. Because all
/// rings are oriented outer-CCW / holes-CW, one winding formula yields
/// outward normals everywhere, and the result is watertight without
/// welding.
pub fn extrude(profile: &Polygon, h: f64) -> TriMesh {
    assert!(h > 0.0, "extrusion height must be positive, got {h}");
    let pts = profile.all_points();
    let n = pts.len();
    let tris2d = triangulate(profile);

    let hz = h * 0.5;
    let mut vertices = Vec::with_capacity(2 * n);
    // Bottom layer [0, n), top layer [n, 2n).
    for p in &pts {
        vertices.push(Vec3::new(p.x, p.y, -hz));
    }
    for p in &pts {
        vertices.push(Vec3::new(p.x, p.y, hz));
    }

    let mut triangles = Vec::with_capacity(2 * tris2d.len() + 2 * n);
    // Bottom cap, flipped to face -Z.
    for t in &tris2d {
        triangles.push([t[0], t[2], t[1]]);
    }
    // Top cap faces +Z.
    let nu = n as u32;
    for t in &tris2d {
        triangles.push([t[0] + nu, t[1] + nu, t[2] + nu]);
    }
    // Walls, one strip per ring.
    for range in profile.ring_ranges() {
        let len = range.len();
        let start = range.start as u32;
        for k in 0..len {
            let a = start + k as u32;
            let b = start + ((k + 1) % len) as u32;
            // Quad (bottom a, bottom b, top b, top a), outward normal.
            triangles.push([a, b, b + nu]);
            triangles.push([a, b + nu, a + nu]);
        }
    }
    TriMesh::new(vertices, triangles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::mesh_moments;
    use crate::polygon::{rect_ring, regular_ngon, P2};

    #[test]
    fn extruded_square_is_a_box() {
        let p = Polygon::simple(rect_ring(-1.0, -1.5, 1.0, 1.5));
        let m = extrude(&p, 4.0);
        assert!(m.is_watertight(), "{:?}", m.validate());
        assert!((m.signed_volume() - 2.0 * 3.0 * 4.0).abs() < 1e-12);
        assert!((m.surface_area() - 2.0 * (6.0 + 8.0 + 12.0)).abs() < 1e-12);
        let c = mesh_moments(&m).centroid();
        assert!(c.approx_eq(Vec3::ZERO, 1e-12));
    }

    #[test]
    fn extruded_lshape_volume() {
        let l = vec![
            P2::new(0.0, 0.0),
            P2::new(3.0, 0.0),
            P2::new(3.0, 1.0),
            P2::new(1.0, 1.0),
            P2::new(1.0, 3.0),
            P2::new(0.0, 3.0),
        ];
        let p = Polygon::simple(l);
        let m = extrude(&p, 2.0);
        assert!(m.is_watertight(), "{:?}", m.validate());
        assert!((m.signed_volume() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn extruded_plate_with_hole() {
        let p = Polygon::new(
            rect_ring(-2.0, -1.0, 2.0, 1.0),
            vec![regular_ngon(24, 0.5, 0.0, 0.0, 0.0)],
        );
        let m = extrude(&p, 0.5);
        assert!(m.is_watertight(), "{:?}", m.validate());
        let expected = p.area() * 0.5;
        assert!((m.signed_volume() - expected).abs() < 1e-9);
    }

    #[test]
    fn extruded_plate_with_many_holes() {
        let mut holes = Vec::new();
        for (cx, cy) in [
            (-1.2, -0.5),
            (1.2, -0.5),
            (1.2, 0.5),
            (-1.2, 0.5),
            (0.0, 0.0),
        ] {
            holes.push(regular_ngon(10, 0.25, cx, cy, 0.3));
        }
        let p = Polygon::new(rect_ring(-2.0, -1.0, 2.0, 1.0), holes);
        let m = extrude(&p, 0.4);
        assert!(m.is_watertight(), "{:?}", m.validate());
        let expected = p.area() * 0.4;
        assert!((m.signed_volume() - expected).abs() < 1e-9);
    }

    #[test]
    fn extruded_annulus_is_a_tube() {
        let p = Polygon::new(
            regular_ngon(48, 1.0, 0.0, 0.0, 0.0),
            vec![regular_ngon(48, 0.6, 0.0, 0.0, 0.0)],
        );
        let m = extrude(&p, 3.0);
        assert!(m.is_watertight(), "{:?}", m.validate());
        let expected = p.area() * 3.0;
        assert!((m.signed_volume() - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_height_rejected() {
        let p = Polygon::simple(rect_ring(0.0, 0.0, 1.0, 1.0));
        let _ = extrude(&p, 0.0);
    }
}
