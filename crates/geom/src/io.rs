//! Mesh file I/O: binary/ASCII STL and OFF.
//!
//! The paper's system accepts CAD files as query examples; this module
//! plays that role with the two simplest open mesh formats. STL stores
//! triangle soup (vertices are welded on load); OFF stores indexed
//! meshes losslessly and is what the examples export for viewing
//! search results in any external viewer (our substitute for the
//! paper's Java3D interface).

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut};

use crate::mesh::TriMesh;
use crate::vec3::Vec3;

/// Errors from mesh I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file content is not valid for the format.
    Parse(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> IoError {
    IoError::Parse(msg.into())
}

/// Caps on counts declared in mesh-file headers. A few header bytes
/// can otherwise declare billions of elements and force a gigabyte
/// allocation before a single payload byte is read. 2^24 vertices
/// (~400 MiB of coordinates) is far beyond any engineering model we
/// index and keeps every index safely inside `u32`.
pub const MAX_MESH_VERTICES: usize = 1 << 24;

/// Cap on the declared face count (see [`MAX_MESH_VERTICES`]).
pub const MAX_MESH_FACES: usize = 1 << 24;

/// Cap on a single polygon's declared vertex count in OFF files.
pub const MAX_FACE_ARITY: usize = 4096;

// ---------------------------------------------------------------------
// STL
// ---------------------------------------------------------------------

/// Writes a mesh as binary STL.
pub fn write_stl_binary<W: Write>(mesh: &TriMesh, w: &mut W) -> Result<(), IoError> {
    let mut buf = Vec::with_capacity(84 + mesh.num_triangles() * 50);
    let mut header = [0u8; 80];
    let tag = b"3DESS binary STL";
    header[..tag.len()].copy_from_slice(tag);
    buf.put_slice(&header);
    buf.put_u32_le(mesh.num_triangles() as u32);
    for [a, b, c] in mesh.triangle_iter() {
        let n = (b - a).cross(c - a).normalized().unwrap_or(Vec3::ZERO);
        for v in [n, a, b, c] {
            buf.put_f32_le(v.x as f32);
            buf.put_f32_le(v.y as f32);
            buf.put_f32_le(v.z as f32);
        }
        buf.put_u16_le(0); // attribute byte count
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Writes a mesh as ASCII STL under solid name `name`.
pub fn write_stl_ascii<W: Write>(mesh: &TriMesh, name: &str, w: &mut W) -> Result<(), IoError> {
    writeln!(w, "solid {name}")?;
    for [a, b, c] in mesh.triangle_iter() {
        let n = (b - a).cross(c - a).normalized().unwrap_or(Vec3::ZERO);
        writeln!(w, "  facet normal {} {} {}", n.x, n.y, n.z)?;
        writeln!(w, "    outer loop")?;
        for v in [a, b, c] {
            writeln!(w, "      vertex {} {} {}", v.x, v.y, v.z)?;
        }
        writeln!(w, "    endloop")?;
        writeln!(w, "  endfacet")?;
    }
    writeln!(w, "endsolid {name}")?;
    Ok(())
}

/// Reads an STL file (binary or ASCII, auto-detected). Vertices are
/// welded with tolerance `weld_eps` so the triangle soup becomes an
/// indexed mesh.
pub fn read_stl<R: Read>(r: &mut R, weld_eps: f64) -> Result<TriMesh, IoError> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    let is_ascii = data.len() >= 6
        && data.starts_with(b"solid")
        && // Binary files may also start with "solid": check for "facet".
        std::str::from_utf8(&data[..data.len().min(4096)])
            .map(|s| s.contains("facet"))
            .unwrap_or(false);
    let mut mesh = if is_ascii {
        read_stl_ascii_bytes(&data)?
    } else {
        read_stl_binary_bytes(&data)?
    };
    mesh.weld(weld_eps);
    Ok(mesh)
}

fn read_stl_binary_bytes(data: &[u8]) -> Result<TriMesh, IoError> {
    if data.len() < 84 {
        return Err(parse_err("binary STL shorter than header"));
    }
    let mut buf = &data[80..];
    let count = buf.get_u32_le() as usize;
    let expected = 84 + count * 50;
    if data.len() < expected {
        return Err(parse_err(format!(
            "binary STL truncated: {} bytes for {count} triangles (need {expected})",
            data.len()
        )));
    }
    // audit: allow(wire-alloc) — count is bounded by the truncation check above: 50 bytes per triangle must be present
    let mut vertices = Vec::with_capacity(count * 3);
    // audit: allow(wire-alloc) — count is bounded by the truncation check above: 50 bytes per triangle must be present
    let mut triangles = Vec::with_capacity(count);
    for t in 0..count {
        let _normal = (buf.get_f32_le(), buf.get_f32_le(), buf.get_f32_le());
        let base = (t * 3) as u32;
        for _ in 0..3 {
            let x = buf.get_f32_le() as f64;
            let y = buf.get_f32_le() as f64;
            let z = buf.get_f32_le() as f64;
            vertices.push(Vec3::new(x, y, z));
        }
        let _attr = buf.get_u16_le();
        triangles.push([base, base + 1, base + 2]);
    }
    Ok(TriMesh::new(vertices, triangles))
}

fn read_stl_ascii_bytes(data: &[u8]) -> Result<TriMesh, IoError> {
    let text = std::str::from_utf8(data).map_err(|_| parse_err("ASCII STL is not UTF-8"))?;
    let mut vertices = Vec::new();
    let mut triangles = Vec::new();
    let mut pending: Vec<Vec3> = Vec::with_capacity(3);
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("vertex") {
            let mut it = rest.split_whitespace();
            let mut next = || -> Result<f64, IoError> {
                it.next()
                    .ok_or_else(|| {
                        parse_err(format!("line {}: missing vertex coordinate", lineno + 1))
                    })?
                    .parse::<f64>()
                    .map_err(|e| parse_err(format!("line {}: {e}", lineno + 1)))
            };
            let v = Vec3::new(next()?, next()?, next()?);
            pending.push(v);
            if pending.len() == 3 {
                let base = vertices.len() as u32;
                vertices.extend_from_slice(&pending);
                triangles.push([base, base + 1, base + 2]);
                pending.clear();
            }
        }
    }
    if !pending.is_empty() {
        return Err(parse_err("ASCII STL facet with fewer than 3 vertices"));
    }
    Ok(TriMesh::new(vertices, triangles))
}

// ---------------------------------------------------------------------
// OFF
// ---------------------------------------------------------------------

/// Writes a mesh in OFF format (indexed, lossless for `TriMesh`).
pub fn write_off<W: Write>(mesh: &TriMesh, w: &mut W) -> Result<(), IoError> {
    writeln!(w, "OFF")?;
    writeln!(w, "{} {} 0", mesh.num_vertices(), mesh.num_triangles())?;
    for v in &mesh.vertices {
        writeln!(w, "{} {} {}", v.x, v.y, v.z)?;
    }
    for t in &mesh.triangles {
        writeln!(w, "3 {} {} {}", t[0], t[1], t[2])?;
    }
    Ok(())
}

/// Reads an OFF file. Faces with more than 3 vertices are fan-
/// triangulated.
pub fn read_off<R: Read>(r: &mut R) -> Result<TriMesh, IoError> {
    let reader = BufReader::new(r);
    let mut tokens: Vec<String> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let body = line.split('#').next().unwrap_or("");
        tokens.extend(body.split_whitespace().map(str::to_owned));
    }
    let mut it = tokens.into_iter();
    match it.next().as_deref() {
        Some("OFF") => {}
        other => return Err(parse_err(format!("expected OFF magic, found {other:?}"))),
    }
    let next_usize = |what: &str, it: &mut dyn Iterator<Item = String>| -> Result<usize, IoError> {
        it.next()
            .ok_or_else(|| parse_err(format!("missing {what}")))?
            .parse::<usize>()
            .map_err(|e| parse_err(format!("bad {what}: {e}")))
    };
    let nv = next_usize("vertex count", &mut it)?;
    let nf = next_usize("face count", &mut it)?;
    let _ne = next_usize("edge count", &mut it)?;
    // Validate the declared counts before allocating: a 20-byte header
    // must not be able to demand gigabytes (and nv ≤ MAX_MESH_VERTICES
    // also guarantees every vertex index fits in u32 below).
    if nv > MAX_MESH_VERTICES {
        return Err(parse_err(format!(
            "declared vertex count {nv} exceeds limit {MAX_MESH_VERTICES}"
        )));
    }
    if nf > MAX_MESH_FACES {
        return Err(parse_err(format!(
            "declared face count {nf} exceeds limit {MAX_MESH_FACES}"
        )));
    }

    let next_f64 = |what: &str, it: &mut dyn Iterator<Item = String>| -> Result<f64, IoError> {
        it.next()
            .ok_or_else(|| parse_err(format!("missing {what}")))?
            .parse::<f64>()
            .map_err(|e| parse_err(format!("bad {what}: {e}")))
    };
    let mut vertices = Vec::with_capacity(nv);
    for i in 0..nv {
        let x = next_f64(&format!("vertex {i} x"), &mut it)?;
        let y = next_f64(&format!("vertex {i} y"), &mut it)?;
        let z = next_f64(&format!("vertex {i} z"), &mut it)?;
        vertices.push(Vec3::new(x, y, z));
    }
    let mut triangles = Vec::with_capacity(nf);
    for f in 0..nf {
        let k = next_usize(&format!("face {f} arity"), &mut it)?;
        if k < 3 {
            return Err(parse_err(format!("face {f} has {k} vertices")));
        }
        if k > MAX_FACE_ARITY {
            return Err(parse_err(format!(
                "face {f} declares {k} vertices, exceeds limit {MAX_FACE_ARITY}"
            )));
        }
        let mut idx = Vec::with_capacity(k);
        for j in 0..k {
            let v = next_usize(&format!("face {f} index {j}"), &mut it)?;
            if v >= nv {
                return Err(parse_err(format!("face {f} references vertex {v} >= {nv}")));
            }
            idx.push(v as u32);
        }
        for j in 1..k - 1 {
            triangles.push([idx[0], idx[j], idx[j + 1]]);
        }
    }
    Ok(TriMesh::new(vertices, triangles))
}

// ---------------------------------------------------------------------
// OBJ
// ---------------------------------------------------------------------

/// Writes a mesh as a Wavefront OBJ file (positions and triangular
/// faces only).
pub fn write_obj<W: Write>(mesh: &TriMesh, w: &mut W) -> Result<(), IoError> {
    writeln!(w, "# 3DESS OBJ export")?;
    for v in &mesh.vertices {
        writeln!(w, "v {} {} {}", v.x, v.y, v.z)?;
    }
    for t in &mesh.triangles {
        // OBJ indices are 1-based.
        writeln!(w, "f {} {} {}", t[0] + 1, t[1] + 1, t[2] + 1)?;
    }
    Ok(())
}

/// Reads a Wavefront OBJ file: `v` and `f` records only; normals,
/// texture coordinates, groups, and materials are ignored. Faces with
/// more than 3 vertices are fan-triangulated; `v/vt/vn` index forms and
/// negative (relative) indices are supported.
pub fn read_obj<R: Read>(r: &mut R) -> Result<TriMesh, IoError> {
    let reader = BufReader::new(r);
    let mut vertices: Vec<Vec3> = Vec::new();
    let mut triangles: Vec<[u32; 3]> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut tok = body.split_whitespace();
        match tok.next() {
            Some("v") => {
                let mut next = || -> Result<f64, IoError> {
                    tok.next()
                        .ok_or_else(|| parse_err(format!("line {}: short vertex", lineno + 1)))?
                        .parse::<f64>()
                        .map_err(|e| parse_err(format!("line {}: {e}", lineno + 1)))
                };
                vertices.push(Vec3::new(next()?, next()?, next()?));
            }
            Some("f") => {
                let mut idx: Vec<u32> = Vec::new();
                for part in tok {
                    let first = part.split('/').next().ok_or_else(|| {
                        parse_err(format!("line {}: empty face index", lineno + 1))
                    })?;
                    let raw: i64 = first
                        .parse()
                        .map_err(|e| parse_err(format!("line {}: {e}", lineno + 1)))?;
                    let resolved = if raw > 0 {
                        raw - 1
                    } else if raw < 0 {
                        vertices.len() as i64 + raw
                    } else {
                        return Err(parse_err(format!("line {}: face index 0", lineno + 1)));
                    };
                    if resolved < 0 || resolved >= vertices.len() as i64 {
                        return Err(parse_err(format!(
                            "line {}: face index {raw} out of range",
                            lineno + 1
                        )));
                    }
                    idx.push(resolved as u32);
                }
                if idx.len() < 3 {
                    return Err(parse_err(format!(
                        "line {}: face with < 3 vertices",
                        lineno + 1
                    )));
                }
                for j in 1..idx.len() - 1 {
                    triangles.push([idx[0], idx[j], idx[j + 1]]);
                }
            }
            _ => {} // ignore vn, vt, g, o, usemtl, s, mtllib, ...
        }
    }
    Ok(TriMesh::new(vertices, triangles))
}

// ---------------------------------------------------------------------
// Path conveniences
// ---------------------------------------------------------------------

/// Saves a mesh to `path`, choosing the format from the extension
/// (`.stl` → binary STL, `.off` → OFF).
pub fn save_mesh(mesh: &TriMesh, path: &Path) -> Result<(), IoError> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    match path.extension().and_then(|e| e.to_str()) {
        Some("stl") => write_stl_binary(mesh, &mut file),
        Some("off") => write_off(mesh, &mut file),
        Some("obj") => write_obj(mesh, &mut file),
        other => Err(parse_err(format!("unsupported mesh extension: {other:?}"))),
    }
}

/// Loads a mesh from `path`, choosing the format from the extension.
pub fn load_mesh(path: &Path) -> Result<TriMesh, IoError> {
    let mut file = std::fs::File::open(path)?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("stl") => read_stl(&mut file, 1e-9),
        Some("off") => read_off(&mut file),
        Some("obj") => read_obj(&mut file),
        other => Err(parse_err(format!("unsupported mesh extension: {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives;

    #[test]
    fn stl_binary_roundtrip() {
        let mesh = primitives::box_mesh(Vec3::new(1.0, 2.0, 3.0));
        let mut buf = Vec::new();
        write_stl_binary(&mesh, &mut buf).unwrap();
        let got = read_stl(&mut buf.as_slice(), 1e-6).unwrap();
        assert_eq!(got.num_triangles(), mesh.num_triangles());
        assert_eq!(got.num_vertices(), mesh.num_vertices());
        assert!((got.signed_volume() - mesh.signed_volume()).abs() < 1e-5);
        assert!(got.is_watertight());
    }

    #[test]
    fn stl_ascii_roundtrip() {
        let mesh = primitives::cylinder(1.0, 2.0, 16);
        let mut buf = Vec::new();
        write_stl_ascii(&mesh, "cyl", &mut buf).unwrap();
        let got = read_stl(&mut buf.as_slice(), 1e-6).unwrap();
        assert_eq!(got.num_triangles(), mesh.num_triangles());
        assert!((got.signed_volume() - mesh.signed_volume()).abs() < 1e-6);
    }

    #[test]
    fn off_roundtrip_is_lossless() {
        let mesh = primitives::uv_sphere(1.0, 12, 6);
        let mut buf = Vec::new();
        write_off(&mesh, &mut buf).unwrap();
        let got = read_off(&mut buf.as_slice()).unwrap();
        assert_eq!(got.num_vertices(), mesh.num_vertices());
        assert_eq!(got.num_triangles(), mesh.num_triangles());
        for (a, b) in got.vertices.iter().zip(mesh.vertices.iter()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
        assert_eq!(got.triangles, mesh.triangles);
    }

    #[test]
    fn off_fan_triangulates_quads() {
        let text = "OFF\n4 1 0\n0 0 0\n1 0 0\n1 1 0\n0 1 0\n4 0 1 2 3\n";
        let mesh = read_off(&mut text.as_bytes()).unwrap();
        assert_eq!(mesh.num_triangles(), 2);
    }

    #[test]
    fn off_rejects_bad_magic_and_indices() {
        assert!(read_off(&mut "PLY\n".as_bytes()).is_err());
        let text = "OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n3 0 1 9\n";
        assert!(read_off(&mut text.as_bytes()).is_err());
    }

    #[test]
    fn off_ignores_comments() {
        let text = "OFF\n# a comment\n3 1 0\n0 0 0 # inline\n1 0 0\n0 1 0\n3 0 1 2\n";
        let mesh = read_off(&mut text.as_bytes()).unwrap();
        assert_eq!(mesh.num_vertices(), 3);
        assert_eq!(mesh.num_triangles(), 1);
    }

    #[test]
    fn truncated_binary_stl_rejected() {
        let mesh = primitives::box_mesh(Vec3::ONE);
        let mut buf = Vec::new();
        write_stl_binary(&mesh, &mut buf).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(read_stl(&mut buf.as_slice(), 1e-6).is_err());
    }

    #[test]
    fn obj_roundtrip_is_lossless() {
        let mesh = primitives::torus(1.5, 0.4, 12, 6);
        let mut buf = Vec::new();
        write_obj(&mesh, &mut buf).unwrap();
        let got = read_obj(&mut buf.as_slice()).unwrap();
        assert_eq!(got.num_vertices(), mesh.num_vertices());
        assert_eq!(got.triangles, mesh.triangles);
        for (a, b) in got.vertices.iter().zip(&mesh.vertices) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn obj_parses_slash_forms_and_negatives() {
        let text = "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1/1/1 2//2 3/3\nf -4 -2 -1\n";
        let mesh = read_obj(&mut text.as_bytes()).unwrap();
        assert_eq!(mesh.num_vertices(), 4);
        assert_eq!(mesh.num_triangles(), 2);
        assert_eq!(mesh.triangles[0], [0, 1, 2]);
        assert_eq!(mesh.triangles[1], [0, 2, 3]);
    }

    #[test]
    fn obj_rejects_bad_faces() {
        assert!(read_obj(&mut "v 0 0 0\nf 1 2 3\n".as_bytes()).is_err()); // out of range
        assert!(read_obj(&mut "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 0 3\n".as_bytes()).is_err()); // index 0
        assert!(read_obj(&mut "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2\n".as_bytes()).is_err());
        // arity
    }

    #[test]
    fn save_and_load_paths() {
        let dir = std::env::temp_dir().join("tdess_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mesh = primitives::cone(1.0, 2.0, 12);
        for name in ["m.stl", "m.off", "m.obj"] {
            let p = dir.join(name);
            save_mesh(&mesh, &p).unwrap();
            let got = load_mesh(&p).unwrap();
            assert!(
                (got.signed_volume() - mesh.signed_volume()).abs() < 1e-5,
                "{name}"
            );
        }
        assert!(save_mesh(&mesh, &dir.join("m.xyz")).is_err());
    }
}
