//! Random surface sampling of triangle meshes.
//!
//! Area-weighted uniform sampling is the substrate for the
//! shape-distribution baseline descriptor (Osada et al., cited as reference 15
//! in the paper's related work).

use rand::rngs::StdRng;
use rand::Rng;

use crate::mesh::TriMesh;
use crate::vec3::Vec3;

/// Draws `n` points uniformly from the surface of `mesh`
/// (area-weighted triangle selection + uniform barycentric sampling).
/// Panics on meshes with zero total surface area.
pub fn sample_surface(mesh: &TriMesh, n: usize, rng: &mut StdRng) -> Vec<Vec3> {
    // Cumulative area table for triangle selection by binary search.
    let mut cum = Vec::with_capacity(mesh.num_triangles());
    let mut total = 0.0;
    for [a, b, c] in mesh.triangle_iter() {
        total += 0.5 * (b - a).cross(c - a).norm();
        cum.push(total);
    }
    assert!(total > 0.0, "cannot sample a zero-area mesh");

    (0..n)
        .map(|_| {
            let t = rng.gen_range(0.0..total);
            let idx = cum.partition_point(|&x| x < t).min(cum.len() - 1);
            let [a, b, c] = mesh.triangle(idx);
            // Uniform barycentric: reflect the unit square across the
            // diagonal (Osada's sqrt trick).
            let r1: f64 = rng.gen();
            let r2: f64 = rng.gen();
            let s = r1.sqrt();
            a * (1.0 - s) + b * (s * (1.0 - r2)) + c * (s * r2)
        })
        // hotpath: allow(hot-alloc) — the sampled point set is the returned artifact
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives;
    use rand::SeedableRng;

    #[test]
    fn samples_lie_on_the_surface() {
        let mesh = primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5));
        let mut rng = StdRng::seed_from_u64(1);
        let pts = sample_surface(&mesh, 500, &mut rng);
        assert_eq!(pts.len(), 500);
        // Every sample lies on one of the box faces: one coordinate at
        // the half-extent.
        for p in pts {
            let on_face = (p.x.abs() - 1.0).abs() < 1e-12
                || (p.y.abs() - 0.5).abs() < 1e-12
                || (p.z.abs() - 0.25).abs() < 1e-12;
            assert!(on_face, "{p:?} not on the box surface");
        }
    }

    #[test]
    fn sampling_is_area_weighted() {
        // A box much longer in x: the two small end faces should
        // receive far fewer samples than the four long faces.
        let mesh = primitives::box_mesh(Vec3::new(10.0, 1.0, 1.0));
        let mut rng = StdRng::seed_from_u64(2);
        let pts = sample_surface(&mesh, 4000, &mut rng);
        let on_ends = pts
            .iter()
            .filter(|p| (p.x.abs() - 5.0).abs() < 1e-12)
            .count();
        // End faces are 2/42 of the area ≈ 4.8%.
        let frac = on_ends as f64 / 4000.0;
        assert!(frac < 0.10, "end-face fraction {frac}");
        assert!(frac > 0.01, "end-face fraction {frac}");
    }

    #[test]
    fn deterministic_for_seed() {
        let mesh = primitives::uv_sphere(1.0, 16, 8);
        let a = sample_surface(&mesh, 50, &mut StdRng::seed_from_u64(7));
        let b = sample_surface(&mesh, 50, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn sphere_samples_at_radius() {
        let mesh = primitives::uv_sphere(1.0, 32, 16);
        let mut rng = StdRng::seed_from_u64(3);
        for p in sample_surface(&mesh, 200, &mut rng) {
            // On a chord-approximated sphere the radius is slightly
            // below 1 but never above.
            assert!(p.norm() <= 1.0 + 1e-9 && p.norm() > 0.9, "{}", p.norm());
        }
    }
}
