//! 2-D polygons and ear-clipping triangulation (with holes).
//!
//! Extruded profiles are the main source of engineering shapes in this
//! system (plates with holes, brackets, channels, gears, …). A profile
//! is a [`Polygon`]: one counter-clockwise outer ring plus zero or more
//! clockwise hole rings. [`triangulate`] produces a triangulation whose
//! vertices are exactly the input ring vertices, which lets the
//! extruder build watertight solids without vertex welding.

use serde::{Deserialize, Serialize};

/// A 2-D point.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct P2 {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl P2 {
    /// Creates a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> P2 {
        P2 { x, y }
    }
}

/// Twice the signed area of triangle (a, b, c); positive when the
/// triangle is counter-clockwise.
#[inline]
fn cross(a: P2, b: P2, c: P2) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Signed area of a ring (positive when counter-clockwise).
pub fn signed_area(ring: &[P2]) -> f64 {
    let n = ring.len();
    if n < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..n {
        let a = ring[i];
        let b = ring[(i + 1) % n];
        acc += a.x * b.y - b.x * a.y;
    }
    acc * 0.5
}

/// Returns `true` if `p` lies strictly inside the ring (even-odd rule).
pub fn point_in_ring(p: P2, ring: &[P2]) -> bool {
    let n = ring.len();
    let mut inside = false;
    let mut j = n - 1;
    for i in 0..n {
        let (a, b) = (ring[i], ring[j]);
        if (a.y > p.y) != (b.y > p.y) {
            let t = (p.y - a.y) / (b.y - a.y);
            let xi = a.x + t * (b.x - a.x);
            if p.x < xi {
                inside = !inside;
            }
        }
        j = i;
    }
    inside
}

/// A polygon with holes: a counter-clockwise outer ring and clockwise
/// hole rings. [`Polygon::new`] fixes ring orientations automatically.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Polygon {
    /// Outer boundary, counter-clockwise.
    pub outer: Vec<P2>,
    /// Hole boundaries, clockwise.
    pub holes: Vec<Vec<P2>>,
}

impl Polygon {
    /// Creates a polygon, re-orienting rings as needed (outer CCW,
    /// holes CW). Panics if the outer ring has fewer than 3 vertices.
    pub fn new(mut outer: Vec<P2>, mut holes: Vec<Vec<P2>>) -> Polygon {
        assert!(outer.len() >= 3, "outer ring needs at least 3 vertices");
        if signed_area(&outer) < 0.0 {
            outer.reverse();
        }
        for h in &mut holes {
            assert!(h.len() >= 3, "hole ring needs at least 3 vertices");
            if signed_area(h) > 0.0 {
                h.reverse();
            }
        }
        Polygon { outer, holes }
    }

    /// A polygon with no holes.
    pub fn simple(outer: Vec<P2>) -> Polygon {
        Polygon::new(outer, Vec::new())
    }

    /// Area of the polygon (outer minus holes).
    pub fn area(&self) -> f64 {
        signed_area(&self.outer) + self.holes.iter().map(|h| signed_area(h)).sum::<f64>()
    }

    /// Total perimeter (outer plus hole boundaries).
    pub fn perimeter(&self) -> f64 {
        let ring_len = |r: &[P2]| -> f64 {
            (0..r.len())
                .map(|i| {
                    let a = r[i];
                    let b = r[(i + 1) % r.len()];
                    ((b.x - a.x).powi(2) + (b.y - a.y).powi(2)).sqrt()
                })
                .sum()
        };
        ring_len(&self.outer) + self.holes.iter().map(|h| ring_len(h)).sum::<f64>()
    }

    /// All ring vertices, outer first then holes in order. Triangle
    /// indices from [`triangulate`] refer to this list.
    pub fn all_points(&self) -> Vec<P2> {
        let mut pts = self.outer.clone();
        for h in &self.holes {
            pts.extend_from_slice(h);
        }
        pts
    }

    /// Ring index ranges into [`Polygon::all_points`]: element 0 is the
    /// outer ring, then one range per hole.
    pub fn ring_ranges(&self) -> Vec<std::ops::Range<usize>> {
        let mut ranges = Vec::with_capacity(1 + self.holes.len());
        let mut start = 0;
        ranges.push(start..self.outer.len());
        start += self.outer.len();
        for h in &self.holes {
            ranges.push(start..start + h.len());
            start += h.len();
        }
        ranges
    }
}

/// Builds a regular `n`-gon of circumradius `r` centered at `(cx, cy)`,
/// counter-clockwise, starting at angle `phase` radians.
pub fn regular_ngon(n: usize, r: f64, cx: f64, cy: f64, phase: f64) -> Vec<P2> {
    assert!(n >= 3 && r > 0.0, "degenerate n-gon");
    (0..n)
        .map(|i| {
            let t = phase + 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            P2::new(cx + r * t.cos(), cy + r * t.sin())
        })
        .collect()
}

/// Builds an axis-aligned rectangle ring (CCW) with corners
/// `(x0, y0)`–`(x1, y1)`.
pub fn rect_ring(x0: f64, y0: f64, x1: f64, y1: f64) -> Vec<P2> {
    assert!(x1 > x0 && y1 > y0, "degenerate rectangle");
    vec![
        P2::new(x0, y0),
        P2::new(x1, y0),
        P2::new(x1, y1),
        P2::new(x0, y1),
    ]
}

/// Triangulates a polygon with holes by bridging each hole into the
/// outer ring and ear-clipping the resulting simple polygon.
///
/// Returns index triples (counter-clockwise) into
/// [`Polygon::all_points`]. The triangulation covers the polygon
/// exactly: total triangle area equals [`Polygon::area`].
pub fn triangulate(poly: &Polygon) -> Vec<[u32; 3]> {
    let points = poly.all_points();
    let ranges = poly.ring_ranges();

    // Working polygon: list of indices into `points`, CCW.
    let mut ring: Vec<u32> = (ranges[0].clone()).map(|i| i as u32).collect();

    // Sort holes by max x, descending: bridge right-most holes first so
    // bridges never cross other unprocessed holes' right extremes.
    let mut hole_order: Vec<usize> = (1..ranges.len()).collect();
    let hole_max_x = |h: usize| -> f64 {
        ranges[h]
            .clone()
            .map(|i| points[i].x)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    hole_order.sort_by(|&a, &b| hole_max_x(b).total_cmp(&hole_max_x(a)));

    for h in hole_order {
        bridge_hole(&mut ring, &points, ranges[h].clone());
    }

    ear_clip(&ring, &points)
}

/// Connects a hole ring into `ring` by finding the hole vertex with
/// maximum x and a mutually visible outer vertex (David Eberly's
/// method), then splicing the hole in with a doubled bridge edge.
fn bridge_hole(ring: &mut Vec<u32>, points: &[P2], hole: std::ops::Range<usize>) {
    let hole_idx: Vec<u32> = hole.map(|i| i as u32).collect();
    // Hole vertex with maximum x.
    let (mi, &m) = hole_idx
        .iter()
        .enumerate()
        .max_by(|(_, &a), (_, &b)| {
            let pa = points[a as usize];
            let pb = points[b as usize];
            pa.x.total_cmp(&pb.x).then(pa.y.total_cmp(&pb.y))
        })
        // lint: allow(unwrap) — triangulate() never passes an empty hole ring
        .expect("hole ring is non-empty");
    let mp = points[m as usize];

    // Cast a ray +x from mp; find the closest intersection with ring
    // edges, then the visible ring vertex.
    let mut best_t = f64::INFINITY;
    let mut best_edge = usize::MAX;
    let mut best_point = P2::new(f64::INFINITY, mp.y);
    let n = ring.len();
    for i in 0..n {
        let a = points[ring[i] as usize];
        let b = points[ring[(i + 1) % n] as usize];
        // Edge must straddle the horizontal line y = mp.y.
        if (a.y > mp.y) == (b.y > mp.y) {
            continue;
        }
        let t = (mp.y - a.y) / (b.y - a.y);
        let x = a.x + t * (b.x - a.x);
        if x >= mp.x - 1e-12 && x < best_t {
            best_t = x;
            best_edge = i;
            best_point = P2::new(x, mp.y);
        }
    }
    assert!(
        best_edge != usize::MAX,
        "hole is not inside the outer ring (no +x ray intersection)"
    );

    // Candidate visible vertex: endpoint of the intersected edge with
    // larger x (Eberly). If some reflex ring vertex lies inside the
    // triangle (mp, intersection, candidate), take the one minimizing
    // the angle with +x instead.
    let ea = ring[best_edge];
    let eb = ring[(best_edge + 1) % n];
    let mut cand_pos = if points[ea as usize].x > points[eb as usize].x {
        best_edge
    } else {
        (best_edge + 1) % n
    };
    let cand_p = points[ring[cand_pos] as usize];
    let tri = [mp, best_point, cand_p];
    let mut best_metric = f64::INFINITY;
    for (i, &v) in ring.iter().enumerate() {
        if i == cand_pos {
            continue;
        }
        let p = points[v as usize];
        // Only reflex vertices can block visibility.
        let prev = points[ring[(i + n - 1) % n] as usize];
        let next = points[ring[(i + 1) % n] as usize];
        if cross(prev, p, next) >= 0.0 {
            continue;
        }
        if point_in_tri_inclusive(p, tri) {
            // Prefer the blocking vertex closest in angle to +x, then
            // nearest.
            let dx = p.x - mp.x;
            let dy = (p.y - mp.y).abs();
            if dx > 1e-12 {
                let metric = dy / dx;
                if metric < best_metric {
                    best_metric = metric;
                    cand_pos = i;
                }
            }
        }
    }

    // The chosen vertex may occur several times in the ring (it can
    // already be a bridge endpoint). Splice at an occurrence whose
    // local interior cone contains the new bridge direction, otherwise
    // the ring would self-cross at the shared vertex.
    let cand_coord = points[ring[cand_pos] as usize];
    let bridge_dir = P2::new(mp.x - cand_coord.x, mp.y - cand_coord.y);
    let mut chosen = cand_pos;
    for (i, &v) in ring.iter().enumerate() {
        let p = points[v as usize];
        if (p.x - cand_coord.x).abs() > 1e-12 || (p.y - cand_coord.y).abs() > 1e-12 {
            continue;
        }
        let ap = points[ring[(i + n - 1) % n] as usize];
        let an = points[ring[(i + 1) % n] as usize];
        if dir_locally_inside(ap, p, an, bridge_dir) {
            chosen = i;
            break;
        }
    }
    let cand_pos = chosen;

    // Splice: ring[..=cand_pos] ++ hole[mi..] ++ hole[..=mi] ++ ring[cand_pos..]
    // (the bridge edge cand→m is traversed in both directions).
    let mut new_ring = Vec::with_capacity(ring.len() + hole_idx.len() + 2);
    new_ring.extend_from_slice(&ring[..=cand_pos]);
    // Hole is CW, which is the correct traversal direction once it is
    // connected to the CCW outer ring.
    for k in 0..=hole_idx.len() {
        new_ring.push(hole_idx[(mi + k) % hole_idx.len()]);
    }
    new_ring.extend_from_slice(&ring[cand_pos..]);
    *ring = new_ring;
}

/// Returns `true` if direction `d` from corner `a` (with CCW neighbors
/// `ap → a → an`, interior on the left) points into the polygon's
/// interior cone at that corner.
fn dir_locally_inside(ap: P2, a: P2, an: P2, d: P2) -> bool {
    let u = P2::new(a.x - ap.x, a.y - ap.y); // incoming edge direction
    let v = P2::new(an.x - a.x, an.y - a.y); // outgoing edge direction
    let c2 = |p: P2, q: P2| p.x * q.y - p.y * q.x;
    if c2(u, v) >= 0.0 {
        // Convex (or straight) corner: intersection of half-planes.
        c2(u, d) > 0.0 && c2(v, d) > 0.0
    } else {
        // Reflex corner: union of half-planes.
        c2(u, d) > 0.0 || c2(v, d) > 0.0
    }
}

/// Inclusive point-in-triangle test (boundary counts as inside).
fn point_in_tri_inclusive(p: P2, tri: [P2; 3]) -> bool {
    let d1 = cross(tri[0], tri[1], p);
    let d2 = cross(tri[1], tri[2], p);
    let d3 = cross(tri[2], tri[0], p);
    let has_neg = d1 < 0.0 || d2 < 0.0 || d3 < 0.0;
    let has_pos = d1 > 0.0 || d2 > 0.0 || d3 > 0.0;
    !(has_neg && has_pos)
}

/// Ear-clips a simple CCW polygon given as indices into `points`.
fn ear_clip(ring: &[u32], points: &[P2]) -> Vec<[u32; 3]> {
    let mut idx: Vec<u32> = ring.to_vec();
    let mut triangles = Vec::with_capacity(idx.len().saturating_sub(2));

    // Remove immediately repeated indices (can appear at bridge seams).
    idx.dedup();
    if idx.len() >= 2 && idx.first() == idx.last() {
        idx.pop();
    }

    // `strict` controls the blocking test: in the first pass a reflex
    // vertex on the ear boundary blocks; if the polygon deadlocks
    // (possible at collinear bridge seams), a second pass lets
    // boundary-touching vertices through.
    let mut strict = true;
    let mut guard = 0usize;
    while idx.len() > 3 {
        let n = idx.len();
        let mut clipped = false;
        for i in 0..n {
            let ip = (i + n - 1) % n;
            let inx = (i + 1) % n;
            let (a, b, c) = (
                points[idx[ip] as usize],
                points[idx[i] as usize],
                points[idx[inx] as usize],
            );
            let conv = cross(a, b, c);
            if conv <= 1e-12 {
                continue; // reflex or collinear corner, not an ear
            }
            // No *reflex* vertex of the ring may lie inside the ear
            // (convex vertices cannot block an ear of a simple polygon).
            let mut blocked = false;
            for (j, &vj) in idx.iter().enumerate() {
                if j == ip || j == i || j == inx {
                    continue;
                }
                // Skip duplicates of the ear corners (bridge seams).
                if vj == idx[ip] || vj == idx[i] || vj == idx[inx] {
                    continue;
                }
                let jp = points[idx[(j + n - 1) % n] as usize];
                let jn = points[idx[(j + 1) % n] as usize];
                let p = points[vj as usize];
                if cross(jp, p, jn) > 1e-12 {
                    continue; // convex vertex, cannot block
                }
                if point_in_tri(p, [a, b, c], strict) {
                    blocked = true;
                    break;
                }
            }
            if blocked {
                continue;
            }
            triangles.push([idx[ip], idx[i], idx[inx]]);
            idx.remove(i);
            clipped = true;
            break;
        }
        if !clipped {
            if strict {
                strict = false; // relax boundary blocking and retry
                continue;
            }
            // Still stuck: the remainder is a degenerate sliver chain.
            // Drop the corner with the smallest absolute area so the
            // loop terminates without emitting flipped triangles.
            let n = idx.len();
            let mut best = 0;
            let mut best_abs = f64::INFINITY;
            for i in 0..n {
                let ip = (i + n - 1) % n;
                let inx = (i + 1) % n;
                let cr = cross(
                    points[idx[ip] as usize],
                    points[idx[i] as usize],
                    points[idx[inx] as usize],
                )
                .abs();
                if cr < best_abs {
                    best_abs = cr;
                    best = i;
                }
            }
            idx.remove(best);
            continue;
        }
        strict = true;
        guard += 1;
        assert!(guard < 1_000_000, "ear clipping failed to terminate");
    }
    if idx.len() == 3 {
        triangles.push([idx[0], idx[1], idx[2]]);
    }
    triangles
}

/// Point-in-triangle for ear blocking. With `strict_boundary`, points
/// on the boundary count as blocking; otherwise only strictly interior
/// points do.
fn point_in_tri(p: P2, tri: [P2; 3], strict_boundary: bool) -> bool {
    let d1 = cross(tri[0], tri[1], p);
    let d2 = cross(tri[1], tri[2], p);
    let d3 = cross(tri[2], tri[0], p);
    let eps = 1e-12;
    if strict_boundary {
        d1 >= -eps && d2 >= -eps && d3 >= -eps && (d1 > eps || d2 > eps || d3 > eps)
    } else {
        d1 > eps && d2 > eps && d3 > eps
    }
}

/// Sum of triangle areas for a triangulation of `poly` — used by tests
/// and debug assertions to check coverage.
pub fn triangulation_area(poly: &Polygon, triangles: &[[u32; 3]]) -> f64 {
    let pts = poly.all_points();
    triangles
        .iter()
        .map(|t| {
            let (a, b, c) = (t[0] as usize, t[1] as usize, t[2] as usize);
            0.5 * cross(pts[a], pts[b], pts[c])
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_area(poly: &Polygon, tol: f64) {
        let tris = triangulate(poly);
        let ta = triangulation_area(poly, &tris);
        let pa = poly.area();
        assert!(
            (ta - pa).abs() <= tol * (1.0 + pa.abs()),
            "triangulation area {ta} vs polygon area {pa} ({} tris)",
            tris.len()
        );
        // All triangles CCW (non-negative area).
        let pts = poly.all_points();
        for t in &tris {
            let a = cross(pts[t[0] as usize], pts[t[1] as usize], pts[t[2] as usize]);
            assert!(a > -1e-9, "clockwise triangle in output: {t:?} area {a}");
        }
    }

    #[test]
    fn ring_orientation_fixed_by_constructor() {
        let cw = vec![
            P2::new(0.0, 0.0),
            P2::new(0.0, 1.0),
            P2::new(1.0, 1.0),
            P2::new(1.0, 0.0),
        ];
        let p = Polygon::simple(cw);
        assert!(signed_area(&p.outer) > 0.0);
        let hole_ccw = regular_ngon(6, 0.2, 0.5, 0.5, 0.0);
        let p = Polygon::new(rect_ring(0.0, 0.0, 1.0, 1.0), vec![hole_ccw]);
        assert!(signed_area(&p.holes[0]) < 0.0);
    }

    #[test]
    fn square_area_and_triangulation() {
        let p = Polygon::simple(rect_ring(0.0, 0.0, 2.0, 3.0));
        assert!((p.area() - 6.0).abs() < 1e-12);
        assert!((p.perimeter() - 10.0).abs() < 1e-12);
        let tris = triangulate(&p);
        assert_eq!(tris.len(), 2);
        assert_area(&p, 1e-12);
    }

    #[test]
    fn convex_ngon_triangulation() {
        for n in [3usize, 5, 8, 17, 64] {
            let p = Polygon::simple(regular_ngon(n, 1.0, 0.0, 0.0, 0.3));
            let tris = triangulate(&p);
            assert_eq!(tris.len(), n - 2, "n = {n}");
            assert_area(&p, 1e-10);
        }
    }

    #[test]
    fn concave_polygon_triangulation() {
        // An L-shape.
        let l = vec![
            P2::new(0.0, 0.0),
            P2::new(3.0, 0.0),
            P2::new(3.0, 1.0),
            P2::new(1.0, 1.0),
            P2::new(1.0, 3.0),
            P2::new(0.0, 3.0),
        ];
        let p = Polygon::simple(l);
        assert!((p.area() - 5.0).abs() < 1e-12);
        assert_area(&p, 1e-12);
    }

    #[test]
    fn star_polygon_triangulation() {
        // A 5-pointed star outline (concave decagon).
        let mut ring = Vec::new();
        for i in 0..10 {
            let r = if i % 2 == 0 { 1.0 } else { 0.4 };
            let t = std::f64::consts::PI * i as f64 / 5.0;
            ring.push(P2::new(r * t.cos(), r * t.sin()));
        }
        let p = Polygon::simple(ring);
        assert_area(&p, 1e-10);
    }

    #[test]
    fn square_with_center_hole() {
        let hole = regular_ngon(16, 0.5, 0.0, 0.0, 0.1);
        let p = Polygon::new(rect_ring(-1.0, -1.0, 1.0, 1.0), vec![hole]);
        let expected = 4.0 - signed_area(&regular_ngon(16, 0.5, 0.0, 0.0, 0.1));
        assert!((p.area() - expected).abs() < 1e-12);
        assert_area(&p, 1e-10);
    }

    #[test]
    fn plate_with_four_holes() {
        let mut holes = Vec::new();
        for (cx, cy) in [(-0.6, -0.6), (0.6, -0.6), (0.6, 0.6), (-0.6, 0.6)] {
            holes.push(regular_ngon(12, 0.2, cx, cy, 0.0));
        }
        let p = Polygon::new(rect_ring(-1.0, -1.0, 1.0, 1.0), holes);
        assert_area(&p, 1e-9);
    }

    #[test]
    fn annulus_triangulation() {
        // Ring: outer circle with concentric inner hole.
        let p = Polygon::new(
            regular_ngon(32, 2.0, 0.0, 0.0, 0.0),
            vec![regular_ngon(32, 1.0, 0.0, 0.0, 0.05)],
        );
        assert_area(&p, 1e-9);
    }

    #[test]
    fn holes_offset_from_center() {
        let p = Polygon::new(
            regular_ngon(24, 3.0, 0.0, 0.0, 0.0),
            vec![
                regular_ngon(10, 0.5, 1.5, 0.0, 0.0),
                regular_ngon(10, 0.5, -1.5, 0.5, 0.2),
                regular_ngon(10, 0.4, 0.0, -1.6, 0.4),
            ],
        );
        assert_area(&p, 1e-9);
    }

    #[test]
    fn point_in_ring_basics() {
        let sq = rect_ring(0.0, 0.0, 1.0, 1.0);
        assert!(point_in_ring(P2::new(0.5, 0.5), &sq));
        assert!(!point_in_ring(P2::new(1.5, 0.5), &sq));
        assert!(!point_in_ring(P2::new(-0.1, 0.5), &sq));
    }

    #[test]
    fn all_points_and_ranges() {
        let p = Polygon::new(
            rect_ring(0.0, 0.0, 1.0, 1.0),
            vec![regular_ngon(3, 0.1, 0.5, 0.5, 0.0)],
        );
        let pts = p.all_points();
        assert_eq!(pts.len(), 7);
        let rr = p.ring_ranges();
        assert_eq!(rr[0], 0..4);
        assert_eq!(rr[1], 4..7);
    }
}
