//! # tdess-geom — geometry substrate for 3DESS
//!
//! This crate is the geometric kernel of the 3DESS reproduction (the
//! role ACIS played in the original system): double-precision linear
//! algebra, watertight triangle meshes, exact polyhedral moments,
//! symmetric eigensolvers, procedural modeling (primitives, extrusion,
//! revolution), and STL/OFF I/O.
//!
//! Everything downstream — voxelization, skeletonization, feature
//! extraction — consumes [`mesh::TriMesh`] values produced here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aabb;
pub mod eigen;
pub mod extrude;
pub mod io;
pub mod mat3;
pub mod mesh;
pub mod moments;
pub mod moments3;
pub mod polygon;
pub mod primitives;
pub mod render;
pub mod revolve;
pub mod sample;
pub mod vec3;

pub use aabb::Aabb;
pub use eigen::{sym3_eigen, sym_eigenvalues, Eigen3};
pub use extrude::extrude;
pub use mat3::Mat3;
pub use mesh::{MeshDefect, TriMesh};
pub use moments::{mesh_moments, Moments};
pub use moments3::{central_third_moments, mesh_third_moments, ThirdMoments};
pub use polygon::{triangulate, Polygon, P2};
pub use render::{render, Image, RenderParams};
pub use revolve::revolve;
pub use sample::sample_surface;
pub use vec3::Vec3;
