//! 3×3 matrices, rotations, and rigid/affine transform helpers.

use std::ops::{Add, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::vec3::Vec3;

/// A 3×3 matrix stored row-major.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Rows of the matrix.
    pub rows: [Vec3; 3],
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        rows: [Vec3::X, Vec3::Y, Vec3::Z],
    };

    /// The zero matrix.
    pub const ZERO: Mat3 = Mat3 {
        rows: [Vec3::ZERO, Vec3::ZERO, Vec3::ZERO],
    };

    /// Builds a matrix from three rows.
    #[inline]
    pub const fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Mat3 {
        Mat3 { rows: [r0, r1, r2] }
    }

    /// Builds a matrix from three columns.
    #[inline]
    pub fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Mat3 {
        Mat3::from_rows(
            Vec3::new(c0.x, c1.x, c2.x),
            Vec3::new(c0.y, c1.y, c2.y),
            Vec3::new(c0.z, c1.z, c2.z),
        )
    }

    /// Builds a diagonal matrix.
    #[inline]
    pub fn diagonal(d: Vec3) -> Mat3 {
        Mat3::from_rows(
            Vec3::new(d.x, 0.0, 0.0),
            Vec3::new(0.0, d.y, 0.0),
            Vec3::new(0.0, 0.0, d.z),
        )
    }

    /// Element access (row, column).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.rows[r][c]
    }

    /// Mutable element access (row, column).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.rows[r][c] = v;
    }

    /// Returns column `c`.
    #[inline]
    pub fn col(&self, c: usize) -> Vec3 {
        Vec3::new(self.rows[0][c], self.rows[1][c], self.rows[2][c])
    }

    /// Matrix transpose.
    #[inline]
    pub fn transpose(&self) -> Mat3 {
        Mat3::from_rows(self.col(0), self.col(1), self.col(2))
    }

    /// Determinant.
    pub fn det(&self) -> f64 {
        let [a, b, c] = self.rows;
        a.dot(b.cross(c))
    }

    /// Trace (sum of diagonal elements).
    #[inline]
    pub fn trace(&self) -> f64 {
        self.rows[0].x + self.rows[1].y + self.rows[2].z
    }

    /// Matrix inverse, or `None` if the matrix is singular.
    pub fn inverse(&self) -> Option<Mat3> {
        let d = self.det();
        if d.abs() < 1e-300 {
            return None;
        }
        let [r0, r1, r2] = self.rows;
        // Columns of the inverse are cross products of rows over det.
        let c0 = r1.cross(r2) / d;
        let c1 = r2.cross(r0) / d;
        let c2 = r0.cross(r1) / d;
        // These are rows of the inverse transpose, i.e. columns of inverse.
        Some(Mat3::from_rows(c0, c1, c2).transpose())
    }

    /// Rotation about the X axis by `angle` radians.
    pub fn rotation_x(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows(
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, c, -s),
            Vec3::new(0.0, s, c),
        )
    }

    /// Rotation about the Y axis by `angle` radians.
    pub fn rotation_y(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows(
            Vec3::new(c, 0.0, s),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(-s, 0.0, c),
        )
    }

    /// Rotation about the Z axis by `angle` radians.
    pub fn rotation_z(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows(
            Vec3::new(c, -s, 0.0),
            Vec3::new(s, c, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        )
    }

    /// Rotation about an arbitrary unit axis by `angle` radians
    /// (Rodrigues' formula). The axis is normalized internally; a zero
    /// axis yields the identity.
    pub fn rotation_axis_angle(axis: Vec3, angle: f64) -> Mat3 {
        let Some(u) = axis.normalized() else {
            return Mat3::IDENTITY;
        };
        let (s, c) = angle.sin_cos();
        let t = 1.0 - c;
        Mat3::from_rows(
            Vec3::new(
                t * u.x * u.x + c,
                t * u.x * u.y - s * u.z,
                t * u.x * u.z + s * u.y,
            ),
            Vec3::new(
                t * u.x * u.y + s * u.z,
                t * u.y * u.y + c,
                t * u.y * u.z - s * u.x,
            ),
            Vec3::new(
                t * u.x * u.z - s * u.y,
                t * u.y * u.z + s * u.x,
                t * u.z * u.z + c,
            ),
        )
    }

    /// Returns `true` if `R^T R ≈ I` within `eps` and `det ≈ +1`
    /// (proper rotation).
    pub fn is_rotation(&self, eps: f64) -> bool {
        let i = *self * self.transpose();
        let id = Mat3::IDENTITY;
        for r in 0..3 {
            for c in 0..3 {
                if (i.get(r, c) - id.get(r, c)).abs() > eps {
                    return false;
                }
            }
        }
        (self.det() - 1.0).abs() <= eps
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.rows.iter().map(|r| r.norm_sq()).sum::<f64>().sqrt()
    }

    /// Approximate equality per element.
    pub fn approx_eq(&self, rhs: &Mat3, eps: f64) -> bool {
        self.rows
            .iter()
            .zip(rhs.rows.iter())
            .all(|(a, b)| a.approx_eq(*b, eps))
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.rows[0].dot(v),
            self.rows[1].dot(v),
            self.rows[2].dot(v),
        )
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let t = rhs.transpose();
        Mat3::from_rows(
            Vec3::new(
                self.rows[0].dot(t.rows[0]),
                self.rows[0].dot(t.rows[1]),
                self.rows[0].dot(t.rows[2]),
            ),
            Vec3::new(
                self.rows[1].dot(t.rows[0]),
                self.rows[1].dot(t.rows[1]),
                self.rows[1].dot(t.rows[2]),
            ),
            Vec3::new(
                self.rows[2].dot(t.rows[0]),
                self.rows[2].dot(t.rows[1]),
                self.rows[2].dot(t.rows[2]),
            ),
        )
    }
}

impl Mul<f64> for Mat3 {
    type Output = Mat3;
    #[inline]
    fn mul(self, s: f64) -> Mat3 {
        Mat3::from_rows(self.rows[0] * s, self.rows[1] * s, self.rows[2] * s)
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    #[inline]
    fn add(self, rhs: Mat3) -> Mat3 {
        Mat3::from_rows(
            self.rows[0] + rhs.rows[0],
            self.rows[1] + rhs.rows[1],
            self.rows[2] + rhs.rows[2],
        )
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    #[inline]
    fn sub(self, rhs: Mat3) -> Mat3 {
        Mat3::from_rows(
            self.rows[0] - rhs.rows[0],
            self.rows[1] - rhs.rows[1],
            self.rows[2] - rhs.rows[2],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn identity_behaves() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Mat3::IDENTITY * v, v);
        assert_eq!(Mat3::IDENTITY * Mat3::IDENTITY, Mat3::IDENTITY);
        assert_eq!(Mat3::IDENTITY.det(), 1.0);
        assert_eq!(Mat3::IDENTITY.trace(), 3.0);
    }

    #[test]
    fn transpose_and_cols() {
        let m = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(4.0, 5.0, 6.0),
            Vec3::new(7.0, 8.0, 9.0),
        );
        assert_eq!(m.col(0), Vec3::new(1.0, 4.0, 7.0));
        assert_eq!(m.transpose().rows[0], Vec3::new(1.0, 4.0, 7.0));
        assert_eq!(m.transpose().transpose(), m);
        let mc = Mat3::from_cols(m.col(0), m.col(1), m.col(2));
        assert_eq!(mc, m);
    }

    #[test]
    fn determinant_and_inverse() {
        let m = Mat3::from_rows(
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(0.0, 3.0, 0.0),
            Vec3::new(0.0, 0.0, 4.0),
        );
        assert_eq!(m.det(), 24.0);
        let inv = m.inverse().unwrap();
        assert!((m * inv).approx_eq(&Mat3::IDENTITY, 1e-14));

        // A non-trivial invertible matrix.
        let a = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(0.0, 1.0, 4.0),
            Vec3::new(5.0, 6.0, 0.0),
        );
        assert_eq!(a.det(), 1.0);
        let ai = a.inverse().unwrap();
        assert!((a * ai).approx_eq(&Mat3::IDENTITY, 1e-12));
        assert!((ai * a).approx_eq(&Mat3::IDENTITY, 1e-12));

        // Singular matrix has no inverse.
        let s = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(2.0, 4.0, 6.0),
            Vec3::new(0.0, 1.0, 1.0),
        );
        assert!(s.inverse().is_none());
    }

    #[test]
    fn axis_rotations() {
        let rx = Mat3::rotation_x(FRAC_PI_2);
        assert!((rx * Vec3::Y).approx_eq(Vec3::Z, 1e-15));
        let ry = Mat3::rotation_y(FRAC_PI_2);
        assert!((ry * Vec3::Z).approx_eq(Vec3::X, 1e-15));
        let rz = Mat3::rotation_z(FRAC_PI_2);
        assert!((rz * Vec3::X).approx_eq(Vec3::Y, 1e-15));
        assert!(rx.is_rotation(1e-12));
        assert!(ry.is_rotation(1e-12));
        assert!(rz.is_rotation(1e-12));
    }

    #[test]
    fn rodrigues_matches_axis_rotations() {
        for angle in [0.3, 1.2, PI - 0.1] {
            let a = Mat3::rotation_axis_angle(Vec3::X, angle);
            let b = Mat3::rotation_x(angle);
            assert!(a.approx_eq(&b, 1e-14), "angle {angle}");
            let a = Mat3::rotation_axis_angle(Vec3::Z, angle);
            let b = Mat3::rotation_z(angle);
            assert!(a.approx_eq(&b, 1e-14), "angle {angle}");
        }
        // Arbitrary axis rotation is a proper rotation.
        let r = Mat3::rotation_axis_angle(Vec3::new(1.0, 2.0, -0.5), 0.7);
        assert!(r.is_rotation(1e-12));
        // Zero axis yields identity.
        assert_eq!(Mat3::rotation_axis_angle(Vec3::ZERO, 1.0), Mat3::IDENTITY);
    }

    #[test]
    fn matrix_products() {
        let a = Mat3::rotation_z(0.5);
        let b = Mat3::rotation_z(0.25);
        let c = Mat3::rotation_z(0.75);
        assert!((a * b).approx_eq(&c, 1e-14));
        let v = Vec3::new(1.0, -2.0, 0.5);
        assert!(((a * b) * v).approx_eq(a * (b * v), 1e-14));
    }

    #[test]
    fn add_sub_scale() {
        let a = Mat3::diagonal(Vec3::new(1.0, 2.0, 3.0));
        let b = Mat3::diagonal(Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(a + b, Mat3::diagonal(Vec3::new(5.0, 7.0, 9.0)));
        assert_eq!(b - a, Mat3::diagonal(Vec3::new(3.0, 3.0, 3.0)));
        assert_eq!(a * 2.0, Mat3::diagonal(Vec3::new(2.0, 4.0, 6.0)));
        assert!((a.frobenius_norm() - (14.0f64).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn improper_rotation_detected() {
        // A reflection: orthogonal but det = -1.
        let refl = Mat3::diagonal(Vec3::new(-1.0, 1.0, 1.0));
        assert!(!refl.is_rotation(1e-12));
    }
}
