//! Exact volume moments of polyhedra, up to second order.
//!
//! The paper (Eq. 3.1) defines the moment of a solid with density
//! `f(x,y,z)` as `m_lmn = ∭ x^l y^m z^n f dx dy dz`. For a solid bounded
//! by a watertight, outward-oriented triangle mesh with `f ≡ 1`, all
//! moments with `l+m+n ≤ 2` have closed forms obtained by decomposing
//! the solid into signed tetrahedra `(O, a, b, c)` — one per surface
//! triangle — and summing the exact simplex integrals.
//!
//! These exact moments drive pose normalization (Eq. 3.2–3.4), moment
//! invariants (Eq. 3.6–3.9), and principal moments (Eq. 3.10).

use serde::{Deserialize, Serialize};

use crate::mat3::Mat3;
use crate::mesh::TriMesh;
use crate::vec3::Vec3;

/// Raw (origin-referenced) moments of a solid, to second order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Moments {
    /// Zeroth order: the volume.
    pub m000: f64,
    /// First order.
    pub m100: f64,
    /// First order.
    pub m010: f64,
    /// First order.
    pub m001: f64,
    /// Second order, pure.
    pub m200: f64,
    /// Second order, pure.
    pub m020: f64,
    /// Second order, pure.
    pub m002: f64,
    /// Second order, mixed.
    pub m110: f64,
    /// Second order, mixed.
    pub m101: f64,
    /// Second order, mixed.
    pub m011: f64,
}

impl Moments {
    /// Centroid of the solid. Panics if the volume is zero; callers
    /// should check [`Moments::m000`] first for possibly-empty solids.
    pub fn centroid(&self) -> Vec3 {
        assert!(self.m000.abs() > 0.0, "centroid of zero-volume solid");
        Vec3::new(self.m100, self.m010, self.m001) / self.m000
    }

    /// Central (centroid-referenced) second moments µ_lmn, obtained by
    /// the parallel-axis relations. Returns a moments struct whose
    /// first-order entries are exactly zero.
    pub fn central(&self) -> Moments {
        if self.m000.abs() == 0.0 {
            return *self;
        }
        let c = self.centroid();
        Moments {
            m000: self.m000,
            m100: 0.0,
            m010: 0.0,
            m001: 0.0,
            m200: self.m200 - self.m000 * c.x * c.x,
            m020: self.m020 - self.m000 * c.y * c.y,
            m002: self.m002 - self.m000 * c.z * c.z,
            m110: self.m110 - self.m000 * c.x * c.y,
            m101: self.m101 - self.m000 * c.x * c.z,
            m011: self.m011 - self.m000 * c.y * c.z,
        }
    }

    /// The symmetric second-moment matrix of Eq. 3.10:
    /// `[[m200, m110, m101], [m110, m020, m011], [m101, m011, m002]]`.
    pub fn second_moment_matrix(&self) -> Mat3 {
        Mat3::from_rows(
            Vec3::new(self.m200, self.m110, self.m101),
            Vec3::new(self.m110, self.m020, self.m011),
            Vec3::new(self.m101, self.m011, self.m002),
        )
    }

    /// Transforms the moments under the rotation `x' = R x` applied to
    /// the solid. Rotation maps the second-moment matrix `M → R M Rᵀ`
    /// and the first-order vector `m1 → R m1`; volume is unchanged.
    pub fn rotated(&self, r: &Mat3) -> Moments {
        let m1 = *r * Vec3::new(self.m100, self.m010, self.m001);
        let m2 = *r * self.second_moment_matrix() * r.transpose();
        Moments {
            m000: self.m000,
            m100: m1.x,
            m010: m1.y,
            m001: m1.z,
            m200: m2.get(0, 0),
            m020: m2.get(1, 1),
            m002: m2.get(2, 2),
            m110: m2.get(0, 1),
            m101: m2.get(0, 2),
            m011: m2.get(1, 2),
        }
    }

    /// Transforms the moments under uniform scaling `x' = s·x` of the
    /// solid: `m_lmn → s^(l+m+n+3) m_lmn`.
    pub fn scaled(&self, s: f64) -> Moments {
        let s3 = s * s * s;
        let s4 = s3 * s;
        let s5 = s4 * s;
        Moments {
            m000: self.m000 * s3,
            m100: self.m100 * s4,
            m010: self.m010 * s4,
            m001: self.m001 * s4,
            m200: self.m200 * s5,
            m020: self.m020 * s5,
            m002: self.m002 * s5,
            m110: self.m110 * s5,
            m101: self.m101 * s5,
            m011: self.m011 * s5,
        }
    }
}

/// Computes the exact moments of the solid bounded by `mesh`.
///
/// Each surface triangle `(a, b, c)` spans a signed tetrahedron with
/// the origin; the closed-form simplex integrals are
///
/// * `∫ 1  dV = V`
/// * `∫ xᵢ dV = (V/4) Σₖ xᵢₖ`
/// * `∫ xᵢxⱼ dV = (V/20) (Σₖ xᵢₖ xⱼₖ + Σₖ xᵢₖ · Σₖ xⱼₖ)`
///
/// summed over the four tet vertices `k` (one of which is the origin).
/// The result is exact for watertight, consistently outward-oriented
/// meshes, regardless of where the origin lies relative to the solid.
pub fn mesh_moments(mesh: &TriMesh) -> Moments {
    let mut m = Moments::default();
    for [a, b, c] in mesh.triangle_iter() {
        let vol = a.dot(b.cross(c)) / 6.0;
        m.m000 += vol;

        let s = a + b + c; // origin contributes zero to vertex sums
        m.m100 += vol * s.x / 4.0;
        m.m010 += vol * s.y / 4.0;
        m.m001 += vol * s.z / 4.0;

        // Σₖ xᵢₖ xⱼₖ over vertices {O, a, b, c}.
        let sxx = a.x * a.x + b.x * b.x + c.x * c.x;
        let syy = a.y * a.y + b.y * b.y + c.y * c.y;
        let szz = a.z * a.z + b.z * b.z + c.z * c.z;
        let sxy = a.x * a.y + b.x * b.y + c.x * c.y;
        let sxz = a.x * a.z + b.x * b.z + c.x * c.z;
        let syz = a.y * a.z + b.y * b.z + c.y * c.z;

        let k = vol / 20.0;
        m.m200 += k * (sxx + s.x * s.x);
        m.m020 += k * (syy + s.y * s.y);
        m.m002 += k * (szz + s.z * s.z);
        m.m110 += k * (sxy + s.x * s.y);
        m.m101 += k * (sxz + s.x * s.z);
        m.m011 += k * (syz + s.y * s.z);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives;

    fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "{what}: {a} vs {b}");
    }

    #[test]
    fn unit_cube_moments() {
        // Cube [-1/2, 1/2]^3: volume 1, centroid 0, µ200 = 1/12.
        let mesh = primitives::box_mesh(Vec3::ONE);
        let m = mesh_moments(&mesh);
        assert_close(m.m000, 1.0, 1e-12, "volume");
        assert!(m.centroid().approx_eq(Vec3::ZERO, 1e-12));
        assert_close(m.m200, 1.0 / 12.0, 1e-12, "m200");
        assert_close(m.m020, 1.0 / 12.0, 1e-12, "m020");
        assert_close(m.m002, 1.0 / 12.0, 1e-12, "m002");
        assert_close(m.m110, 0.0, 1e-12, "m110");
    }

    #[test]
    fn shifted_cube_parallel_axis() {
        // Shift the cube; raw moments change, central moments do not.
        let mut mesh = primitives::box_mesh(Vec3::ONE);
        mesh.translate(Vec3::new(3.0, -2.0, 5.0));
        let m = mesh_moments(&mesh);
        assert_close(m.m000, 1.0, 1e-12, "volume");
        assert!(m.centroid().approx_eq(Vec3::new(3.0, -2.0, 5.0), 1e-12));
        let mu = m.central();
        assert_close(mu.m200, 1.0 / 12.0, 1e-10, "central m200");
        assert_close(mu.m110, 0.0, 1e-10, "central m110");
        // Raw second moment includes the parallel-axis term.
        assert_close(m.m200, 1.0 / 12.0 + 9.0, 1e-10, "raw m200");
    }

    #[test]
    fn anisotropic_box_moments() {
        // Box with extents (a, b, c): µ200 = a²/12 · V.
        let (a, b, c) = (2.0, 3.0, 4.0);
        let mesh = primitives::box_mesh(Vec3::new(a, b, c));
        let m = mesh_moments(&mesh);
        let v = a * b * c;
        assert_close(m.m000, v, 1e-12, "volume");
        assert_close(m.m200, v * a * a / 12.0, 1e-12, "m200");
        assert_close(m.m020, v * b * b / 12.0, 1e-12, "m020");
        assert_close(m.m002, v * c * c / 12.0, 1e-12, "m002");
    }

    #[test]
    fn sphere_moments_converge() {
        // Sphere radius r: V = 4πr³/3, µ200 = V r²/5.
        let r = 1.3;
        let mesh = primitives::uv_sphere(r, 64, 32);
        let m = mesh_moments(&mesh);
        let v = 4.0 / 3.0 * std::f64::consts::PI * r.powi(3);
        assert_close(m.m000, v, 5e-3, "volume");
        assert_close(m.m200, v * r * r / 5.0, 1e-2, "m200");
        assert!(m.centroid().approx_eq(Vec3::ZERO, 1e-9));
    }

    #[test]
    fn cylinder_moments_converge() {
        // Cylinder radius r height h along Z, centered:
        // V = πr²h, µ002 = V h²/12, µ200 = µ020 = V r²/4.
        let (r, h) = (0.8, 2.5);
        let mesh = primitives::cylinder(r, h, 128);
        let m = mesh_moments(&mesh);
        let v = std::f64::consts::PI * r * r * h;
        assert_close(m.m000, v, 2e-3, "volume");
        assert_close(m.m002, v * h * h / 12.0, 5e-3, "m002");
        assert_close(m.m200, v * r * r / 4.0, 5e-3, "m200");
        assert_close(m.m020, v * r * r / 4.0, 5e-3, "m020");
    }

    #[test]
    fn rotation_transform_rule() {
        let mesh = primitives::box_mesh(Vec3::new(1.0, 2.0, 3.0));
        let m = mesh_moments(&mesh);
        let r = Mat3::rotation_axis_angle(Vec3::new(1.0, -1.0, 0.5), 0.9);
        // Rotate the mesh and recompute; compare with the analytic rule.
        let mut rotated = mesh.clone();
        rotated.rotate(&r);
        let m_rot = mesh_moments(&rotated);
        let m_rule = m.rotated(&r);
        assert_close(m_rot.m000, m_rule.m000, 1e-10, "volume");
        assert_close(m_rot.m200, m_rule.m200, 1e-10, "m200");
        assert_close(m_rot.m110, m_rule.m110, 1e-10, "m110");
        assert_close(m_rot.m011, m_rule.m011, 1e-10, "m011");
    }

    #[test]
    fn scaling_transform_rule() {
        let mesh = primitives::box_mesh(Vec3::new(1.0, 2.0, 3.0));
        let m = mesh_moments(&mesh);
        let s = 1.7;
        let mut scaled = mesh.clone();
        scaled.scale_uniform(s);
        let m_scaled = mesh_moments(&scaled);
        let m_rule = m.scaled(s);
        assert_close(m_scaled.m000, m_rule.m000, 1e-12, "volume");
        assert_close(m_scaled.m200, m_rule.m200, 1e-12, "m200");
        assert_close(m_scaled.m100, m_rule.m100, 1e-12, "m100");
    }

    #[test]
    fn origin_independence() {
        // The tetrahedral decomposition must give identical results no
        // matter where the solid sits relative to the origin.
        let mesh = primitives::cylinder(0.5, 1.0, 48);
        let mu0 = mesh_moments(&mesh).central();
        let mut moved = mesh.clone();
        moved.translate(Vec3::new(100.0, 50.0, -80.0));
        let mu1 = mesh_moments(&moved).central();
        assert_close(mu0.m200, mu1.m200, 1e-7, "central m200");
        assert_close(mu0.m011, mu1.m011, 1e-7, "central m011");
        assert_close(mu0.m000, mu1.m000, 1e-9, "volume");
    }

    #[test]
    fn second_moment_matrix_symmetry() {
        let mesh = primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5));
        let m = mesh_moments(&mesh).central();
        let mat = m.second_moment_matrix();
        assert!(mat.approx_eq(&mat.transpose(), 0.0));
        assert_close(mat.trace(), m.m200 + m.m020 + m.m002, 1e-15, "trace");
    }
}
