//! Axis-aligned bounding boxes.

use serde::{Deserialize, Serialize};

use crate::vec3::Vec3;

/// An axis-aligned bounding box in 3-D.
///
/// An `Aabb` is either empty (contains no points) or spans
/// `[min, max]` inclusively on each axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// An empty box: grows from nothing when points are added.
    pub const EMPTY: Aabb = Aabb {
        min: Vec3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY),
        max: Vec3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY),
    };

    /// Creates a box from explicit corners. Panics in debug builds if
    /// the corners are inverted on any axis.
    pub fn new(min: Vec3, max: Vec3) -> Aabb {
        debug_assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "inverted AABB corners: {min:?} > {max:?}"
        );
        Aabb { min, max }
    }

    /// The smallest box containing all points in the iterator; empty if
    /// the iterator is empty.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Aabb {
        let mut b = Aabb::EMPTY;
        for p in points {
            b.expand(p);
        }
        b
    }

    /// Returns `true` if the box contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Grows the box to include `p`.
    #[inline]
    pub fn expand(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Grows the box to include another box.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Extent (size) on each axis; zero vector when empty.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        if self.is_empty() {
            Vec3::ZERO
        } else {
            self.max - self.min
        }
    }

    /// Center point. Meaningless for empty boxes.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Volume of the box; zero when empty.
    #[inline]
    pub fn volume(&self) -> f64 {
        let e = self.extent();
        e.x * e.y * e.z
    }

    /// Length of the space diagonal.
    #[inline]
    pub fn diagonal(&self) -> f64 {
        self.extent().norm()
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Returns `true` if the two boxes overlap (closed intervals).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Expands the box symmetrically by `pad` on every axis.
    pub fn padded(&self, pad: f64) -> Aabb {
        if self.is_empty() {
            return *self;
        }
        Aabb {
            min: self.min - Vec3::splat(pad),
            max: self.max + Vec3::splat(pad),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_box() {
        let b = Aabb::EMPTY;
        assert!(b.is_empty());
        assert_eq!(b.extent(), Vec3::ZERO);
        assert_eq!(b.volume(), 0.0);
        assert!(!b.contains(Vec3::ZERO));
    }

    #[test]
    fn from_points_and_expand() {
        let b = Aabb::from_points([
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(-1.0, 5.0, 0.0),
            Vec3::new(0.0, 0.0, 4.0),
        ]);
        assert_eq!(b.min, Vec3::new(-1.0, 0.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 5.0, 4.0));
        assert_eq!(b.extent(), Vec3::new(2.0, 5.0, 4.0));
        assert_eq!(b.volume(), 40.0);
        assert_eq!(b.center(), Vec3::new(0.0, 2.5, 2.0));
    }

    #[test]
    fn contains_boundary() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert!(b.contains(Vec3::ZERO));
        assert!(b.contains(Vec3::ONE));
        assert!(b.contains(Vec3::splat(0.5)));
        assert!(!b.contains(Vec3::new(1.0001, 0.5, 0.5)));
    }

    #[test]
    fn union_and_intersects() {
        let a = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let b = Aabb::new(Vec3::splat(0.5), Vec3::splat(2.0));
        let c = Aabb::new(Vec3::splat(3.0), Vec3::splat(4.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        // Touching boxes intersect (closed intervals).
        let d = Aabb::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        assert!(a.intersects(&d));
        let u = a.union(&c);
        assert_eq!(u.min, Vec3::ZERO);
        assert_eq!(u.max, Vec3::splat(4.0));
        // Union with empty is identity.
        assert_eq!(a.union(&Aabb::EMPTY), a);
        assert_eq!(Aabb::EMPTY.union(&a), a);
    }

    #[test]
    fn padding() {
        let a = Aabb::new(Vec3::ZERO, Vec3::ONE).padded(0.5);
        assert_eq!(a.min, Vec3::splat(-0.5));
        assert_eq!(a.max, Vec3::splat(1.5));
        assert!(Aabb::EMPTY.padded(1.0).is_empty());
    }

    #[test]
    fn diagonal_length() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(3.0, 4.0, 0.0));
        assert_eq!(b.diagonal(), 5.0);
    }
}
