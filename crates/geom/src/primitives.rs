//! Watertight procedural primitive meshes.
//!
//! All primitives are centered at the origin (unless documented
//! otherwise), consistently outward-oriented, and watertight, so exact
//! moment integration and voxelization apply directly.

use crate::mesh::TriMesh;
use crate::vec3::Vec3;

/// An axis-aligned box with the given extents, centered at the origin.
pub fn box_mesh(extent: Vec3) -> TriMesh {
    assert!(
        extent.x > 0.0 && extent.y > 0.0 && extent.z > 0.0,
        "box extents must be positive: {extent:?}"
    );
    let h = extent * 0.5;
    let v = vec![
        Vec3::new(-h.x, -h.y, -h.z), // 0
        Vec3::new(h.x, -h.y, -h.z),  // 1
        Vec3::new(h.x, h.y, -h.z),   // 2
        Vec3::new(-h.x, h.y, -h.z),  // 3
        Vec3::new(-h.x, -h.y, h.z),  // 4
        Vec3::new(h.x, -h.y, h.z),   // 5
        Vec3::new(h.x, h.y, h.z),    // 6
        Vec3::new(-h.x, h.y, h.z),   // 7
    ];
    let t = vec![
        // bottom (z = -h.z), normal -Z
        [0, 2, 1],
        [0, 3, 2],
        // top (z = +h.z), normal +Z
        [4, 5, 6],
        [4, 6, 7],
        // front (y = -h.y), normal -Y
        [0, 1, 5],
        [0, 5, 4],
        // back (y = +h.y), normal +Y
        [2, 3, 7],
        [2, 7, 6],
        // left (x = -h.x), normal -X
        [0, 4, 7],
        [0, 7, 3],
        // right (x = +h.x), normal +X
        [1, 2, 6],
        [1, 6, 5],
    ];
    TriMesh::new(v, t)
}

/// A UV sphere of radius `r` with `seg` longitudinal segments and
/// `rings` latitudinal rings, centered at the origin.
pub fn uv_sphere(r: f64, seg: usize, rings: usize) -> TriMesh {
    assert!(
        r > 0.0 && seg >= 3 && rings >= 2,
        "degenerate sphere parameters"
    );
    let mut vertices = Vec::with_capacity(2 + seg * (rings - 1));
    let mut triangles = Vec::with_capacity(2 * seg * (rings - 1));

    // Poles.
    vertices.push(Vec3::new(0.0, 0.0, r)); // 0: north
    vertices.push(Vec3::new(0.0, 0.0, -r)); // 1: south

    // Interior rings from north to south.
    for ring in 1..rings {
        let phi = std::f64::consts::PI * ring as f64 / rings as f64;
        let (sp, cp) = phi.sin_cos();
        for s in 0..seg {
            let theta = 2.0 * std::f64::consts::PI * s as f64 / seg as f64;
            let (st, ct) = theta.sin_cos();
            vertices.push(Vec3::new(r * sp * ct, r * sp * st, r * cp));
        }
    }
    let ring_start = |ring: usize| 2 + (ring - 1) * seg;

    // North cap.
    for s in 0..seg {
        let a = ring_start(1) + s;
        let b = ring_start(1) + (s + 1) % seg;
        triangles.push([0, a as u32, b as u32]);
    }
    // Bands.
    for ring in 1..rings - 1 {
        for s in 0..seg {
            let a = ring_start(ring) + s;
            let b = ring_start(ring) + (s + 1) % seg;
            let c = ring_start(ring + 1) + s;
            let d = ring_start(ring + 1) + (s + 1) % seg;
            triangles.push([a as u32, c as u32, d as u32]);
            triangles.push([a as u32, d as u32, b as u32]);
        }
    }
    // South cap.
    for s in 0..seg {
        let a = ring_start(rings - 1) + s;
        let b = ring_start(rings - 1) + (s + 1) % seg;
        triangles.push([1, b as u32, a as u32]);
    }
    TriMesh::new(vertices, triangles)
}

/// A solid cylinder of radius `r` and height `h` along Z, centered at
/// the origin, with `seg` circumferential segments.
pub fn cylinder(r: f64, h: f64, seg: usize) -> TriMesh {
    assert!(
        r > 0.0 && h > 0.0 && seg >= 3,
        "degenerate cylinder parameters"
    );
    let hz = h * 0.5;
    let mut vertices = Vec::with_capacity(2 + 2 * seg);
    vertices.push(Vec3::new(0.0, 0.0, -hz)); // 0: bottom center
    vertices.push(Vec3::new(0.0, 0.0, hz)); // 1: top center
    for s in 0..seg {
        let theta = 2.0 * std::f64::consts::PI * s as f64 / seg as f64;
        let (st, ct) = theta.sin_cos();
        vertices.push(Vec3::new(r * ct, r * st, -hz));
    }
    for s in 0..seg {
        let theta = 2.0 * std::f64::consts::PI * s as f64 / seg as f64;
        let (st, ct) = theta.sin_cos();
        vertices.push(Vec3::new(r * ct, r * st, hz));
    }
    let bot = |s: usize| (2 + s) as u32;
    let top = |s: usize| (2 + seg + s) as u32;
    let mut triangles = Vec::with_capacity(4 * seg);
    for s in 0..seg {
        let sn = (s + 1) % seg;
        // Bottom cap (normal -Z).
        triangles.push([0, bot(sn), bot(s)]);
        // Top cap (normal +Z).
        triangles.push([1, top(s), top(sn)]);
        // Side wall.
        triangles.push([bot(s), bot(sn), top(sn)]);
        triangles.push([bot(s), top(sn), top(s)]);
    }
    TriMesh::new(vertices, triangles)
}

/// A solid cone of base radius `r` and height `h`, with base at
/// `z = -h/2` and apex at `z = +h/2`.
pub fn cone(r: f64, h: f64, seg: usize) -> TriMesh {
    assert!(r > 0.0 && h > 0.0 && seg >= 3, "degenerate cone parameters");
    let hz = h * 0.5;
    let mut vertices = Vec::with_capacity(2 + seg);
    vertices.push(Vec3::new(0.0, 0.0, -hz)); // 0: base center
    vertices.push(Vec3::new(0.0, 0.0, hz)); // 1: apex
    for s in 0..seg {
        let theta = 2.0 * std::f64::consts::PI * s as f64 / seg as f64;
        let (st, ct) = theta.sin_cos();
        vertices.push(Vec3::new(r * ct, r * st, -hz));
    }
    let rim = |s: usize| (2 + s) as u32;
    let mut triangles = Vec::with_capacity(2 * seg);
    for s in 0..seg {
        let sn = (s + 1) % seg;
        triangles.push([0, rim(sn), rim(s)]); // base, normal -Z
        triangles.push([1, rim(s), rim(sn)]); // flank
    }
    TriMesh::new(vertices, triangles)
}

/// A torus with major radius `major` (ring center) and minor radius
/// `minor` (tube), lying in the XY plane, centered at the origin.
pub fn torus(major: f64, minor: f64, seg_major: usize, seg_minor: usize) -> TriMesh {
    assert!(
        major > minor && minor > 0.0 && seg_major >= 3 && seg_minor >= 3,
        "degenerate torus parameters"
    );
    let mut vertices = Vec::with_capacity(seg_major * seg_minor);
    for i in 0..seg_major {
        let u = 2.0 * std::f64::consts::PI * i as f64 / seg_major as f64;
        let (su, cu) = u.sin_cos();
        for j in 0..seg_minor {
            let v = 2.0 * std::f64::consts::PI * j as f64 / seg_minor as f64;
            let (sv, cv) = v.sin_cos();
            let ring = major + minor * cv;
            vertices.push(Vec3::new(ring * cu, ring * su, minor * sv));
        }
    }
    let idx = |i: usize, j: usize| (i % seg_major * seg_minor + j % seg_minor) as u32;
    let mut triangles = Vec::with_capacity(2 * seg_major * seg_minor);
    for i in 0..seg_major {
        for j in 0..seg_minor {
            let a = idx(i, j);
            let b = idx(i + 1, j);
            let c = idx(i + 1, j + 1);
            let d = idx(i, j + 1);
            triangles.push([a, b, c]);
            triangles.push([a, c, d]);
        }
    }
    TriMesh::new(vertices, triangles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::mesh_moments;
    use std::f64::consts::PI;

    #[test]
    fn box_is_watertight_with_correct_volume() {
        let m = box_mesh(Vec3::new(2.0, 3.0, 4.0));
        assert!(m.is_watertight(), "{:?}", m.validate());
        assert!((m.signed_volume() - 24.0).abs() < 1e-12);
        assert!((m.surface_area() - 2.0 * (6.0 + 8.0 + 12.0)).abs() < 1e-12);
    }

    #[test]
    fn sphere_is_watertight_and_converges() {
        let m = uv_sphere(1.0, 32, 16);
        assert!(m.is_watertight(), "{:?}", m.validate());
        let v = m.signed_volume();
        let exact = 4.0 / 3.0 * PI;
        assert!((v - exact).abs() / exact < 0.02, "volume {v} vs {exact}");
        // Finer tessellation gets closer.
        let m2 = uv_sphere(1.0, 64, 32);
        let v2 = m2.signed_volume();
        assert!((v2 - exact).abs() < (v - exact).abs());
    }

    #[test]
    fn cylinder_is_watertight_and_converges() {
        let m = cylinder(1.0, 2.0, 64);
        assert!(m.is_watertight(), "{:?}", m.validate());
        let exact = PI * 2.0;
        assert!((m.signed_volume() - exact).abs() / exact < 0.01);
        // Bounding box symmetric about origin.
        let bb = m.bounding_box();
        assert!(bb.center().approx_eq(Vec3::ZERO, 1e-12));
    }

    #[test]
    fn cone_is_watertight_with_correct_volume() {
        let m = cone(1.0, 3.0, 64);
        assert!(m.is_watertight(), "{:?}", m.validate());
        let exact = PI / 3.0 * 3.0;
        assert!((m.signed_volume() - exact).abs() / exact < 0.01);
        // Cone centroid is at -h/4 from base center... i.e. z = -h/2 + h/4.
        let c = mesh_moments(&m).centroid();
        assert!((c.z - (-1.5 + 0.75)).abs() < 0.02, "centroid z {}", c.z);
    }

    #[test]
    fn torus_is_watertight_and_converges() {
        let m = torus(2.0, 0.5, 48, 24);
        assert!(m.is_watertight(), "{:?}", m.validate());
        // V = 2 π² R r².
        let exact = 2.0 * PI * PI * 2.0 * 0.25;
        let v = m.signed_volume();
        assert!((v - exact).abs() / exact < 0.02, "volume {v} vs {exact}");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_sphere_rejected() {
        let _ = uv_sphere(1.0, 2, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn degenerate_box_rejected() {
        let _ = box_mesh(Vec3::new(1.0, 0.0, 1.0));
    }
}
