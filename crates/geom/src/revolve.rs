//! Solids of revolution.
//!
//! Revolved profiles supply the axisymmetric families of engineering
//! parts (shafts, flanges, bushings, pulleys) that the evaluation
//! corpus needs.

use crate::mesh::TriMesh;
use crate::polygon::{signed_area, P2};
use crate::vec3::Vec3;

/// Radial coordinates below this are treated as lying on the axis.
const AXIS_EPS: f64 = 1e-12;

/// Revolves a closed profile polygon around the Z axis into a
/// watertight solid.
///
/// The profile lives in the (r, z) half-plane: `P2.x` is the radius
/// (must be ≥ 0) and `P2.y` is the height. The profile must be a simple
/// polygon; it is re-oriented counter-clockwise internally (interior on
/// the left), which makes all generated normals face outward. Vertices
/// with `r = 0` become shared on-axis vertices; profile edges lying
/// entirely on the axis generate no geometry.
///
/// `seg` is the number of angular steps (≥ 3).
pub fn revolve(profile: &[P2], seg: usize) -> TriMesh {
    assert!(profile.len() >= 3, "profile needs at least 3 vertices");
    assert!(seg >= 3, "need at least 3 angular segments");
    assert!(
        profile.iter().all(|p| p.x >= -AXIS_EPS),
        "profile radii must be non-negative"
    );

    let mut prof: Vec<P2> = profile.to_vec();
    if signed_area(&prof) < 0.0 {
        prof.reverse();
    }

    let np = prof.len();
    let on_axis: Vec<bool> = prof.iter().map(|p| p.x <= AXIS_EPS).collect();

    let mut vertices: Vec<Vec3> = Vec::new();
    // vertex_index[i] = starting index for profile vertex i; on-axis
    // vertices get a single shared vertex, others get `seg` copies.
    let mut vertex_index = vec![0u32; np];
    for i in 0..np {
        vertex_index[i] = vertices.len() as u32;
        if on_axis[i] {
            vertices.push(Vec3::new(0.0, 0.0, prof[i].y));
        } else {
            for j in 0..seg {
                let t = 2.0 * std::f64::consts::PI * j as f64 / seg as f64;
                let (st, ct) = t.sin_cos();
                vertices.push(Vec3::new(prof[i].x * ct, prof[i].x * st, prof[i].y));
            }
        }
    }
    let at = |i: usize, j: usize| -> u32 {
        if on_axis[i] {
            vertex_index[i]
        } else {
            vertex_index[i] + (j % seg) as u32
        }
    };

    let mut triangles = Vec::new();
    for i in 0..np {
        let i1 = (i + 1) % np;
        if on_axis[i] && on_axis[i1] {
            continue; // edge lies on the axis: no surface
        }
        for j in 0..seg {
            let a = at(i, j);
            let b = at(i, j + 1);
            let c = at(i1, j + 1);
            let d = at(i1, j);
            if on_axis[i] {
                // a == b: single fan triangle.
                triangles.push([a, c, d]);
            } else if on_axis[i1] {
                // c == d: single fan triangle.
                triangles.push([a, b, c]);
            } else {
                triangles.push([a, b, c]);
                triangles.push([a, c, d]);
            }
        }
    }
    TriMesh::new(vertices, triangles)
}

/// Exact volume of the solid of revolution of a profile polygon
/// (Pappus: `V = 2π · A · r̄` where `r̄` is the centroid radius of the
/// profile area). Useful as a test oracle.
pub fn revolved_volume_exact(profile: &[P2]) -> f64 {
    // ∮ via Green's theorem: A = ½|Σ xᵢyⱼ - xⱼyᵢ|, Sx = ∫ x dA.
    let n = profile.len();
    let mut _a2 = 0.0; // twice signed area (kept for clarity of the Green identity)
    let mut sx6 = 0.0; // six times ∫x dA
    for i in 0..n {
        let p = profile[i];
        let q = profile[(i + 1) % n];
        let w = p.x * q.y - q.x * p.y;
        _a2 += w;
        sx6 += (p.x + q.x) * w;
    }
    let sx = sx6 / 6.0;
    2.0 * std::f64::consts::PI * sx.abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::rect_ring;
    use std::f64::consts::PI;

    #[test]
    fn revolved_rectangle_is_cylinder() {
        // Rectangle touching the axis: r ∈ [0, 1], z ∈ [-1, 1].
        let prof = rect_ring(0.0, -1.0, 1.0, 1.0);
        let m = revolve(&prof, 64);
        assert!(m.is_watertight(), "{:?}", m.validate());
        let exact = PI * 2.0;
        let v = m.signed_volume();
        assert!((v - exact).abs() / exact < 0.01, "volume {v} vs {exact}");
    }

    #[test]
    fn revolved_offset_rectangle_is_a_tube() {
        // Rectangle r ∈ [0.5, 1.0], z ∈ [0, 2]: a thick-walled tube.
        let prof = rect_ring(0.5, 0.0, 1.0, 2.0);
        let m = revolve(&prof, 64);
        assert!(m.is_watertight(), "{:?}", m.validate());
        let exact = PI * (1.0 - 0.25) * 2.0;
        let v = m.signed_volume();
        assert!((v - exact).abs() / exact < 0.01);
        // Pappus oracle agrees.
        let pappus = revolved_volume_exact(&prof);
        assert!((pappus - exact).abs() < 1e-12);
    }

    #[test]
    fn revolved_triangle_is_cone() {
        let prof = vec![P2::new(0.0, 0.0), P2::new(1.0, 0.0), P2::new(0.0, 3.0)];
        let m = revolve(&prof, 64);
        assert!(m.is_watertight(), "{:?}", m.validate());
        let exact = PI / 3.0 * 3.0;
        let v = m.signed_volume();
        assert!((v - exact).abs() / exact < 0.01);
    }

    #[test]
    fn stepped_shaft_profile() {
        // A shaft with two diameters: classic lathe part.
        let prof = vec![
            P2::new(0.0, 0.0),
            P2::new(1.0, 0.0),
            P2::new(1.0, 2.0),
            P2::new(0.5, 2.0),
            P2::new(0.5, 4.0),
            P2::new(0.0, 4.0),
        ];
        let m = revolve(&prof, 48);
        assert!(m.is_watertight(), "{:?}", m.validate());
        let exact = PI * 1.0 * 2.0 + PI * 0.25 * 2.0;
        let v = m.signed_volume();
        assert!((v - exact).abs() / exact < 0.01);
        assert!((revolved_volume_exact(&prof) - exact).abs() < 1e-12);
    }

    #[test]
    fn clockwise_profile_is_reoriented() {
        let mut prof = rect_ring(0.0, -1.0, 1.0, 1.0);
        prof.reverse();
        let m = revolve(&prof, 32);
        assert!(m.signed_volume() > 0.0);
        assert!(m.is_watertight());
    }

    #[test]
    fn square_torus_profile() {
        // Profile not touching the axis at all.
        let prof = rect_ring(2.0, -0.25, 2.5, 0.25);
        let m = revolve(&prof, 96);
        assert!(m.is_watertight(), "{:?}", m.validate());
        let exact = revolved_volume_exact(&prof);
        let v = m.signed_volume();
        assert!((v - exact).abs() / exact < 0.01);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_radius_rejected() {
        let prof = vec![P2::new(-0.5, 0.0), P2::new(1.0, 0.0), P2::new(0.0, 1.0)];
        let _ = revolve(&prof, 16);
    }
}
