//! Indexed triangle meshes.
//!
//! [`TriMesh`] is the exchange format of the whole system: procedural
//! generators produce meshes, the voxelizer consumes them, and the exact
//! moment integrator ([`crate::moments`]) evaluates volume integrals
//! over them. Meshes are expected to be *watertight and consistently
//! oriented* (outward normals) wherever solid properties are computed;
//! [`TriMesh::validate`] checks exactly that.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::aabb::Aabb;
use crate::mat3::Mat3;
use crate::vec3::Vec3;

/// An indexed triangle mesh.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TriMesh {
    /// Vertex positions.
    pub vertices: Vec<Vec3>,
    /// Triangles as triples of vertex indices, counter-clockwise when
    /// viewed from outside the solid.
    pub triangles: Vec<[u32; 3]>,
}

/// Problems detected by [`TriMesh::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshDefect {
    /// A triangle refers to a vertex index that does not exist.
    IndexOutOfBounds {
        /// Index of the offending triangle.
        triangle: usize,
    },
    /// A triangle uses the same vertex twice.
    DegenerateTriangle {
        /// Index of the offending triangle.
        triangle: usize,
    },
    /// An undirected edge is used by a number of triangles other than 2;
    /// the mesh is not watertight (1) or is non-manifold (> 2).
    NonManifoldEdge {
        /// First endpoint (smaller vertex index).
        a: u32,
        /// Second endpoint.
        b: u32,
        /// Number of triangles using the edge.
        count: usize,
    },
    /// An edge is traversed twice in the same direction; orientation is
    /// inconsistent.
    InconsistentOrientation {
        /// Edge start in the repeated direction.
        a: u32,
        /// Edge end in the repeated direction.
        b: u32,
    },
}

impl std::fmt::Display for MeshDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshDefect::IndexOutOfBounds { triangle } => {
                write!(f, "triangle {triangle} has an out-of-bounds vertex index")
            }
            MeshDefect::DegenerateTriangle { triangle } => {
                write!(f, "triangle {triangle} repeats a vertex")
            }
            MeshDefect::NonManifoldEdge { a, b, count } => {
                write!(
                    f,
                    "edge ({a},{b}) is used by {count} triangles (expected 2)"
                )
            }
            MeshDefect::InconsistentOrientation { a, b } => {
                write!(f, "edge ({a},{b}) is traversed twice in the same direction")
            }
        }
    }
}

impl TriMesh {
    /// Creates a mesh from raw parts.
    pub fn new(vertices: Vec<Vec3>, triangles: Vec<[u32; 3]>) -> TriMesh {
        TriMesh {
            vertices,
            triangles,
        }
    }

    /// Number of triangles.
    #[inline]
    pub fn num_triangles(&self) -> usize {
        self.triangles.len()
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// The three corner positions of triangle `t`.
    #[inline]
    pub fn triangle(&self, t: usize) -> [Vec3; 3] {
        let [a, b, c] = self.triangles[t];
        [
            self.vertices[a as usize],
            self.vertices[b as usize],
            self.vertices[c as usize],
        ]
    }

    /// Iterates over triangle corner positions.
    pub fn triangle_iter(&self) -> impl Iterator<Item = [Vec3; 3]> + '_ {
        (0..self.triangles.len()).map(|t| self.triangle(t))
    }

    /// Axis-aligned bounding box of all vertices.
    pub fn bounding_box(&self) -> Aabb {
        Aabb::from_points(self.vertices.iter().copied())
    }

    /// Total surface area (sum of triangle areas).
    pub fn surface_area(&self) -> f64 {
        self.triangle_iter()
            .map(|[a, b, c]| 0.5 * (b - a).cross(c - a).norm())
            .sum()
    }

    /// Signed volume via the divergence theorem. Positive for a
    /// watertight mesh with outward-facing normals.
    pub fn signed_volume(&self) -> f64 {
        self.triangle_iter()
            .map(|[a, b, c]| a.dot(b.cross(c)) / 6.0)
            .sum()
    }

    /// Centroid of the *solid* bounded by the mesh (not the vertex
    /// average). Returns `None` if the volume is numerically zero.
    pub fn solid_centroid(&self) -> Option<Vec3> {
        let m = crate::moments::mesh_moments(self);
        if m.m000.abs() < 1e-12 {
            None
        } else {
            Some(m.centroid())
        }
    }

    /// Applies `f` to every vertex in place.
    pub fn map_vertices(&mut self, mut f: impl FnMut(Vec3) -> Vec3) {
        for v in &mut self.vertices {
            *v = f(*v);
        }
    }

    /// Translates the mesh by `t`.
    pub fn translate(&mut self, t: Vec3) {
        self.map_vertices(|v| v + t);
    }

    /// Scales the mesh uniformly about the origin. Negative factors are
    /// rejected (they would flip orientation); use [`TriMesh::flip_orientation`]
    /// explicitly if mirroring is intended.
    pub fn scale_uniform(&mut self, s: f64) {
        assert!(s > 0.0, "scale factor must be positive, got {s}");
        self.map_vertices(|v| v * s);
    }

    /// Rotates the mesh about the origin by a rotation matrix.
    pub fn rotate(&mut self, r: &Mat3) {
        let r = *r;
        self.map_vertices(|v| r * v);
    }

    /// Reverses the winding of every triangle (flips all normals).
    pub fn flip_orientation(&mut self) {
        for t in &mut self.triangles {
            t.swap(1, 2);
        }
    }

    /// Appends another mesh (disjoint union of surfaces).
    pub fn append(&mut self, other: &TriMesh) {
        let base = self.vertices.len() as u32;
        self.vertices.extend_from_slice(&other.vertices);
        self.triangles.extend(
            other
                .triangles
                .iter()
                .map(|t| [t[0] + base, t[1] + base, t[2] + base]),
        );
    }

    /// Checks structural soundness: indices in range, no degenerate
    /// index triples, every undirected edge shared by exactly two
    /// triangles, and opposite traversal directions (consistent
    /// orientation). Returns all defects found.
    pub fn validate(&self) -> Vec<MeshDefect> {
        // hotpath: allow(hot-alloc) — the issue list is the returned artifact, empty for clean meshes
        let mut defects = Vec::new();
        let nv = self.vertices.len() as u32;
        // Directed edge -> count.
        let mut directed: HashMap<(u32, u32), usize> = HashMap::new();
        for (ti, tri) in self.triangles.iter().enumerate() {
            if tri.iter().any(|&i| i >= nv) {
                defects.push(MeshDefect::IndexOutOfBounds { triangle: ti });
                continue;
            }
            if tri[0] == tri[1] || tri[1] == tri[2] || tri[0] == tri[2] {
                defects.push(MeshDefect::DegenerateTriangle { triangle: ti });
                continue;
            }
            for k in 0..3 {
                let a = tri[k];
                let b = tri[(k + 1) % 3];
                *directed.entry((a, b)).or_insert(0) += 1;
            }
        }
        // Aggregate into undirected edges.
        let mut undirected: HashMap<(u32, u32), (usize, usize)> = HashMap::new();
        for (&(a, b), &n) in &directed {
            if n > 1 {
                defects.push(MeshDefect::InconsistentOrientation { a, b });
            }
            let key = if a < b { (a, b) } else { (b, a) };
            let e = undirected.entry(key).or_insert((0, 0));
            if a < b {
                e.0 += n;
            } else {
                e.1 += n;
            }
        }
        for (&(a, b), &(fwd, rev)) in &undirected {
            let count = fwd + rev;
            if count != 2 {
                defects.push(MeshDefect::NonManifoldEdge { a, b, count });
            }
        }
        defects.sort_by_key(|d| match d {
            MeshDefect::IndexOutOfBounds { triangle } => (0, *triangle as u32, 0),
            MeshDefect::DegenerateTriangle { triangle } => (1, *triangle as u32, 0),
            MeshDefect::NonManifoldEdge { a, b, .. } => (2, *a, *b),
            MeshDefect::InconsistentOrientation { a, b } => (3, *a, *b),
        });
        defects
    }

    /// Convenience: `true` if [`TriMesh::validate`] finds no defects.
    pub fn is_watertight(&self) -> bool {
        self.validate().is_empty()
    }

    /// Welds vertices closer than `eps` together and drops triangles
    /// that become degenerate. Useful after procedural generation where
    /// ring seams duplicate vertices.
    pub fn weld(&mut self, eps: f64) {
        // Quantize to a grid of size eps for hashing.
        let inv = 1.0 / eps.max(1e-300);
        let mut map: HashMap<(i64, i64, i64), u32> = HashMap::new();
        let mut remap = vec![0u32; self.vertices.len()];
        let mut new_vertices: Vec<Vec3> = Vec::with_capacity(self.vertices.len());
        for (i, &v) in self.vertices.iter().enumerate() {
            // lint: allow(lossy-cast) — quantization key: saturating cast of a finite scaled coordinate
            let quant = |c: f64| (c * inv).round() as i64;
            let key = (quant(v.x), quant(v.y), quant(v.z));
            let idx = *map.entry(key).or_insert_with(|| {
                new_vertices.push(v);
                (new_vertices.len() - 1) as u32
            });
            remap[i] = idx;
        }
        self.vertices = new_vertices;
        self.triangles = self
            .triangles
            .iter()
            .map(|t| {
                [
                    remap[t[0] as usize],
                    remap[t[1] as usize],
                    remap[t[2] as usize],
                ]
            })
            .filter(|t| t[0] != t[1] && t[1] != t[2] && t[0] != t[2])
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives;

    /// A unit tetrahedron with outward-facing normals.
    fn tetrahedron() -> TriMesh {
        let v = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        let t = vec![[0, 2, 1], [0, 1, 3], [0, 3, 2], [1, 2, 3]];
        TriMesh::new(v, t)
    }

    #[test]
    fn tetrahedron_volume_and_area() {
        let m = tetrahedron();
        assert!((m.signed_volume() - 1.0 / 6.0).abs() < 1e-15);
        // 3 right triangles of area 1/2 plus the slanted face sqrt(3)/2.
        let expected = 1.5 + 3f64.sqrt() / 2.0;
        assert!((m.surface_area() - expected).abs() < 1e-14);
        assert!(m.is_watertight());
    }

    #[test]
    fn flipped_orientation_negates_volume() {
        let mut m = tetrahedron();
        let v = m.signed_volume();
        m.flip_orientation();
        assert!((m.signed_volume() + v).abs() < 1e-15);
    }

    #[test]
    fn translation_preserves_volume_and_area() {
        let mut m = tetrahedron();
        let v = m.signed_volume();
        let a = m.surface_area();
        m.translate(Vec3::new(10.0, -3.0, 2.5));
        assert!((m.signed_volume() - v).abs() < 1e-12);
        assert!((m.surface_area() - a).abs() < 1e-12);
    }

    #[test]
    fn scaling_scales_volume_cubically() {
        let mut m = tetrahedron();
        let v = m.signed_volume();
        m.scale_uniform(2.0);
        assert!((m.signed_volume() - 8.0 * v).abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_volume() {
        let mut m = tetrahedron();
        let v = m.signed_volume();
        m.rotate(&Mat3::rotation_axis_angle(Vec3::new(1.0, 2.0, 3.0), 1.1));
        assert!((m.signed_volume() - v).abs() < 1e-12);
        assert!(m.is_watertight());
    }

    #[test]
    fn validate_detects_open_mesh() {
        let mut m = tetrahedron();
        m.triangles.pop();
        let defects = m.validate();
        assert!(!defects.is_empty());
        assert!(defects
            .iter()
            .all(|d| matches!(d, MeshDefect::NonManifoldEdge { count: 1, .. })));
    }

    #[test]
    fn validate_detects_bad_index_and_degenerate() {
        let m = TriMesh::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 5]]);
        assert!(matches!(
            m.validate()[0],
            MeshDefect::IndexOutOfBounds { triangle: 0 }
        ));
        let m = TriMesh::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 1]]);
        assert!(matches!(
            m.validate()[0],
            MeshDefect::DegenerateTriangle { triangle: 0 }
        ));
    }

    #[test]
    fn validate_detects_inconsistent_orientation() {
        let mut m = tetrahedron();
        // Flip one face only.
        m.triangles[0].swap(1, 2);
        let defects = m.validate();
        assert!(defects
            .iter()
            .any(|d| matches!(d, MeshDefect::InconsistentOrientation { .. })));
    }

    #[test]
    fn append_offsets_indices() {
        let mut a = tetrahedron();
        let b = tetrahedron();
        let va = a.signed_volume();
        a.append(&b);
        assert_eq!(a.num_vertices(), 8);
        assert_eq!(a.num_triangles(), 8);
        // Two coincident tetrahedra double the signed volume.
        assert!((a.signed_volume() - 2.0 * va).abs() < 1e-12);
    }

    #[test]
    fn weld_merges_duplicate_vertices() {
        // Two triangles sharing an edge but with duplicated vertices.
        let m0 = TriMesh::new(
            vec![
                Vec3::ZERO,
                Vec3::X,
                Vec3::Y,
                Vec3::X, // duplicate of 1
                Vec3::Y, // duplicate of 2
                Vec3::new(1.0, 1.0, 0.0),
            ],
            vec![[0, 1, 2], [3, 5, 4]],
        );
        let mut m = m0;
        m.weld(1e-9);
        assert_eq!(m.num_vertices(), 4);
        assert_eq!(m.num_triangles(), 2);
    }

    #[test]
    fn box_centroid() {
        let m = primitives::box_mesh(Vec3::new(2.0, 4.0, 6.0));
        let c = m.solid_centroid().unwrap();
        // box_mesh is centered at origin.
        assert!(c.approx_eq(Vec3::ZERO, 1e-12));
    }
}
