//! Software rendering of meshes to images.
//!
//! The paper's SERVER tier has a "3D View Generation" module that
//! produces triangulated views of search results for the interface
//! (via Java3D/ACIS). This module plays that role headlessly: an
//! orthographic z-buffer rasterizer with Lambertian shading that
//! writes portable PPM/PGM images any viewer can open.

use std::io::Write;
use std::path::Path;

use crate::mesh::TriMesh;
use crate::vec3::Vec3;

/// A simple 8-bit grayscale image.
#[derive(Debug, Clone)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major pixel intensities (0 = black).
    pub pixels: Vec<u8>,
}

impl Image {
    /// Creates a black image.
    pub fn new(width: usize, height: usize) -> Image {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image {
            width,
            height,
            pixels: vec![0; width * height],
        }
    }

    /// Pixel intensity at (x, y); (0, 0) is the top-left corner.
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.pixels[y * self.width + x]
    }

    /// Fraction of pixels that are non-black (coverage).
    pub fn coverage(&self) -> f64 {
        let lit = self.pixels.iter().filter(|&&p| p > 0).count();
        lit as f64 / self.pixels.len() as f64
    }

    /// Writes the image as binary PGM (P5).
    pub fn write_pgm<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write!(w, "P5\n{} {}\n255\n", self.width, self.height)?;
        w.write_all(&self.pixels)
    }

    /// Saves the image as a `.pgm` file.
    pub fn save_pgm(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_pgm(&mut f)
    }
}

/// Rendering configuration.
#[derive(Debug, Clone, Copy)]
pub struct RenderParams {
    /// Output width in pixels.
    pub width: usize,
    /// Output height in pixels.
    pub height: usize,
    /// View direction (from the camera toward the model); the camera
    /// is orthographic.
    pub view_dir: Vec3,
    /// Light direction (from the light toward the model).
    pub light_dir: Vec3,
    /// Fraction of the frame the model's bounding sphere fills.
    pub fill: f64,
}

impl Default for RenderParams {
    fn default() -> Self {
        RenderParams {
            width: 256,
            height: 256,
            view_dir: Vec3::new(-0.5, -0.7, -0.6),
            light_dir: Vec3::new(-0.3, -0.5, -0.8),
            fill: 0.85,
        }
    }
}

/// Saturating conversion of a finite pixel coordinate to an index:
/// negatives clamp to 0, and float → usize `as` saturates at the top.
#[inline]
fn px(coord: f64) -> usize {
    // lint: allow(lossy-cast) — projected coordinate is finite and clamped non-negative
    coord.max(0.0) as usize
}

/// Renders a mesh with orthographic projection, a z-buffer, and
/// two-sided Lambertian shading (search-result thumbnails do not care
/// about winding).
pub fn render(mesh: &TriMesh, params: &RenderParams) -> Image {
    let mut img = Image::new(params.width, params.height);
    if mesh.num_triangles() == 0 {
        return img;
    }

    // Camera basis: view direction w, plus any orthonormal u, v.
    let w = params
        .view_dir
        .normalized()
        .unwrap_or(Vec3::new(0.0, 0.0, -1.0));
    let pick = if w.x.abs() < 0.9 { Vec3::X } else { Vec3::Y };
    // lint: allow(unwrap) — pick is chosen orthogonal-ish to w, so the cross product is nonzero
    let u = w.cross(pick).normalized().expect("non-parallel basis pick");
    let v = w.cross(u);

    // Fit the model into the frame.
    let bb = mesh.bounding_box();
    let center = bb.center();
    let radius = bb.diagonal() * 0.5;
    let half_extent = radius / params.fill.clamp(0.05, 1.0);
    let scale = (params.width.min(params.height) as f64) * 0.5 / half_extent.max(1e-12);

    let project = |p: Vec3| -> (f64, f64, f64) {
        let d = p - center;
        (
            params.width as f64 * 0.5 + d.dot(u) * scale,
            params.height as f64 * 0.5 - d.dot(v) * scale,
            d.dot(w), // depth along the view direction (larger = farther)
        )
    };

    let light = params.light_dir.normalized().unwrap_or(w);
    let mut zbuf = vec![f64::INFINITY; params.width * params.height];

    for [a, b, c] in mesh.triangle_iter() {
        let normal = match (b - a).cross(c - a).normalized() {
            Some(n) => n,
            None => continue, // degenerate triangle
        };
        // Two-sided shading with a bit of ambient.
        let intensity = (0.2 + 0.8 * normal.dot(light).abs()).clamp(0.0, 1.0);
        // lint: allow(lossy-cast) — intensity is clamped to [0, 1], so the scaled value fits u8
        let shade = (intensity * 255.0) as u8;

        let (ax, ay, az) = project(a);
        let (bx, by, bz) = project(b);
        let (cx, cy, cz) = project(c);

        // Bounding box clipped to the frame.
        let min_x = px(ax.min(bx).min(cx).floor());
        let max_x = px(ax.max(bx).max(cx).ceil()).min(params.width - 1);
        let min_y = px(ay.min(by).min(cy).floor());
        let max_y = px(ay.max(by).max(cy).ceil()).min(params.height - 1);
        if min_x > max_x || min_y > max_y {
            continue;
        }

        let area = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax);
        if area.abs() < 1e-12 {
            continue; // edge-on
        }
        for y in min_y..=max_y {
            for x in min_x..=max_x {
                let (px, py) = (x as f64 + 0.5, y as f64 + 0.5);
                // Barycentric coordinates in screen space.
                let w0 = ((bx - ax) * (py - ay) - (by - ay) * (px - ax)) / area;
                let w1 = ((px - ax) * (cy - ay) - (py - ay) * (cx - ax)) / area;
                let w2 = 1.0 - w0 - w1;
                // Note: w0 is the weight of c, w1 of b, w2 of a.
                if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                    continue;
                }
                let depth = w2 * az + w1 * bz + w0 * cz;
                let idx = y * params.width + x;
                if depth < zbuf[idx] {
                    zbuf[idx] = depth;
                    img.pixels[idx] = shade;
                }
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives;

    #[test]
    fn sphere_renders_a_disk() {
        let mesh = primitives::uv_sphere(1.0, 24, 12);
        let img = render(&mesh, &RenderParams::default());
        // The frame is fitted to the bounding *box* diagonal (√3·r for
        // a sphere), so the projected disk covers roughly
        // π/4 · (0.85/√3)² ≈ 0.19 of the frame.
        let cov = img.coverage();
        assert!(cov > 0.12 && cov < 0.30, "coverage {cov}");
        // Center pixel is lit; corner pixel is background.
        assert!(img.get(128, 128) > 0);
        assert_eq!(img.get(2, 2), 0);
    }

    #[test]
    fn nearer_surface_wins_depth_test() {
        // Two parallel plates; the nearer one (along the view) must
        // own the center pixel. View direction -z means the plate with
        // larger z is nearer.
        let mut near = primitives::box_mesh(Vec3::new(2.0, 2.0, 0.1));
        near.translate(Vec3::new(0.0, 0.0, 1.0));
        let mut far = primitives::box_mesh(Vec3::new(2.0, 2.0, 0.1));
        far.translate(Vec3::new(0.0, 0.0, -1.0));

        let params = RenderParams {
            view_dir: Vec3::new(0.0, 0.0, -1.0),
            light_dir: Vec3::new(0.3, 0.0, -1.0),
            ..Default::default()
        };
        // Render each alone to learn its shade at center.
        let near_only = render(&near, &params);
        let shade_near = near_only.get(128, 128);

        let mut both = near.clone();
        both.append(&far);
        let img = render(&both, &params);
        assert_eq!(img.get(128, 128), shade_near, "far plate leaked through");
    }

    #[test]
    fn rod_occupies_less_than_plate() {
        let rod = render(
            &primitives::cylinder(0.2, 6.0, 16),
            &RenderParams::default(),
        );
        let plate = render(
            &primitives::box_mesh(Vec3::new(3.0, 3.0, 0.2)),
            &RenderParams::default(),
        );
        assert!(rod.coverage() < plate.coverage());
        assert!(rod.coverage() > 0.01, "rod invisible");
    }

    #[test]
    fn pgm_output_is_well_formed() {
        let img = render(
            &primitives::uv_sphere(1.0, 12, 6),
            &RenderParams {
                width: 64,
                height: 48,
                ..Default::default()
            },
        );
        let mut buf = Vec::new();
        img.write_pgm(&mut buf).unwrap();
        let header = b"P5\n64 48\n255\n";
        assert!(buf.starts_with(header));
        assert_eq!(buf.len(), header.len() + 64 * 48);
    }

    #[test]
    fn empty_mesh_renders_black() {
        let img = render(&TriMesh::default(), &RenderParams::default());
        assert_eq!(img.coverage(), 0.0);
    }
}
