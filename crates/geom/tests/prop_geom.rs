//! Property-based tests for the geometry substrate.

use proptest::prelude::*;

use tdess_geom::eigen::{sym3_eigen, sym_eigenvalues};
use tdess_geom::extrude::extrude;
use tdess_geom::mat3::Mat3;
use tdess_geom::mesh::TriMesh;
use tdess_geom::moments::mesh_moments;
use tdess_geom::polygon::{regular_ngon, triangulate, triangulation_area, Polygon, P2};
use tdess_geom::primitives;
use tdess_geom::vec3::Vec3;

fn arb_unit_axis() -> impl Strategy<Value = Vec3> {
    (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0).prop_filter_map("axis too short", |(x, y, z)| {
        Vec3::new(x, y, z).normalized()
    })
}

fn arb_rotation() -> impl Strategy<Value = Mat3> {
    (arb_unit_axis(), 0.0f64..std::f64::consts::TAU)
        .prop_map(|(axis, angle)| Mat3::rotation_axis_angle(axis, angle))
}

fn arb_box() -> impl Strategy<Value = TriMesh> {
    (0.1f64..5.0, 0.1f64..5.0, 0.1f64..5.0)
        .prop_map(|(x, y, z)| primitives::box_mesh(Vec3::new(x, y, z)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rotations preserve volume, surface area, and the eigenvalues of
    /// the central second-moment matrix.
    #[test]
    fn rigid_motion_invariants(mesh in arb_box(), r in arb_rotation(),
                               tx in -10.0f64..10.0, ty in -10.0f64..10.0, tz in -10.0f64..10.0) {
        let m0 = mesh_moments(&mesh).central();
        let e0 = sym3_eigen(&m0.second_moment_matrix());

        let mut moved = mesh.clone();
        moved.rotate(&r);
        moved.translate(Vec3::new(tx, ty, tz));
        let m1 = mesh_moments(&moved).central();
        let e1 = sym3_eigen(&m1.second_moment_matrix());

        prop_assert!((m0.m000 - m1.m000).abs() < 1e-8 * (1.0 + m0.m000.abs()));
        prop_assert!((mesh.surface_area() - moved.surface_area()).abs() < 1e-8 * (1.0 + mesh.surface_area()));
        prop_assert!(e0.values.approx_eq(e1.values, 1e-6 * (1.0 + e0.values.x.abs())));
    }

    /// The analytic rotation rule for moments matches recomputation.
    #[test]
    fn moment_rotation_rule(mesh in arb_box(), r in arb_rotation()) {
        let m = mesh_moments(&mesh);
        let mut rotated = mesh.clone();
        rotated.rotate(&r);
        let direct = mesh_moments(&rotated);
        let rule = m.rotated(&r);
        prop_assert!((direct.m200 - rule.m200).abs() < 1e-8 * (1.0 + rule.m200.abs()));
        prop_assert!((direct.m110 - rule.m110).abs() < 1e-8 * (1.0 + rule.m110.abs()));
        prop_assert!((direct.m101 - rule.m101).abs() < 1e-8 * (1.0 + rule.m101.abs()));
    }

    /// Scaling rule: m_lmn scales with s^(l+m+n+3).
    #[test]
    fn moment_scaling_rule(mesh in arb_box(), s in 0.1f64..4.0) {
        let m = mesh_moments(&mesh);
        let mut scaled = mesh.clone();
        scaled.scale_uniform(s);
        let direct = mesh_moments(&scaled);
        let rule = m.scaled(s);
        prop_assert!((direct.m000 - rule.m000).abs() < 1e-9 * (1.0 + rule.m000.abs()));
        prop_assert!((direct.m200 - rule.m200).abs() < 1e-9 * (1.0 + rule.m200.abs()));
    }

    /// Triangulating a random convex polygon covers its area exactly
    /// and emits n-2 triangles.
    #[test]
    fn convex_triangulation_area(n in 3usize..40, r in 0.1f64..10.0, phase in 0.0f64..6.2) {
        let p = Polygon::simple(regular_ngon(n, r, 0.0, 0.0, phase));
        let tris = triangulate(&p);
        prop_assert_eq!(tris.len(), n - 2);
        let ta = triangulation_area(&p, &tris);
        prop_assert!((ta - p.area()).abs() < 1e-9 * (1.0 + p.area()));
    }

    /// Plates with 1-4 random non-overlapping holes triangulate to the
    /// correct area, and their extrusions are watertight.
    #[test]
    fn holed_plate_triangulation(
        k in 1usize..5,
        hn in 4usize..12,
        hr in 0.05f64..0.18,
        phase in 0.0f64..6.0,
    ) {
        // Hole centers on a fixed grid keep them disjoint for any radius < 0.25.
        let centers = [(-0.5, -0.5), (0.5, -0.5), (0.5, 0.5), (-0.5, 0.5)];
        let holes: Vec<Vec<P2>> = centers[..k]
            .iter()
            .map(|&(cx, cy)| regular_ngon(hn, hr, cx, cy, phase))
            .collect();
        let p = Polygon::new(
            tdess_geom::polygon::rect_ring(-1.0, -1.0, 1.0, 1.0),
            holes,
        );
        let tris = triangulate(&p);
        let ta = triangulation_area(&p, &tris);
        prop_assert!((ta - p.area()).abs() < 1e-9 * (1.0 + p.area()),
                     "area {} vs {}", ta, p.area());

        let mesh = extrude(&p, 0.5);
        prop_assert!(mesh.is_watertight(), "{:?}", mesh.validate());
        prop_assert!((mesh.signed_volume() - 0.5 * p.area()).abs() < 1e-8);
    }

    /// Jacobi eigenvalues of R D Rᵀ recover the diagonal.
    #[test]
    fn eigen_recovers_spectrum(r in arb_rotation(),
                               a in -10.0f64..10.0, b in -10.0f64..10.0, c in -10.0f64..10.0) {
        let d = Mat3::diagonal(Vec3::new(a, b, c));
        let m = r * d * r.transpose();
        let e = sym3_eigen(&m);
        let mut expected = [a, b, c];
        expected.sort_by(|x, y| y.partial_cmp(x).unwrap());
        prop_assert!((e.values.x - expected[0]).abs() < 1e-8);
        prop_assert!((e.values.y - expected[1]).abs() < 1e-8);
        prop_assert!((e.values.z - expected[2]).abs() < 1e-8);
    }

    /// Eigenvalue sum equals trace and the spectrum is rotation-order
    /// independent for random symmetric matrices up to 10×10.
    #[test]
    fn nxn_eigen_trace(n in 1usize..10, seed in 0u64..1000) {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        let mut m = vec![0.0; n * n];
        for r in 0..n {
            for c in r..n {
                let v = next();
                m[r * n + c] = v;
                m[c * n + r] = v;
            }
        }
        let trace: f64 = (0..n).map(|i| m[i * n + i]).sum();
        let vals = sym_eigenvalues(&m, n);
        prop_assert_eq!(vals.len(), n);
        let sum: f64 = vals.iter().sum();
        prop_assert!((sum - trace).abs() < 1e-8 * (1.0 + trace.abs()));
        // Sorted descending.
        for w in vals.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    /// STL binary round-trip preserves triangle count and volume to
    /// f32 precision.
    #[test]
    fn stl_roundtrip(mesh in arb_box()) {
        let mut buf = Vec::new();
        tdess_geom::io::write_stl_binary(&mesh, &mut buf).unwrap();
        let got = tdess_geom::io::read_stl(&mut buf.as_slice(), 1e-5).unwrap();
        prop_assert_eq!(got.num_triangles(), mesh.num_triangles());
        let rel = (got.signed_volume() - mesh.signed_volume()).abs() / mesh.signed_volume();
        prop_assert!(rel < 1e-4);
    }
}
