//! Log-linear (HDR-style) latency histograms.
//!
//! A [`Histogram`] is a fixed array of atomic bucket counters covering
//! the full `u64` nanosecond range. Each power-of-two octave is split
//! into `2^SUB_BITS = 16` equal sub-buckets, so any recorded value is
//! attributed to a bucket whose width is at most 1/16th of the value:
//! reported quantiles carry at most ~6.25% relative error. Recording is
//! a single relaxed `fetch_add` plus min/max/sum updates — cheap enough
//! to leave on in production and safe to call from many threads.
//!
//! [`HistogramSnapshot`] is the immutable, mergeable read-side view:
//! shards recorded independently (per thread, per process) merge
//! exactly, with no lost counts and exact min/max/sum.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` equal sub-buckets, bounding quantile relative error at
/// `1 / 2^SUB_BITS` (6.25%).
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave (16).
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Total bucket count covering all of `0..=u64::MAX` nanoseconds:
/// 16 exact unit buckets plus 60 octaves of 16 sub-buckets.
const NUM_BUCKETS: usize = 976;

/// Maps a nanosecond value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        // Values below 16ns get exact unit buckets.
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // 4..=63 here
        let shift = msb - SUB_BITS;
        let octave = (msb - SUB_BITS + 1) as usize;
        (octave << SUB_BITS) + ((v >> shift) as usize & (SUB_COUNT as usize - 1))
    }
}

/// Inclusive nanosecond range `[lo, hi]` covered by bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    let sub = SUB_COUNT as usize;
    if i < sub {
        (i as u64, i as u64)
    } else {
        let octave = i / sub;
        let s = (i % sub) as u64;
        let shift = (octave - 1) as u32;
        let lo = (SUB_COUNT + s) << shift;
        // The last bucket's upper bound is exactly u64::MAX; saturate
        // rather than wrap if the arithmetic ever changes.
        let hi = lo.saturating_add((1u64 << shift) - 1);
        (lo, hi)
    }
}

/// A concurrent log-linear histogram of durations in nanoseconds.
///
/// `const`-constructible so it can back `static` per-stage registries;
/// all operations take `&self` and use relaxed atomics.
pub struct Histogram {
    counts: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    /// Initialized to `u64::MAX`; still `u64::MAX` means "no samples".
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Histogram {
        // An `AtomicU64` const used purely as an array initializer;
        // each array element is its own independent atomic.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            counts: [ZERO; NUM_BUCKETS],
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one duration sample.
    pub fn record(&self, elapsed: Duration) {
        self.record_nanos(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one sample given directly in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        // Each cell is an independent statistic updated by an atomic
        // RMW, so no increment is ever lost; nothing non-atomic is
        // published through these cells, and cross-cell consistency is
        // explicitly not promised (see `snapshot`). Relaxed is the
        // correct ordering on this hot path.
        self.counts[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed); // audit: ordering(independent stat cell, atomic RMW, no data published)
        self.sum.fetch_add(nanos, Ordering::Relaxed); // audit: ordering(independent stat cell, atomic RMW, no data published)
        self.min.fetch_min(nanos, Ordering::Relaxed); // audit: ordering(independent stat cell, atomic RMW, no data published)
        self.max.fetch_max(nanos, Ordering::Relaxed); // audit: ordering(independent stat cell, atomic RMW, no data published)
    }

    /// Takes an immutable snapshot of the current counts.
    ///
    /// Concurrent recorders may land between bucket loads; every count
    /// recorded before the call is included, and the snapshot is
    /// internally consistent (its total is the sum of its buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed)) // audit: ordering(loose snapshot is documented; totals recomputed from the loaded buckets)
            // hotpath: allow(hot-alloc) — the snapshot is the returned artifact
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum_nanos: self.sum.load(Ordering::Relaxed), // audit: ordering(loose snapshot is documented; monotone counter, no data guarded)
            min_nanos: self.min.load(Ordering::Relaxed), // audit: ordering(loose snapshot is documented; monotone watermark, no data guarded)
            max_nanos: self.max.load(Ordering::Relaxed), // audit: ordering(loose snapshot is documented; monotone watermark, no data guarded)
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count())
            .field("min_nanos", &snap.min_nanos())
            .field("max_nanos", &snap.max_nanos())
            .field("sum_nanos", &snap.sum_nanos())
            .finish()
    }
}

/// An immutable, mergeable view of a [`Histogram`] at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum_nanos: u64,
    /// `u64::MAX` when `count == 0`.
    min_nanos: u64,
    max_nanos: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (zero samples), useful as a merge identity.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum_nanos: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum in nanoseconds (0 when empty).
    pub fn min_nanos(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min_nanos
        }
    }

    /// Exact maximum in nanoseconds (0 when empty).
    pub fn max_nanos(&self) -> u64 {
        self.max_nanos
    }

    /// Exact sum of all samples in nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos
    }

    /// Exact minimum in seconds (0.0 when empty).
    pub fn min_seconds(&self) -> f64 {
        self.min_nanos() as f64 / 1e9
    }

    /// Exact maximum in seconds (0.0 when empty).
    pub fn max_seconds(&self) -> f64 {
        self.max_nanos as f64 / 1e9
    }

    /// Exact sum in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_nanos as f64 / 1e9
    }

    /// Exact mean in seconds (0.0 when empty).
    pub fn mean_seconds(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64 / 1e9
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) in nanoseconds.
    ///
    /// Returns the upper bound of the bucket holding the `ceil(q*n)`-th
    /// smallest sample, clamped to the exact observed `[min, max]`; the
    /// result is at most one bucket width (≤6.25% relative) above the
    /// exact quantile. Returns 0 when empty.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; q=0 maps to rank 1.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = bucket_bounds(i);
                return hi.clamp(self.min_nanos, self.max_nanos);
            }
        }
        self.max_nanos
    }

    /// The `q`-quantile in seconds. See [`quantile_nanos`].
    ///
    /// [`quantile_nanos`]: HistogramSnapshot::quantile_nanos
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        self.quantile_nanos(q) as f64 / 1e9
    }

    /// Merges another snapshot into this one; counts add exactly and
    /// min/max/sum combine losslessly.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.min_nanos = self.min_nanos.min(other.min_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Iterates non-empty buckets as `(upper_bound_nanos, count)` in
    /// ascending bucket order — the raw material for Prometheus
    /// cumulative `_bucket` series.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bounds(i).1, c))
    }
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_roundtrip() {
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            1_000,
            1_000_000,
            1_000_000_000,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} not in [{lo}, {hi}] (bucket {i})");
        }
    }

    #[test]
    fn bucket_bounds_tile_the_u64_range() {
        // Consecutive buckets must be contiguous and ordered.
        let mut prev_hi: Option<u64> = None;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            if let Some(p) = prev_hi {
                assert_eq!(lo, p.wrapping_add(1), "gap before bucket {i}");
            }
            prev_hi = Some(hi);
        }
        assert_eq!(prev_hi, Some(u64::MAX));
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for &v in &[100u64, 1_000, 65_537, 10_000_000, 123_456_789_000] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            let width = hi - lo;
            assert!(
                (width as f64) <= (lo as f64) / 16.0 + 1.0,
                "bucket [{lo},{hi}] too wide for {v}"
            );
        }
    }

    #[test]
    fn empty_snapshot_reports_zeroes() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.min_nanos(), 0);
        assert_eq!(s.max_nanos(), 0);
        assert_eq!(s.quantile_nanos(0.5), 0);
        assert_eq!(s.mean_seconds(), 0.0);
    }

    #[test]
    fn min_max_sum_are_exact() {
        let h = Histogram::new();
        for &n in &[5_000u64, 1_000_000, 250, 99_999_999] {
            h.record_nanos(n);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 4);
        assert_eq!(s.min_nanos(), 250);
        assert_eq!(s.max_nanos(), 99_999_999);
        assert_eq!(s.sum_nanos(), 5_000 + 1_000_000 + 250 + 99_999_999);
    }

    #[test]
    fn quantiles_are_monotonic_and_clamped() {
        let h = Histogram::new();
        for n in 1..=1000u64 {
            h.record_nanos(n * 1_000);
        }
        let s = h.snapshot();
        let p50 = s.quantile_nanos(0.5);
        let p90 = s.quantile_nanos(0.9);
        let p99 = s.quantile_nanos(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p99 <= s.max_nanos());
        assert!(s.quantile_nanos(0.0) >= s.min_nanos());
        assert_eq!(s.quantile_nanos(1.0), s.max_nanos());
    }

    #[test]
    fn merge_is_exact() {
        let a = Histogram::new();
        let b = Histogram::new();
        for n in 1..=100u64 {
            a.record_nanos(n * 10);
            b.record_nanos(n * 1_000);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 200);
        assert_eq!(m.min_nanos(), 10);
        assert_eq!(m.max_nanos(), 100_000);
        let direct = Histogram::new();
        for n in 1..=100u64 {
            direct.record_nanos(n * 10);
            direct.record_nanos(n * 1_000);
        }
        assert_eq!(m, direct.snapshot());
    }

    #[test]
    fn buckets_iterator_sums_to_count() {
        let h = Histogram::new();
        for n in 0..500u64 {
            h.record_nanos(n * 7 + 3);
        }
        let s = h.snapshot();
        let total: u64 = s.buckets().map(|(_, c)| c).sum();
        assert_eq!(total, s.count());
        // Upper bounds are strictly increasing.
        let uppers: Vec<u64> = s.buckets().map(|(u, _)| u).collect();
        for w in uppers.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
