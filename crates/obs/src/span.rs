//! Hierarchical request spans: one tree per request, riding the same
//! thread-local ambient state as the trace-id machinery.
//!
//! A request handler opens a root span with [`begin_request`]; every
//! [`StageTimer`](crate::StageTimer) that fires while the trace is
//! active contributes a child span automatically (parented on the
//! innermost still-open span, so nested stages nest in the tree). Code
//! can attach key/value annotations to the innermost span with
//! [`annotate`] — the cache tier uses this for hit/miss/coalesced
//! outcomes — and cross-request links (a singleflight follower
//! pointing at the leader's extraction span) are built from
//! [`current_span_link`].
//!
//! [`TraceGuard::finish`] freezes the tree into a plain-data
//! [`RequestTrace`], which the flight recorder
//! ([`FlightRecorder`](crate::FlightRecorder)) retains under its
//! tail-sampling policy and the export layer
//! ([`chrome_trace_json`](crate::chrome_trace_json)) serializes.
//!
//! Span collection is independent of the `TDESS_LOG` level: a trace is
//! recorded if and only if a root span is open on the thread, so the
//! server can keep per-request waterfalls while event logging is off.
//! The cost when no trace is active is one thread-local flag read per
//! stage timer.

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

/// Hard cap on spans kept per trace; beyond it spans are counted in
/// [`RequestTrace::dropped_spans`] instead of recorded.
pub const MAX_SPANS_PER_TRACE: usize = 256;

/// Hard cap on annotations per span.
pub const MAX_TAGS_PER_SPAN: usize = 16;

/// Initial span/stack capacity: covers a multi-step query (extract's
/// five stages + per-step index/combine/rerank) without regrowth.
const SPAN_PREALLOC: usize = 16;

/// An annotation value. Variants avoid forcing an allocation at the
/// instrumentation site: values are stringified once, at
/// [`TraceGuard::finish`], off the per-stage path.
#[derive(Debug, Clone)]
pub enum TagValue {
    /// An unsigned integer (counts, ids, byte sizes).
    U64(u64),
    /// A static string (outcome labels like `"hit"`).
    Str(&'static str),
    /// A shared string (trace ids crossing request boundaries).
    Shared(Arc<str>),
}

impl std::fmt::Display for TagValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TagValue::U64(v) => write!(f, "{v}"),
            TagValue::Str(s) => f.write_str(s),
            TagValue::Shared(s) => f.write_str(s),
        }
    }
}

/// Span-open duration sentinel: replaced by the real duration on
/// close, or by (trace end − span start) for spans still open when the
/// trace finishes.
const DUR_OPEN: u64 = u64::MAX;

/// A span under construction. Ids are 1-based indices into
/// `ActiveTrace::spans`; parent 0 means "root has no parent".
#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    parent: u32,
    start_us: u64,
    dur_us: u64,
    tags: Vec<(&'static str, TagValue)>,
}

/// The per-thread trace being collected for the current request.
#[derive(Debug)]
struct ActiveTrace {
    trace_id: Arc<str>,
    name: &'static str,
    ts_unix_us: u64,
    t0: Instant,
    spans: Vec<ActiveSpan>,
    /// Open-span stack; `stack[0]` is always the root span id 1.
    stack: Vec<u32>,
    error: bool,
    dropped: u32,
}

thread_local! {
    static CURRENT: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
    /// Mirror of `CURRENT.is_some()`, readable without a borrow — the
    /// only cost stage timers pay when no trace is collecting.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// True when this thread is collecting a span tree.
pub fn trace_active() -> bool {
    ACTIVE.with(Cell::get)
}

fn unix_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Closes the root span when the request handler forgets to (early
/// return, panic unwind): [`TraceGuard::finish`] is the intended exit,
/// this drop is the safety net that clears the thread-local state.
#[derive(Debug)]
pub struct TraceGuard {
    armed: bool,
}

impl TraceGuard {
    /// A guard that owns no trace (nested `begin_request`).
    fn disarmed() -> TraceGuard {
        TraceGuard { armed: false }
    }

    /// Ends the request: freezes the span tree into a [`RequestTrace`]
    /// and clears the thread-local collection state. Returns `None`
    /// when the guard was disarmed (a trace was already active when it
    /// was created). Spans still open — including the root — are
    /// closed at the trace end time.
    pub fn finish(mut self, error: bool) -> Option<RequestTrace> {
        if !self.armed {
            return None;
        }
        self.armed = false;
        ACTIVE.with(|c| c.set(false));
        let mut t = CURRENT.with(|c| c.borrow_mut().take())?;
        let dur_us = t.t0.elapsed().as_micros() as u64;
        let error = error || t.error;
        let mut spans = Vec::with_capacity(t.spans.len().min(MAX_SPANS_PER_TRACE));
        for s in t.spans.drain(..) {
            let mut rec = freeze_span(s, dur_us);
            rec.id = spans.len() as u32 + 1;
            spans.push(rec);
        }
        Some(RequestTrace {
            trace_id: (*t.trace_id).into(),
            name: t.name.into(),
            ts_unix_us: t.ts_unix_us,
            dur_us,
            error,
            retained: String::default(),
            dropped_spans: t.dropped,
            spans,
        })
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if self.armed {
            ACTIVE.with(|c| c.set(false));
            CURRENT.with(|c| *c.borrow_mut() = None);
        }
    }
}

/// Converts one in-flight span to its frozen record, resolving the
/// open-duration sentinel against the whole-trace duration.
fn freeze_span(s: ActiveSpan, trace_dur_us: u64) -> SpanRecord {
    use std::fmt::Write as _;
    let mut tags = Vec::with_capacity(s.tags.len().min(MAX_TAGS_PER_SPAN));
    for (k, v) in s.tags {
        let mut val = String::default();
        let _ = write!(val, "{v}");
        tags.push((k.into(), val));
    }
    SpanRecord {
        id: 0, // assigned positionally by finish()
        parent: s.parent,
        name: s.name.into(),
        start_us: s.start_us,
        dur_us: if s.dur_us == DUR_OPEN {
            trace_dur_us.saturating_sub(s.start_us)
        } else {
            s.dur_us
        },
        tags,
    }
}

/// Starts collecting a span tree for a request on this thread and
/// opens its root span. Returns a disarmed guard (and leaves the
/// existing trace untouched) when one is already active.
pub fn begin_request(trace_id: &str, name: &'static str) -> TraceGuard {
    if trace_active() {
        return TraceGuard::disarmed();
    }
    let t0 = Instant::now();
    let mut spans = Vec::with_capacity(SPAN_PREALLOC);
    spans.push(ActiveSpan {
        name,
        parent: 0,
        start_us: 0,
        dur_us: DUR_OPEN,
        tags: Vec::default(),
    });
    let mut stack = Vec::with_capacity(SPAN_PREALLOC);
    stack.push(1u32);
    let trace = ActiveTrace {
        trace_id: Arc::from(trace_id),
        name,
        ts_unix_us: unix_micros(),
        t0,
        spans,
        stack,
        error: false,
        dropped: 0,
    };
    CURRENT.with(|c| *c.borrow_mut() = Some(trace));
    ACTIVE.with(|c| c.set(true));
    TraceGuard { armed: true }
}

/// Opens a child span under the innermost open span. `now` is the
/// caller's already-taken clock reading (stage timers read the clock
/// exactly once and share it with the span). Returns the span id, or
/// 0 when no trace is active or the per-trace span cap is hit.
pub fn open_span(name: &'static str, now: Instant) -> u32 {
    if !trace_active() {
        return 0;
    }
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        let Some(t) = cur.as_mut() else { return 0 };
        if t.spans.len() >= MAX_SPANS_PER_TRACE {
            t.dropped = t.dropped.saturating_add(1);
            return 0;
        }
        let parent = t.stack.last().copied().unwrap_or(1);
        let start_us = now.saturating_duration_since(t.t0).as_micros() as u64;
        t.spans.push(ActiveSpan {
            name,
            parent,
            start_us,
            dur_us: DUR_OPEN,
            tags: Vec::default(),
        });
        let id = t.spans.len() as u32;
        t.stack.push(id);
        id
    })
}

/// Closes span `id` with its measured duration. Id 0 (from a capped or
/// inactive [`open_span`]) is a no-op. Tolerates misnested closes:
/// anything the span left open above itself on the stack is closed at
/// trace end rather than corrupting the tree.
pub fn close_span(id: u32, elapsed: Duration) {
    if id == 0 {
        return;
    }
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        let Some(t) = cur.as_mut() else { return };
        if let Some(pos) = t.stack.iter().rposition(|&s| s == id) {
            if pos > 0 {
                t.stack.truncate(pos);
            }
        }
        if let Some(s) = t.spans.get_mut(id as usize - 1) {
            s.dur_us = elapsed.as_micros() as u64;
        }
    });
}

/// Attaches a key/value annotation to the innermost open span (the
/// root, between stages). Silently capped at [`MAX_TAGS_PER_SPAN`].
pub fn annotate(key: &'static str, value: TagValue) {
    if !trace_active() {
        return;
    }
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        let Some(t) = cur.as_mut() else { return };
        let Some(&top) = t.stack.last() else { return };
        if let Some(s) = t.spans.get_mut(top as usize - 1) {
            if s.tags.len() < MAX_TAGS_PER_SPAN {
                s.tags.push((key, value));
            }
        }
    });
}

/// The (trace id, innermost open span id) address of the current
/// position in the tree — the link a singleflight leader publishes so
/// follower traces can reference its extraction span.
pub fn current_span_link() -> Option<(Arc<str>, u32)> {
    if !trace_active() {
        return None;
    }
    CURRENT.with(|c| {
        let cur = c.borrow();
        let t = cur.as_ref()?;
        let top = t.stack.last().copied()?;
        Some((Arc::clone(&t.trace_id), top))
    })
}

/// Flags the current trace as an error, independent of how the handler
/// reports its result (the flight recorder always retains error
/// traces).
pub fn mark_error() {
    if !trace_active() {
        return;
    }
    CURRENT.with(|c| {
        if let Some(t) = c.borrow_mut().as_mut() {
            t.error = true;
        }
    });
}

/// One frozen span of a completed request trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// 1-based span id; the root span is id 1.
    pub id: u32,
    /// Parent span id; 0 for the root.
    pub parent: u32,
    /// Span name (the stage name, or the request kind for the root).
    pub name: String,
    /// Microseconds from the trace start to the span open.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Annotations, in attach order.
    #[serde(default)]
    pub tags: Vec<(String, String)>,
}

/// A completed request trace: the root metadata plus the span tree,
/// in id order (so `spans[i].id == i + 1`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTrace {
    /// The request's wire trace id.
    pub trace_id: String,
    /// Root span name (the request kind).
    pub name: String,
    /// Trace start, microseconds since the Unix epoch.
    pub ts_unix_us: u64,
    /// Whole-request duration in microseconds.
    pub dur_us: u64,
    /// True when the request ended in an error reply (or was flagged
    /// via [`mark_error`]).
    #[serde(default)]
    pub error: bool,
    /// Why the flight recorder kept this trace: `"slow"`, `"error"`,
    /// `"sampled"` — empty until it passes through the recorder.
    #[serde(default)]
    pub retained: String,
    /// Spans dropped past [`MAX_SPANS_PER_TRACE`].
    #[serde(default)]
    pub dropped_spans: u32,
    /// The span tree, in id order.
    pub spans: Vec<SpanRecord>,
}

impl RequestTrace {
    /// True when the recorder retained this trace for being slow or
    /// an error (vs a probabilistic sample).
    pub fn is_interesting(&self) -> bool {
        self.error || self.retained == "slow"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finish_ids(t: &RequestTrace) -> Vec<u32> {
        t.spans.iter().map(|s| s.id).collect()
    }

    #[test]
    fn no_trace_means_no_ops() {
        assert!(!trace_active());
        assert_eq!(open_span("x", Instant::now()), 0);
        close_span(0, Duration::ZERO);
        annotate("k", TagValue::U64(1));
        assert!(current_span_link().is_none());
        mark_error();
        assert!(!trace_active());
    }

    #[test]
    fn span_tree_nests_and_freezes() {
        let guard = begin_request("0123456789abcdef", "SearchMesh");
        assert!(trace_active());

        let extract = open_span("query_extract", Instant::now());
        assert_eq!(extract, 2);
        let norm = open_span("normalize", Instant::now());
        assert_eq!(norm, 3);
        close_span(norm, Duration::from_micros(40));
        let vox = open_span("voxelize", Instant::now());
        annotate("voxels", TagValue::U64(4096));
        close_span(vox, Duration::from_micros(700));
        close_span(extract, Duration::from_micros(900));
        let search = open_span("index_search", Instant::now());
        close_span(search, Duration::from_micros(12));

        let t = guard.finish(false).expect("armed guard yields a trace");
        assert!(!trace_active());
        assert_eq!(t.name, "SearchMesh");
        assert_eq!(t.trace_id, "0123456789abcdef");
        assert!(!t.error);
        assert_eq!(t.dropped_spans, 0);
        assert_eq!(t.spans.len(), 5);
        // Root, then children in open order.
        assert_eq!(t.spans[0].parent, 0);
        assert_eq!(t.spans[0].name, "SearchMesh");
        assert_eq!(t.spans[1].name, "query_extract");
        assert_eq!(t.spans[1].parent, 1);
        assert_eq!(t.spans[2].name, "normalize");
        assert_eq!(t.spans[2].parent, 2);
        assert_eq!(t.spans[3].name, "voxelize");
        assert_eq!(t.spans[3].parent, 2);
        assert_eq!(
            t.spans[3].tags,
            vec![("voxels".to_string(), "4096".to_string())]
        );
        assert_eq!(t.spans[4].name, "index_search");
        assert_eq!(t.spans[4].parent, 1);
        assert_eq!(t.spans[3].dur_us, 700);
    }

    #[test]
    fn open_spans_close_at_trace_end() {
        let guard = begin_request("id", "req");
        let s = open_span("never_closed", Instant::now());
        assert_eq!(s, 2);
        let t = guard.finish(false).unwrap();
        // Root and the orphan both span to the trace end.
        assert_eq!(t.spans[0].dur_us, t.dur_us);
        assert!(t.spans[1].dur_us <= t.dur_us);
        assert_ne!(t.spans[1].dur_us, DUR_OPEN);
    }

    #[test]
    fn nested_begin_is_disarmed() {
        let outer = begin_request("outer", "a");
        let inner = begin_request("inner", "b");
        assert!(inner.finish(false).is_none());
        // The outer trace survived the nested attempt.
        assert!(trace_active());
        let t = outer.finish(false).unwrap();
        assert_eq!(t.trace_id, "outer");
    }

    #[test]
    fn drop_without_finish_clears_state() {
        {
            let _guard = begin_request("id", "req");
            assert!(trace_active());
        }
        assert!(!trace_active());
        assert!(current_span_link().is_none());
    }

    #[test]
    fn span_cap_counts_drops() {
        let guard = begin_request("id", "req");
        let mut opened = 0;
        for _ in 0..(MAX_SPANS_PER_TRACE + 10) {
            let id = open_span("s", Instant::now());
            if id != 0 {
                opened += 1;
                close_span(id, Duration::ZERO);
            }
        }
        let t = guard.finish(false).unwrap();
        assert_eq!(opened, MAX_SPANS_PER_TRACE - 1); // root takes slot 1
        assert_eq!(t.dropped_spans, 11);
        assert_eq!(t.spans.len(), MAX_SPANS_PER_TRACE);
    }

    #[test]
    fn error_flag_propagates_both_ways() {
        let guard = begin_request("id", "req");
        mark_error();
        let t = guard.finish(false).unwrap();
        assert!(t.error);

        let guard = begin_request("id2", "req");
        let t = guard.finish(true).unwrap();
        assert!(t.error);
    }

    #[test]
    fn span_link_addresses_innermost_span() {
        let guard = begin_request("leader-trace", "req");
        let (tid, span) = current_span_link().unwrap();
        assert_eq!(&*tid, "leader-trace");
        assert_eq!(span, 1);
        let s = open_span("query_extract", Instant::now());
        let (_, span) = current_span_link().unwrap();
        assert_eq!(span, s);
        close_span(s, Duration::ZERO);
        let (_, span) = current_span_link().unwrap();
        assert_eq!(span, 1);
        drop(guard);
    }

    #[test]
    fn ids_are_positional_after_finish() {
        let guard = begin_request("id", "req");
        for _ in 0..3 {
            let s = open_span("s", Instant::now());
            close_span(s, Duration::ZERO);
        }
        let t = guard.finish(false).unwrap();
        // finish() assigns ids positionally: spans[i].id == i + 1.
        let ids = finish_ids(&t);
        assert_eq!(ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn trace_roundtrips_through_serde() {
        let guard = begin_request("abcd", "SearchMesh");
        let s = open_span("index_search", Instant::now());
        annotate("cache", TagValue::Str("hit"));
        close_span(s, Duration::from_micros(5));
        let t = guard.finish(false).unwrap();
        let v = serde::Serialize::to_value(&t);
        let back: RequestTrace = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, t);
    }
}
