//! Process-wide per-stage timing registry.
//!
//! Each pipeline/query [`Stage`] owns a static [`Histogram`]; a
//! [`StageTimer`] records into it on drop and, at trace level, also
//! emits a span-close event with the elapsed time. Timers are no-ops
//! when the filter is [`Level::Off`], so `TDESS_LOG=off` removes the
//! instrumentation cost entirely (see the `tab_obs_overhead` bench).

use crate::hist::{Histogram, HistogramSnapshot};
use crate::trace::{emit, enabled, Level};
use std::time::Instant;

/// The instrumented stages of the extraction pipeline and query path.
///
/// Extraction stages follow the paper's flow (pose normalization →
/// voxelization → skeletonization → graph build → eigenvalues); query
/// stages cover feature extraction, index search, similarity
/// combination, and multi-step re-ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// PCA pose normalization of the input mesh.
    Normalize,
    /// Mesh → voxel-grid discretization.
    Voxelize,
    /// Iterative thinning of the voxel grid to a skeleton.
    Skeletonize,
    /// Skeleton voxels → attributed graph.
    GraphBuild,
    /// Laplacian eigenvalue signature of the skeleton graph.
    Eigen,
    /// Full feature extraction for a query mesh (encloses the five
    /// extraction stages above).
    QueryExtract,
    /// R*-tree (or scan) search in one feature space.
    IndexSearch,
    /// Distance → similarity conversion, weighting, sort and cut.
    SimilarityCombine,
    /// Multi-step strategy re-ranking passes after the first step.
    Rerank,
}

impl Stage {
    /// Every stage, in pipeline-then-query order.
    pub const ALL: [Stage; 9] = [
        Stage::Normalize,
        Stage::Voxelize,
        Stage::Skeletonize,
        Stage::GraphBuild,
        Stage::Eigen,
        Stage::QueryExtract,
        Stage::IndexSearch,
        Stage::SimilarityCombine,
        Stage::Rerank,
    ];

    /// Stable snake_case name used in wire payloads and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Normalize => "normalize",
            Stage::Voxelize => "voxelize",
            Stage::Skeletonize => "skeletonize",
            Stage::GraphBuild => "graph_build",
            Stage::Eigen => "eigen",
            Stage::QueryExtract => "query_extract",
            Stage::IndexSearch => "index_search",
            Stage::SimilarityCombine => "similarity_combine",
            Stage::Rerank => "rerank",
        }
    }
}

static STAGE_HISTS: [Histogram; 9] = [
    Histogram::new(),
    Histogram::new(),
    Histogram::new(),
    Histogram::new(),
    Histogram::new(),
    Histogram::new(),
    Histogram::new(),
    Histogram::new(),
    Histogram::new(),
];

/// The process-wide histogram backing `stage`.
pub fn stage_histogram(stage: Stage) -> &'static Histogram {
    &STAGE_HISTS[stage as usize]
}

/// Snapshots every stage histogram, in [`Stage::ALL`] order.
pub fn stage_snapshots() -> Vec<(Stage, HistogramSnapshot)> {
    Stage::ALL
        .iter()
        .map(|&s| (s, stage_histogram(s).snapshot()))
        // hotpath: allow(hot-alloc) — the snapshot list is the returned artifact
        .collect()
}

/// Times one stage execution: started with [`StageTimer::start`], it
/// records the elapsed duration into the stage's histogram when
/// dropped and, when the thread is collecting a request trace, opens
/// a span in the tree (sharing the timer's single clock read). A
/// no-op (not even a clock read) when the level is `off` and no trace
/// is active.
#[derive(Debug)]
pub struct StageTimer {
    stage: Stage,
    start: Option<Instant>,
    /// Record into the stage histogram (level above off at start).
    hist: bool,
    /// Span id in the active request trace; 0 when not tracing.
    span: u32,
}

impl StageTimer {
    /// Starts timing `stage`.
    pub fn start(stage: Stage) -> StageTimer {
        // Any level except Off keeps histograms recording.
        let hist = enabled(Level::Error);
        let tracing = crate::span::trace_active();
        if !hist && !tracing {
            return StageTimer {
                stage,
                start: None,
                hist: false,
                span: 0,
            };
        }
        let now = Instant::now();
        let span = if tracing {
            crate::span::open_span(Stage::name(stage), now)
        } else {
            0
        };
        StageTimer {
            stage,
            start: Some(now),
            hist,
            span,
        }
    }

    /// Ends this timer and starts one for `next`, reading the clock
    /// exactly once at the boundary — for back-to-back stages (index
    /// search → similarity combine) where two full timers would pay
    /// two extra clock reads per query. The boundary skips the
    /// trace-level per-stage event (the span tree carries the same
    /// timing); the histogram record and span close/open are
    /// identical to drop-then-start.
    pub fn handoff(mut self, next: Stage) -> StageTimer {
        let Some(t0) = self.start.take() else {
            return StageTimer {
                stage: next,
                start: None,
                hist: false,
                span: 0,
            };
        };
        let now = Instant::now();
        let elapsed = now.saturating_duration_since(t0);
        if self.hist {
            stage_histogram(self.stage).record(elapsed);
        }
        crate::span::close_span(self.span, elapsed);
        let span = if crate::span::trace_active() {
            crate::span::open_span(Stage::name(next), now)
        } else {
            0
        };
        StageTimer {
            stage: next,
            start: Some(now),
            hist: self.hist,
            span,
        }
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let elapsed = t0.elapsed();
            if self.hist {
                stage_histogram(self.stage).record(elapsed);
            }
            crate::span::close_span(self.span, elapsed);
            if self.hist && enabled(Level::Trace) {
                emit(
                    Level::Trace,
                    "tdess.stage",
                    "stage timed",
                    &[
                        ("stage", self.stage.name().to_string()),
                        ("elapsed_us", elapsed.as_micros().to_string()),
                    ],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_unique_and_snake_case() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::ALL.len());
        for n in names {
            assert!(n
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit()));
        }
    }

    #[test]
    fn stage_timer_contributes_spans_to_active_trace() {
        let guard = crate::span::begin_request("stage-span-test", "req");
        {
            let _outer = StageTimer::start(Stage::IndexSearch);
            let _inner = StageTimer::start(Stage::SimilarityCombine);
        }
        let t = guard.finish(false).expect("trace");
        assert_eq!(t.spans.len(), 3);
        assert_eq!(t.spans[1].name, "index_search");
        assert_eq!(t.spans[1].parent, 1);
        assert_eq!(t.spans[2].name, "similarity_combine");
        // Opened while index_search was still open → nested under it.
        assert_eq!(t.spans[2].parent, 2);
    }

    #[test]
    fn handoff_closes_one_span_and_opens_the_next_as_siblings() {
        let guard = crate::span::begin_request("handoff-test", "req");
        {
            let timer = StageTimer::start(Stage::IndexSearch);
            let _next = timer.handoff(Stage::SimilarityCombine);
        }
        let t = guard.finish(false).expect("trace");
        assert_eq!(t.spans.len(), 3);
        assert_eq!(t.spans[1].name, "index_search");
        assert_eq!(t.spans[2].name, "similarity_combine");
        // The handoff closed the first span before opening the second,
        // so they are siblings under the root, not nested.
        assert_eq!(t.spans[1].parent, 1);
        assert_eq!(t.spans[2].parent, 1);
        // And contiguous, to within microsecond truncation.
        let boundary = t.spans[1].start_us + t.spans[1].dur_us;
        assert!(t.spans[2].start_us.abs_diff(boundary) <= 1);
    }

    #[test]
    fn handoff_from_inert_timer_stays_inert() {
        // No trace active: with the level above off the timer is live
        // for histograms only; handing off must not open spans.
        let timer = StageTimer::start(Stage::IndexSearch);
        let next = timer.handoff(Stage::SimilarityCombine);
        assert_eq!(next.span, 0);
    }

    #[test]
    fn registry_indexing_matches_all_order() {
        for (i, &s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s as usize, i);
        }
        let snaps = stage_snapshots();
        assert_eq!(snaps.len(), Stage::ALL.len());
        for (i, (s, _)) in snaps.iter().enumerate() {
            assert_eq!(*s, Stage::ALL[i]);
        }
    }
}
