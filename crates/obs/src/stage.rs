//! Process-wide per-stage timing registry.
//!
//! Each pipeline/query [`Stage`] owns a static [`Histogram`]; a
//! [`StageTimer`] records into it on drop and, at trace level, also
//! emits a span-close event with the elapsed time. Timers are no-ops
//! when the filter is [`Level::Off`], so `TDESS_LOG=off` removes the
//! instrumentation cost entirely (see the `tab_obs_overhead` bench).

use crate::hist::{Histogram, HistogramSnapshot};
use crate::trace::{emit, enabled, Level};
use std::time::Instant;

/// The instrumented stages of the extraction pipeline and query path.
///
/// Extraction stages follow the paper's flow (pose normalization →
/// voxelization → skeletonization → graph build → eigenvalues); query
/// stages cover feature extraction, index search, similarity
/// combination, and multi-step re-ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// PCA pose normalization of the input mesh.
    Normalize,
    /// Mesh → voxel-grid discretization.
    Voxelize,
    /// Iterative thinning of the voxel grid to a skeleton.
    Skeletonize,
    /// Skeleton voxels → attributed graph.
    GraphBuild,
    /// Laplacian eigenvalue signature of the skeleton graph.
    Eigen,
    /// Full feature extraction for a query mesh (encloses the five
    /// extraction stages above).
    QueryExtract,
    /// R*-tree (or scan) search in one feature space.
    IndexSearch,
    /// Distance → similarity conversion, weighting, sort and cut.
    SimilarityCombine,
    /// Multi-step strategy re-ranking passes after the first step.
    Rerank,
}

impl Stage {
    /// Every stage, in pipeline-then-query order.
    pub const ALL: [Stage; 9] = [
        Stage::Normalize,
        Stage::Voxelize,
        Stage::Skeletonize,
        Stage::GraphBuild,
        Stage::Eigen,
        Stage::QueryExtract,
        Stage::IndexSearch,
        Stage::SimilarityCombine,
        Stage::Rerank,
    ];

    /// Stable snake_case name used in wire payloads and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Normalize => "normalize",
            Stage::Voxelize => "voxelize",
            Stage::Skeletonize => "skeletonize",
            Stage::GraphBuild => "graph_build",
            Stage::Eigen => "eigen",
            Stage::QueryExtract => "query_extract",
            Stage::IndexSearch => "index_search",
            Stage::SimilarityCombine => "similarity_combine",
            Stage::Rerank => "rerank",
        }
    }
}

static STAGE_HISTS: [Histogram; 9] = [
    Histogram::new(),
    Histogram::new(),
    Histogram::new(),
    Histogram::new(),
    Histogram::new(),
    Histogram::new(),
    Histogram::new(),
    Histogram::new(),
    Histogram::new(),
];

/// The process-wide histogram backing `stage`.
pub fn stage_histogram(stage: Stage) -> &'static Histogram {
    &STAGE_HISTS[stage as usize]
}

/// Snapshots every stage histogram, in [`Stage::ALL`] order.
pub fn stage_snapshots() -> Vec<(Stage, HistogramSnapshot)> {
    Stage::ALL
        .iter()
        .map(|&s| (s, stage_histogram(s).snapshot()))
        // hotpath: allow(hot-alloc) — the snapshot list is the returned artifact
        .collect()
}

/// Times one stage execution: started with [`StageTimer::start`], it
/// records the elapsed duration into the stage's histogram when
/// dropped. A no-op (not even a clock read) when the level is `off`.
#[derive(Debug)]
pub struct StageTimer {
    stage: Stage,
    start: Option<Instant>,
}

impl StageTimer {
    /// Starts timing `stage`.
    pub fn start(stage: Stage) -> StageTimer {
        StageTimer {
            stage,
            // Any level except Off keeps histograms recording.
            start: enabled(Level::Error).then(Instant::now),
        }
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let elapsed = t0.elapsed();
            stage_histogram(self.stage).record(elapsed);
            if enabled(Level::Trace) {
                emit(
                    Level::Trace,
                    "tdess.stage",
                    "stage timed",
                    &[
                        ("stage", self.stage.name().to_string()),
                        ("elapsed_us", elapsed.as_micros().to_string()),
                    ],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_unique_and_snake_case() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::ALL.len());
        for n in names {
            assert!(n
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit()));
        }
    }

    #[test]
    fn registry_indexing_matches_all_order() {
        for (i, &s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s as usize, i);
        }
        let snaps = stage_snapshots();
        assert_eq!(snaps.len(), Stage::ALL.len());
        for (i, (s, _)) in snaps.iter().enumerate() {
            assert_eq!(*s, Stage::ALL[i]);
        }
    }
}
