//! Flight recorder: a fixed-capacity ring of completed request traces
//! with tail-based sampling.
//!
//! Head-based sampling decides *before* a request runs and therefore
//! throws away exactly the traces worth keeping — the slow tail and
//! the errors, which are not identifiable up front. The recorder
//! samples at the *tail* instead: every completed [`RequestTrace`] is
//! offered, and the retention policy is
//!
//! 1. **error traces** are always kept;
//! 2. **slow traces** (duration ≥ [`RecorderConfig::slow`]) are always
//!    kept;
//! 3. everything else is kept one-in-[`RecorderConfig::sample_one_in`]
//!    as a background sample of normal behaviour.
//!
//! Retained traces overwrite the oldest ring slot, so memory stays
//! bounded at `capacity` traces no matter the traffic. Slots are
//! individual `RwLock`s around `Arc`s: writers touch exactly one slot,
//! readers clone `Arc`s out without blocking writers on other slots,
//! and nothing on the offer path allocates beyond the retained trace
//! itself.

use crate::span::RequestTrace;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Upper bound on the ring capacity (a trace can hold a few KiB of
/// spans; 4096 bounds the recorder to low tens of MiB worst-case).
pub const MAX_RECORDER_CAPACITY: usize = 4096;

/// Tail-sampling policy knobs.
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Ring capacity in traces (clamped to 1..=[`MAX_RECORDER_CAPACITY`]).
    pub capacity: usize,
    /// Duration at or above which a trace is always retained.
    pub slow: Duration,
    /// Keep one in this many unremarkable traces; `0` or `1` keeps
    /// every trace (useful for tests and low-traffic servers).
    pub sample_one_in: u64,
}

impl Default for RecorderConfig {
    fn default() -> RecorderConfig {
        RecorderConfig {
            capacity: 128,
            slow: Duration::from_secs(1),
            sample_one_in: 16,
        }
    }
}

/// Retention counters, as monotonically increasing totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Traces offered to the recorder.
    pub seen: u64,
    /// Retained because the request errored.
    pub kept_error: u64,
    /// Retained for running at or over the slow threshold.
    pub kept_slow: u64,
    /// Retained by the probabilistic sampler.
    pub kept_sampled: u64,
    /// Offered but not retained.
    pub skipped: u64,
}

/// The ring buffer of retained traces. One per server; shared via
/// `Arc` between the request workers (writers) and the trace
/// endpoints (readers).
#[derive(Debug)]
pub struct FlightRecorder {
    slow_us: u64,
    sample_one_in: u64,
    slots: Vec<RwLock<Option<Arc<RequestTrace>>>>,
    cursor: AtomicU64,
    seen: AtomicU64,
    kept_error: AtomicU64,
    kept_slow: AtomicU64,
    kept_sampled: AtomicU64,
    skipped: AtomicU64,
}

impl FlightRecorder {
    /// Builds a recorder with the given policy.
    pub fn new(cfg: RecorderConfig) -> FlightRecorder {
        let capacity = cfg.capacity.clamp(1, MAX_RECORDER_CAPACITY);
        let mut slots = Vec::with_capacity(capacity.min(MAX_RECORDER_CAPACITY));
        for _ in 0..capacity {
            slots.push(RwLock::new(None));
        }
        FlightRecorder {
            slow_us: cfg.slow.as_micros() as u64,
            sample_one_in: cfg.sample_one_in,
            slots,
            cursor: AtomicU64::new(0),
            seen: AtomicU64::new(0),
            kept_error: AtomicU64::new(0),
            kept_slow: AtomicU64::new(0),
            kept_sampled: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
        }
    }

    /// The slow-retention threshold in microseconds.
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_us
    }

    /// Offers a completed trace; applies the tail-sampling policy and,
    /// when the trace is retained, stamps [`RequestTrace::retained`]
    /// and stores it over the oldest ring slot. Returns whether the
    /// trace was kept.
    pub fn offer(&self, mut t: RequestTrace) -> bool {
        let n = self.seen.fetch_add(1, Ordering::AcqRel);
        let reason = if t.error {
            self.kept_error.fetch_add(1, Ordering::AcqRel);
            "error"
        } else if t.dur_us >= self.slow_us {
            self.kept_slow.fetch_add(1, Ordering::AcqRel);
            "slow"
        } else if self.sample_one_in <= 1 || n.wrapping_rem(self.sample_one_in) == 0 {
            self.kept_sampled.fetch_add(1, Ordering::AcqRel);
            "sampled"
        } else {
            self.skipped.fetch_add(1, Ordering::AcqRel);
            return false;
        };
        t.retained = reason.into();
        let ix = (self.cursor.fetch_add(1, Ordering::AcqRel) % self.slots.len() as u64) as usize;
        let mut slot = self.slots[ix].write().unwrap_or_else(|e| e.into_inner());
        *slot = Some(Arc::new(t));
        true
    }

    /// Snapshots retained traces, oldest first. `last > 0` keeps only
    /// the `last` most recent; `slow_only` keeps only slow and error
    /// traces (the "interesting" retention classes).
    pub fn snapshot(&self, last: usize, slow_only: bool) -> Vec<Arc<RequestTrace>> {
        let mut out = Vec::with_capacity(self.slots.len().min(MAX_RECORDER_CAPACITY));
        for slot in &self.slots {
            let g = slot.read().unwrap_or_else(|e| e.into_inner());
            if let Some(t) = g.as_ref() {
                if !slow_only || t.is_interesting() {
                    out.push(Arc::clone(t));
                }
            }
        }
        out.sort_by_key(|t| (t.ts_unix_us, t.dur_us));
        if last > 0 && out.len() > last {
            let excess = out.len() - last;
            out.drain(..excess);
        }
        out
    }

    /// Current retention counters.
    pub fn stats(&self) -> RecorderStats {
        RecorderStats {
            seen: self.seen.load(Ordering::Acquire),
            kept_error: self.kept_error.load(Ordering::Acquire),
            kept_slow: self.kept_slow.load(Ordering::Acquire),
            kept_sampled: self.kept_sampled.load(Ordering::Acquire),
            skipped: self.skipped.load(Ordering::Acquire),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: &str, dur_us: u64, error: bool) -> RequestTrace {
        RequestTrace {
            trace_id: id.to_string(),
            name: "req".to_string(),
            ts_unix_us: dur_us, // distinct, ordered timestamps
            dur_us,
            error,
            retained: String::new(),
            dropped_spans: 0,
            spans: Vec::new(),
        }
    }

    fn recorder(capacity: usize, slow_us: u64, one_in: u64) -> FlightRecorder {
        FlightRecorder::new(RecorderConfig {
            capacity,
            slow: Duration::from_micros(slow_us),
            sample_one_in: one_in,
        })
    }

    #[test]
    fn slow_and_error_always_kept_fast_sampled() {
        let rec = recorder(64, 1000, 4);
        let mut kept_fast = 0;
        for i in 0..40u64 {
            if rec.offer(trace(&format!("fast{i}"), 10, false)) {
                kept_fast += 1;
            }
        }
        assert_eq!(kept_fast, 10); // exactly one in four
        assert!(rec.offer(trace("slow", 5000, false)));
        assert!(rec.offer(trace("err", 10, true)));
        let stats = rec.stats();
        assert_eq!(stats.seen, 42);
        assert_eq!(stats.kept_slow, 1);
        assert_eq!(stats.kept_error, 1);
        assert_eq!(stats.kept_sampled, 10);
        assert_eq!(stats.skipped, 30);
    }

    #[test]
    fn retained_reason_is_stamped() {
        let rec = recorder(8, 1000, 1);
        rec.offer(trace("a", 10, false));
        rec.offer(trace("b", 2000, false));
        rec.offer(trace("c", 10, true));
        let all = rec.snapshot(0, false);
        let reason = |id: &str| {
            all.iter()
                .find(|t| t.trace_id == id)
                .map(|t| t.retained.clone())
                .unwrap()
        };
        assert_eq!(reason("a"), "sampled");
        assert_eq!(reason("b"), "slow");
        assert_eq!(reason("c"), "error");
    }

    #[test]
    fn ring_overwrites_oldest() {
        let rec = recorder(4, 1000, 1);
        for i in 0..10u64 {
            rec.offer(trace(&format!("t{i}"), i, false));
        }
        let all = rec.snapshot(0, false);
        assert_eq!(all.len(), 4);
        let ids: Vec<&str> = all.iter().map(|t| t.trace_id.as_str()).collect();
        assert_eq!(ids, vec!["t6", "t7", "t8", "t9"]); // oldest first
    }

    #[test]
    fn snapshot_filters_and_limits() {
        let rec = recorder(16, 1000, 1);
        rec.offer(trace("fast1", 10, false));
        rec.offer(trace("slow1", 3000, false));
        rec.offer(trace("err1", 20, true));
        rec.offer(trace("fast2", 30, false));

        let slow = rec.snapshot(0, true);
        let ids: Vec<&str> = slow.iter().map(|t| t.trace_id.as_str()).collect();
        assert_eq!(ids, vec!["err1", "slow1"]); // ts order (20 < 3000)

        let last2 = rec.snapshot(2, false);
        assert_eq!(last2.len(), 2);
        // The two most recent by timestamp.
        let ids: Vec<&str> = last2.iter().map(|t| t.trace_id.as_str()).collect();
        assert_eq!(ids, vec!["fast2", "slow1"]);
    }

    #[test]
    fn capacity_is_clamped() {
        let rec = recorder(0, 1000, 1);
        assert!(rec.offer(trace("only", 1, false)));
        assert_eq!(rec.snapshot(0, false).len(), 1);
    }

    #[test]
    fn concurrent_offers_and_snapshots_are_safe() {
        let rec = Arc::new(recorder(32, 50, 2));
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let rec = Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    rec.offer(trace(&format!("w{w}-{i}"), i % 100, false));
                    if i % 17 == 0 {
                        let snap = rec.snapshot(8, false);
                        assert!(snap.len() <= 8);
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        let stats = rec.stats();
        assert_eq!(stats.seen, 800);
        assert_eq!(
            stats.kept_error + stats.kept_slow + stats.kept_sampled + stats.skipped,
            800
        );
        assert!(rec.snapshot(0, false).len() <= 32);
    }
}
