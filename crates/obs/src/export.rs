//! Chrome trace-event JSON export.
//!
//! Serializes [`RequestTrace`]s into the Trace Event Format's JSON
//! object form (`{"traceEvents": [...]}`), loadable in Perfetto and
//! `chrome://tracing`. Each trace becomes one synthetic thread
//! (`tid` = position in the batch) named after its request kind and
//! trace id, so a batch of requests renders as parallel waterfalls;
//! each span becomes a complete (`"ph":"X"`) event whose nesting the
//! viewer reconstructs from time containment. Span annotations, the
//! parent id, and the retention reason ride in `args`.
//!
//! This is the cold half of the tracing subsystem — it runs on
//! `GET /traces` and in the CLI, never on the request path — so it
//! favours clarity over allocation thrift.

use crate::span::RequestTrace;
use crate::trace::push_json_escaped;
use std::fmt::Write as _;
use std::sync::Arc;

/// Serializes `traces` as a Chrome trace-event JSON object.
///
/// Traces are laid out on one process (`pid` 1) with one thread per
/// trace; timestamps are absolute microseconds since the Unix epoch,
/// which Perfetto normalizes to the earliest event.
pub fn chrome_trace_json(traces: &[Arc<RequestTrace>]) -> String {
    let mut out = String::with_capacity(256 + traces.len() * 512);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (ix, t) in traces.iter().enumerate() {
        let tid = ix + 1;
        // Thread-name metadata event: labels the lane in the viewer.
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\""
        );
        push_json_escaped(&mut out, &t.name);
        out.push(' ');
        push_json_escaped(&mut out, &t.trace_id);
        out.push_str("\"}}");
        for s in &t.spans {
            out.push(',');
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"cat\":\"tdess\",\"name\":\""
            );
            push_json_escaped(&mut out, &s.name);
            let ts = t.ts_unix_us.saturating_add(s.start_us);
            let _ = write!(out, "\",\"ts\":{ts},\"dur\":{},\"args\":{{", s.dur_us);
            if s.parent == 0 {
                // Root span: carry the trace-level metadata.
                out.push_str("\"trace_id\":\"");
                push_json_escaped(&mut out, &t.trace_id);
                let _ = write!(
                    out,
                    "\",\"retained\":\"{}\",\"error\":{},\"dropped_spans\":{}",
                    t.retained, t.error, t.dropped_spans
                );
            } else {
                let _ = write!(out, "\"parent\":{}", s.parent);
            }
            for (k, v) in &s.tags {
                out.push_str(",\"");
                push_json_escaped(&mut out, k);
                out.push_str("\":\"");
                push_json_escaped(&mut out, v);
                out.push('"');
            }
            out.push_str("}}");
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanRecord;

    fn sample_trace() -> RequestTrace {
        RequestTrace {
            trace_id: "deadbeef00000000".to_string(),
            name: "SearchMesh".to_string(),
            ts_unix_us: 1_000_000,
            dur_us: 950,
            error: false,
            retained: "slow".to_string(),
            dropped_spans: 0,
            spans: vec![
                SpanRecord {
                    id: 1,
                    parent: 0,
                    name: "SearchMesh".to_string(),
                    start_us: 0,
                    dur_us: 950,
                    tags: vec![],
                },
                SpanRecord {
                    id: 2,
                    parent: 1,
                    name: "query_extract".to_string(),
                    start_us: 10,
                    dur_us: 800,
                    tags: vec![("cache".to_string(), "miss".to_string())],
                },
                SpanRecord {
                    id: 3,
                    parent: 2,
                    name: "voxel\"ize".to_string(), // exercises escaping
                    start_us: 20,
                    dur_us: 500,
                    tags: vec![],
                },
            ],
        }
    }

    #[test]
    fn export_is_valid_json_with_expected_shape() {
        let traces = vec![Arc::new(sample_trace())];
        let json = chrome_trace_json(&traces);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("traceEvents array");
        // 1 metadata + 3 spans.
        assert_eq!(events.len(), 4);
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| {
                e.get("ph").and_then(|p| match p {
                    serde_json::Value::Str(s) => Some(s.as_str()),
                    _ => None,
                })
            })
            .collect();
        assert_eq!(phases, vec!["M", "X", "X", "X"]);
        // The root event carries trace metadata; children carry parent.
        let root = &events[1];
        assert_eq!(
            root.get("args").and_then(|a| a.get("retained")),
            Some(&serde_json::Value::Str("slow".to_string()))
        );
        let child = &events[2];
        assert_eq!(
            child.get("args").and_then(|a| a.get("parent")),
            Some(&serde_json::Value::Int(1))
        );
        assert_eq!(
            child.get("args").and_then(|a| a.get("cache")),
            Some(&serde_json::Value::Str("miss".to_string()))
        );
        // Absolute timestamps: base + offset.
        assert_eq!(child.get("ts"), Some(&serde_json::Value::Int(1_000_010)));
    }

    #[test]
    fn empty_batch_exports_empty_events() {
        let json = chrome_trace_json(&[]);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(
            v.get("traceEvents")
                .and_then(|e| e.as_arr())
                .map(<[_]>::len),
            Some(0)
        );
    }
}
