//! Leveled structured tracing: env-filtered JSON-lines events, a
//! process-global redirectable sink, and thread-local trace-id
//! propagation.
//!
//! Events are emitted as single JSON objects per line:
//!
//! ```json
//! {"ts_ms":1712345678901,"level":"info","target":"tdess.serve","msg":"...","trace_id":"..."}
//! ```
//!
//! The active level comes from the `TDESS_LOG` environment variable
//! (`off`, `error`, `warn`, `info`, `debug`, `trace`; default `info`)
//! and can be overridden programmatically with [`set_level`]. The sink
//! defaults to stderr and can be redirected with [`set_sink`] — tests
//! use [`Capture`] to assert on emitted lines.

use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Severity of an event, and the verbosity threshold for the filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing is emitted and stage histograms stop recording.
    Off = 0,
    /// Unrecoverable or dropped-work conditions.
    Error = 1,
    /// Degraded conditions worth operator attention (slow queries,
    /// rejected connections).
    Warn = 2,
    /// Operational lifecycle (startup banner, shutdown). The default.
    Info = 3,
    /// Per-request and per-connection lifecycle.
    Debug = 4,
    /// Per-stage span timings.
    Trace = 5,
}

impl Level {
    /// Parses a `TDESS_LOG` value, case-insensitively.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// Lowercase name as emitted in the JSON `level` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Off,
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

/// Sentinel for "TDESS_LOG not parsed yet".
const LEVEL_UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// The active verbosity threshold, lazily read from `TDESS_LOG` on
/// first use (default [`Level::Info`] when unset or unparsable).
pub fn level() -> Level {
    // The whole state is the one u8 inside the atomic — no other
    // memory is published through it, so Relaxed carries everything
    // every reader needs, and this load sits on every event call site.
    // audit: ordering(single-cell u8 flag; the atomic value IS the whole state, nothing else is published)
    match LEVEL.load(Ordering::Relaxed) {
        LEVEL_UNSET => {
            let parsed = std::env::var("TDESS_LOG")
                .ok()
                .and_then(|s| Level::parse(&s))
                .unwrap_or(Level::Info);
            // First writer wins so a racing `set_level` isn't clobbered.
            let _ = LEVEL.compare_exchange(
                LEVEL_UNSET,
                parsed as u8,
                Ordering::Relaxed, // audit: ordering(single-cell u8 flag; CAS success publishes only the cell itself)
                Ordering::Relaxed, // audit: ordering(failure load feeds no memory access, only the re-load below)
            );
            Level::from_u8(LEVEL.load(Ordering::Relaxed)) // audit: ordering(single-cell u8 flag; the atomic value IS the whole state)
        }
        v => Level::from_u8(v),
    }
}

/// Overrides the verbosity threshold for this process (wins over the
/// `TDESS_LOG` environment variable).
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed); // audit: ordering(single-cell u8 flag; no other memory is published with it)
}

/// True when events at `l` pass the active filter.
pub fn enabled(l: Level) -> bool {
    l != Level::Off && (l as u8) <= (level() as u8)
}

/// `None` means "write to stderr".
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

fn sink_lock() -> MutexGuard<'static, Option<Box<dyn Write + Send>>> {
    // A panic while holding the lock leaves only a partially written
    // line; the sink itself stays usable.
    SINK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Redirects all emitted events to `w` (replacing any previous sink).
pub fn set_sink(w: Box<dyn Write + Send>) {
    *sink_lock() = Some(w);
}

/// Restores the default stderr sink.
pub fn sink_to_stderr() {
    *sink_lock() = None;
}

/// A cloneable in-memory sink for tests: install it, run the code
/// under test, then assert on [`Capture::contents`].
#[derive(Debug, Clone, Default)]
pub struct Capture {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl Capture {
    /// Creates a capture buffer and installs it as the global sink.
    pub fn install() -> Capture {
        let cap = Capture::default();
        set_sink(Box::new(CaptureWriter(Arc::clone(&cap.buf))));
        cap
    }

    /// Everything emitted since installation, as (lossy) UTF-8.
    pub fn contents(&self) -> String {
        let buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        String::from_utf8_lossy(&buf).into_owned()
    }
}

struct CaptureWriter(Arc<Mutex<Vec<u8>>>);

impl Write for CaptureWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        // hotpath: allow(hot-block) — sink handoff under a one-line lock, events are filter-gated upstream
        let mut buf = self.0.lock().unwrap_or_else(|e| e.into_inner());
        buf.extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

thread_local! {
    static TRACE_ID: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Runs `f` with `id` as the ambient trace id for this thread; events
/// emitted inside pick it up automatically. Restores the previous id
/// (supporting nesting) on exit.
pub fn with_trace_id<R>(id: Option<String>, f: impl FnOnce() -> R) -> R {
    let prev = TRACE_ID.with(|c| c.replace(id));
    let out = f();
    TRACE_ID.with(|c| *c.borrow_mut() = prev);
    out
}

/// The ambient trace id set by the nearest enclosing [`with_trace_id`].
pub fn current_trace_id() -> Option<String> {
    TRACE_ID.with(|c| c.borrow().clone())
}

/// Generates a 16-hex-digit trace id without any RNG dependency: a
/// splitmix64 finalizer over wall-clock nanos, a process-wide counter,
/// and the thread id, so concurrent clients get distinct ids.
pub fn gen_trace_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let seq = COUNTER.fetch_add(1, Ordering::Relaxed); // audit: ordering(uniqueness counter; atomic RMW alone guarantees distinct values)
    let mut hasher = DefaultHasher::new();
    std::thread::current().id().hash(&mut hasher);
    let mut x = nanos ^ seq.rotate_left(32) ^ hasher.finish();
    // splitmix64 finalizer: avalanche the structured inputs.
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    // hotpath: allow(hot-alloc) — the id string is the generated artifact
    format!("{x:016x}")
}

pub(crate) fn push_json_escaped(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Emits one structured event as a JSON line to the active sink.
///
/// Does nothing when `level` fails the filter. The line carries
/// `ts_ms`, `level`, `target`, `msg`, the ambient trace id (if any),
/// and the supplied key/value fields. Prefer the [`event!`] and
/// [`event_kv!`] macros, which skip message formatting when disabled.
///
/// [`event!`]: crate::event
/// [`event_kv!`]: crate::event_kv
pub fn emit(level: Level, target: &str, msg: &str, fields: &[(&str, String)]) {
    use std::fmt::Write as _;
    if !enabled(level) {
        return;
    }
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut line = String::with_capacity(128);
    let _ = write!(line, "{{\"ts_ms\":{ts_ms},\"level\":\"{}\"", level.as_str());
    line.push_str(",\"target\":\"");
    push_json_escaped(&mut line, target);
    line.push_str("\",\"msg\":\"");
    push_json_escaped(&mut line, msg);
    line.push('"');
    if let Some(id) = current_trace_id() {
        line.push_str(",\"trace_id\":\"");
        push_json_escaped(&mut line, &id);
        line.push('"');
    }
    for (k, v) in fields {
        line.push_str(",\"");
        push_json_escaped(&mut line, k);
        line.push_str("\":\"");
        push_json_escaped(&mut line, v);
        line.push('"');
    }
    line.push_str("}\n");
    // Holding the sink lock across the write is the point: it is what
    // keeps concurrently emitted JSON lines from interleaving. The
    // line is fully formatted before the lock is taken, so the
    // critical section is exactly one buffered write plus flush.
    let mut guard = sink_lock();
    match guard.as_mut() {
        Some(w) => {
            let _ = w.write_all(line.as_bytes()); // audit: allow(lock-discipline) — the sink lock exists to serialize this write; line is preformatted, section is write+flush only
            let _ = w.flush();
        }
        None => {
            let mut err = std::io::stderr().lock();
            let _ = err.write_all(line.as_bytes()); // audit: allow(lock-discipline) — stderr lock serializes one preformatted line, mirroring the sink branch
        }
    }
}

/// A lightweight timing span: created via [`span`], it emits a
/// debug-level close event with the elapsed microseconds on drop.
/// When the filter is below debug at creation time it is a no-op.
#[derive(Debug)]
pub struct Span {
    target: &'static str,
    name: &'static str,
    start: Option<Instant>,
}

/// Opens a [`Span`]; the close event is emitted when it drops.
pub fn span(target: &'static str, name: &'static str) -> Span {
    Span {
        target,
        name,
        start: enabled(Level::Debug).then(Instant::now),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let elapsed_us = t0.elapsed().as_micros();
            emit(
                Level::Debug,
                self.target,
                "span closed",
                &[
                    ("span", self.name.to_string()),
                    ("elapsed_us", elapsed_us.to_string()),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_accepts_aliases_and_rejects_junk() {
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("OFF"), Some(Level::Off));
        assert_eq!(Level::parse("none"), Some(Level::Off));
        assert_eq!(Level::parse(" warn "), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("TRACE"), Some(Level::Trace));
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn levels_order_by_verbosity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn json_escaping_handles_specials() {
        let mut out = String::new();
        push_json_escaped(&mut out, "a\"b\\c\nd\te\u{1}f");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001f");
    }

    #[test]
    fn trace_ids_are_distinct_and_well_formed() {
        let a = gen_trace_id();
        let b = gen_trace_id();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert_eq!(id.len(), 16, "{id}");
            assert!(id.chars().all(|c| c.is_ascii_hexdigit()), "{id}");
        }
    }

    #[test]
    fn trace_id_context_nests_and_restores() {
        assert_eq!(current_trace_id(), None);
        let inner = with_trace_id(Some("outer".into()), || {
            let nested = with_trace_id(Some("inner".into()), current_trace_id);
            assert_eq!(nested.as_deref(), Some("inner"));
            current_trace_id()
        });
        assert_eq!(inner.as_deref(), Some("outer"));
        assert_eq!(current_trace_id(), None);
    }
}
