//! Prometheus text exposition (format version 0.0.4).
//!
//! [`PromText`] accumulates metric families with `# HELP` / `# TYPE`
//! annotations: plain counters and gauges, latency summaries with
//! p50/p90/p99 quantile labels derived from a [`HistogramSnapshot`],
//! and labelled cumulative histograms for per-stage timings. Empty
//! snapshots are skipped entirely rather than rendered as fake zeros.

use crate::hist::HistogramSnapshot;
use std::fmt::Write as _;

/// The quantiles rendered for every summary family.
const QUANTILES: [(&str, f64); 3] = [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)];

/// Incremental builder for a Prometheus `/metrics` page.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// Creates an empty page.
    pub fn new() -> PromText {
        PromText::default()
    }

    fn head(&mut self, name: &str, help: &str, ty: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {ty}");
    }

    /// Appends a monotonic counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.head(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Appends a gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.head(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Appends a latency summary (p50/p90/p99 + `_sum`/`_count`) from a
    /// histogram snapshot; emits nothing when the snapshot is empty so
    /// absent data is distinguishable from a genuine zero.
    pub fn summary(&mut self, name: &str, help: &str, snap: &HistogramSnapshot) {
        if snap.is_empty() {
            return;
        }
        self.head(name, help, "summary");
        for (label, q) in QUANTILES {
            let _ = writeln!(
                self.out,
                "{name}{{quantile=\"{label}\"}} {}",
                snap.quantile_seconds(q)
            );
        }
        let _ = writeln!(self.out, "{name}_sum {}", snap.sum_seconds());
        let _ = writeln!(self.out, "{name}_count {}", snap.count());
    }

    /// Appends one labelled histogram family with a `stage` label per
    /// series: cumulative `_bucket{le=...}` lines over the non-empty
    /// buckets, a `+Inf` bucket, and `_sum`/`_count`. Series with no
    /// samples are skipped; the family is omitted when all are empty.
    pub fn stage_histograms(
        &mut self,
        name: &str,
        help: &str,
        series: &[(&str, HistogramSnapshot)],
    ) {
        if series.iter().all(|(_, s)| s.is_empty()) {
            return;
        }
        self.head(name, help, "histogram");
        for (label, snap) in series {
            if snap.is_empty() {
                continue;
            }
            let mut cumulative = 0u64;
            for (upper_nanos, count) in snap.buckets() {
                cumulative += count;
                let _ = writeln!(
                    self.out,
                    "{name}_bucket{{stage=\"{label}\",le=\"{}\"}} {cumulative}",
                    upper_nanos as f64 / 1e9
                );
            }
            let _ = writeln!(
                self.out,
                "{name}_bucket{{stage=\"{label}\",le=\"+Inf\"}} {}",
                snap.count()
            );
            let _ = writeln!(
                self.out,
                "{name}_sum{{stage=\"{label}\"}} {}",
                snap.sum_seconds()
            );
            let _ = writeln!(
                self.out,
                "{name}_count{{stage=\"{label}\"}} {}",
                snap.count()
            );
        }
    }

    /// Finishes the page and returns the exposition body.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn counters_and_gauges_render_with_annotations() {
        let mut p = PromText::new();
        p.counter("tdess_queries_served_total", "Queries served.", 42);
        p.gauge("tdess_queue_depth", "Queued requests.", 3.0);
        let page = p.finish();
        assert!(page.contains("# HELP tdess_queries_served_total Queries served.\n"));
        assert!(page.contains("# TYPE tdess_queries_served_total counter\n"));
        assert!(page.contains("tdess_queries_served_total 42\n"));
        assert!(page.contains("# TYPE tdess_queue_depth gauge\n"));
        assert!(page.contains("tdess_queue_depth 3\n"));
    }

    #[test]
    fn empty_summary_is_omitted() {
        let mut p = PromText::new();
        p.summary(
            "tdess_one_shot_latency_seconds",
            "One-shot latency.",
            &HistogramSnapshot::empty(),
        );
        assert_eq!(p.finish(), "");
    }

    #[test]
    fn summary_renders_quantiles_sum_and_count() {
        let h = Histogram::new();
        for n in 1..=100u64 {
            h.record_nanos(n * 1_000_000); // 1..=100 ms
        }
        let mut p = PromText::new();
        p.summary("tdess_one_shot_latency_seconds", "One-shot.", &h.snapshot());
        let page = p.finish();
        assert!(page.contains("# TYPE tdess_one_shot_latency_seconds summary\n"));
        assert!(page.contains("tdess_one_shot_latency_seconds{quantile=\"0.5\"}"));
        assert!(page.contains("tdess_one_shot_latency_seconds{quantile=\"0.9\"}"));
        assert!(page.contains("tdess_one_shot_latency_seconds{quantile=\"0.99\"}"));
        assert!(page.contains("tdess_one_shot_latency_seconds_count 100\n"));
        assert!(page.contains("tdess_one_shot_latency_seconds_sum "));
    }

    #[test]
    fn stage_histogram_renders_cumulative_buckets_and_skips_empty_series() {
        let h = Histogram::new();
        h.record_nanos(5_000);
        h.record_nanos(50_000);
        let mut p = PromText::new();
        p.stage_histograms(
            "tdess_stage_duration_seconds",
            "Stage timings.",
            &[
                ("voxelize", h.snapshot()),
                ("rerank", HistogramSnapshot::empty()),
            ],
        );
        let page = p.finish();
        assert!(page.contains("# TYPE tdess_stage_duration_seconds histogram\n"));
        assert!(page
            .contains("tdess_stage_duration_seconds_bucket{stage=\"voxelize\",le=\"+Inf\"} 2\n"));
        assert!(page.contains("tdess_stage_duration_seconds_count{stage=\"voxelize\"} 2\n"));
        assert!(!page.contains("stage=\"rerank\""));
        // Cumulative counts never decrease along the bucket lines.
        let counts: Vec<u64> = page
            .lines()
            .filter(|l| l.contains("stage=\"voxelize\",le=") && !l.contains("+Inf"))
            .filter_map(|l| l.rsplit(' ').next())
            .filter_map(|v| v.parse().ok())
            .collect();
        assert!(!counts.is_empty());
        for w in counts.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn all_empty_stage_family_is_omitted() {
        let mut p = PromText::new();
        p.stage_histograms(
            "tdess_stage_duration_seconds",
            "Stage timings.",
            &[("eigen", HistogramSnapshot::empty())],
        );
        assert_eq!(p.finish(), "");
    }
}
