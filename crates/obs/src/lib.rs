//! # tdess-obs — the 3DESS observability tier
//!
//! Self-contained except for the workspace's vendored `serde` shim
//! (used only for the wire-portable trace payload types), providing,
//! for every other tier:
//!
//! * **tracing** ([`trace`]) — leveled, env-filtered (`TDESS_LOG`)
//!   structured events as JSON lines to a redirectable sink, with
//!   thread-local trace-id propagation ([`with_trace_id`] /
//!   [`gen_trace_id`]) so one request can be followed from the client
//!   through the worker pool to the index;
//! * **histograms** ([`hist`]) — log-linear (HDR-style) concurrent
//!   latency [`Histogram`]s with mergeable [`HistogramSnapshot`]s,
//!   exact count/min/max/sum, and p50/p90/p99 quantiles bounded to
//!   ≤6.25% relative error;
//! * **stage registry** ([`stage`]) — static per-[`Stage`] histograms
//!   fed by drop-guard [`StageTimer`]s across the extraction pipeline
//!   (normalize → voxelize → skeletonize → graph → eigen) and query
//!   path (extract, index search, similarity combine, re-rank);
//! * **request spans** ([`span`]) — hierarchical per-request span
//!   trees ([`begin_request`] / [`RequestTrace`]) fed by the same
//!   stage timers, with cross-request links and annotations;
//! * **flight recorder** ([`recorder`]) — a fixed-capacity ring of
//!   completed request traces under tail-based sampling (always keep
//!   slow and error traces, sample the rest);
//! * **export** ([`export`]) — a Chrome trace-event JSON serializer
//!   ([`chrome_trace_json`]) whose output loads in Perfetto and
//!   `chrome://tracing`;
//! * **exposition** ([`prom`]) — a [`PromText`] builder for the
//!   Prometheus text format served by `tdess serve --metrics-addr`.
//!
//! See DESIGN.md §"OBS tier" for the span model, bucket scheme,
//! tail-sampling policy, and trace-id propagation rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod hist;
pub mod prom;
pub mod recorder;
pub mod span;
pub mod stage;
pub mod trace;

pub use export::chrome_trace_json;
pub use hist::{Histogram, HistogramSnapshot};
pub use prom::PromText;
pub use recorder::{FlightRecorder, RecorderConfig, RecorderStats};
pub use span::{
    annotate, begin_request, current_span_link, mark_error, trace_active, RequestTrace, SpanRecord,
    TagValue, TraceGuard,
};
pub use stage::{stage_histogram, stage_snapshots, Stage, StageTimer};
pub use trace::{
    current_trace_id, emit, enabled, gen_trace_id, level, set_level, set_sink, sink_to_stderr,
    span, with_trace_id, Capture, Level, Span,
};

/// Emits a leveled event with a formatted message and no extra fields.
///
/// ```
/// tdess_obs::event!(Info, "tdess.serve", "serving {} shapes", 113);
/// ```
///
/// The format arguments are only evaluated when the level passes the
/// active `TDESS_LOG` filter.
#[macro_export]
macro_rules! event {
    ($lvl:ident, $target:expr, $($fmt:tt)+) => {
        if $crate::enabled($crate::Level::$lvl) {
            $crate::emit($crate::Level::$lvl, $target, &::std::format!($($fmt)+), &[]);
        }
    };
}

/// Emits a leveled event with structured key/value fields.
///
/// ```
/// tdess_obs::event_kv!(Warn, "tdess.net", "slow request", {
///     duration_ms: 1250,
///     kind: "SearchMesh",
/// });
/// ```
///
/// Field values are rendered with `Display` and only evaluated when
/// the level passes the filter.
#[macro_export]
macro_rules! event_kv {
    ($lvl:ident, $target:expr, $msg:expr, { $($k:ident : $v:expr),+ $(,)? }) => {
        if $crate::enabled($crate::Level::$lvl) {
            $crate::emit(
                $crate::Level::$lvl,
                $target,
                $msg,
                &[$((::core::stringify!($k), ::std::format!("{}", $v))),+],
            );
        }
    };
}
