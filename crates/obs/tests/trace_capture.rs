//! End-to-end behavior of the tracing side: filtering, the JSON-lines
//! shape, trace-id propagation, and the capture sink.
//!
//! The level and sink are process-global, so everything lives in one
//! `#[test]` to avoid cross-test interference.

use tdess_obs::{event, event_kv, set_level, sink_to_stderr, with_trace_id, Capture, Level};

#[test]
fn events_are_filtered_structured_and_trace_tagged() {
    let capture = Capture::install();
    set_level(Level::Debug);

    // Filtering: info passes at debug, debug passes, trace does not.
    event!(Info, "tdess.test", "hello {}", 42);
    event!(Trace, "tdess.test", "invisible");
    let text = capture.contents();
    assert!(text.contains("\"msg\":\"hello 42\""), "{text}");
    assert!(text.contains("\"level\":\"info\""), "{text}");
    assert!(text.contains("\"target\":\"tdess.test\""), "{text}");
    assert!(text.contains("\"ts_ms\":"), "{text}");
    assert!(!text.contains("invisible"), "{text}");

    // Structured fields render as string values.
    event_kv!(Warn, "tdess.test", "slow request", {
        duration_ms: 1250,
        kind: "SearchMesh",
    });
    let text = capture.contents();
    assert!(text.contains("\"duration_ms\":\"1250\""), "{text}");
    assert!(text.contains("\"kind\":\"SearchMesh\""), "{text}");

    // Ambient trace ids are attached to every event in scope.
    with_trace_id(Some("cafe0123cafe0123".into()), || {
        event!(Debug, "tdess.test", "inside the span");
    });
    event!(Debug, "tdess.test", "outside the span");
    let text = capture.contents();
    let inside = text
        .lines()
        .find(|l| l.contains("inside the span"))
        .expect("inside event emitted");
    assert!(
        inside.contains("\"trace_id\":\"cafe0123cafe0123\""),
        "{inside}"
    );
    let outside = text
        .lines()
        .find(|l| l.contains("outside the span"))
        .expect("outside event emitted");
    assert!(!outside.contains("trace_id"), "{outside}");

    // Every emitted line is itself valid JSON (no broken escaping).
    for line in capture.contents().lines() {
        let parsed: Result<serde_json::Value, _> = serde_json::from_str(line);
        assert!(parsed.is_ok(), "unparsable event line: {line}");
    }

    // Warn filtering silences info (the satellite requirement for
    // TDESS_LOG=warn quieting the serve banner).
    set_level(Level::Warn);
    let before = capture.contents().len();
    event!(Info, "tdess.test", "should be silenced");
    assert_eq!(capture.contents().len(), before);
    event!(Warn, "tdess.test", "still audible");
    assert!(capture.contents().contains("still audible"));

    // Off silences everything, including errors.
    set_level(Level::Off);
    let before = capture.contents().len();
    event!(Error, "tdess.test", "nothing at off");
    assert_eq!(capture.contents().len(), before);

    set_level(Level::Info);
    sink_to_stderr();
}
