//! End-to-end behavior of the tracing side: filtering, the JSON-lines
//! shape, trace-id propagation, and the capture sink.
//!
//! The level and sink are process-global, so everything lives in one
//! `#[test]` to avoid cross-test interference.

use std::sync::atomic::{AtomicUsize, Ordering};

use tdess_obs::{event, event_kv, set_level, sink_to_stderr, with_trace_id, Capture, Level};

/// A `Display` probe that counts how often it is rendered. Formatting
/// an event argument is where its allocations happen, so "never
/// rendered" means the filtered-out event built no strings.
struct FormatProbe<'a>(&'a AtomicUsize);

impl std::fmt::Display for FormatProbe<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fetch_add(1, Ordering::Relaxed);
        write!(f, "probe")
    }
}

#[test]
fn events_are_filtered_structured_and_trace_tagged() {
    let capture = Capture::install();
    set_level(Level::Debug);

    // Filtering: info passes at debug, debug passes, trace does not.
    event!(Info, "tdess.test", "hello {}", 42);
    event!(Trace, "tdess.test", "invisible");
    let text = capture.contents();
    assert!(text.contains("\"msg\":\"hello 42\""), "{text}");
    assert!(text.contains("\"level\":\"info\""), "{text}");
    assert!(text.contains("\"target\":\"tdess.test\""), "{text}");
    assert!(text.contains("\"ts_ms\":"), "{text}");
    assert!(!text.contains("invisible"), "{text}");

    // Structured fields render as string values.
    event_kv!(Warn, "tdess.test", "slow request", {
        duration_ms: 1250,
        kind: "SearchMesh",
    });
    let text = capture.contents();
    assert!(text.contains("\"duration_ms\":\"1250\""), "{text}");
    assert!(text.contains("\"kind\":\"SearchMesh\""), "{text}");

    // Ambient trace ids are attached to every event in scope.
    with_trace_id(Some("cafe0123cafe0123".into()), || {
        event!(Debug, "tdess.test", "inside the span");
    });
    event!(Debug, "tdess.test", "outside the span");
    let text = capture.contents();
    let inside = text
        .lines()
        .find(|l| l.contains("inside the span"))
        .expect("inside event emitted");
    assert!(
        inside.contains("\"trace_id\":\"cafe0123cafe0123\""),
        "{inside}"
    );
    let outside = text
        .lines()
        .find(|l| l.contains("outside the span"))
        .expect("outside event emitted");
    assert!(!outside.contains("trace_id"), "{outside}");

    // Every emitted line is itself valid JSON (no broken escaping).
    for line in capture.contents().lines() {
        let parsed: Result<serde_json::Value, _> = serde_json::from_str(line);
        assert!(parsed.is_ok(), "unparsable event line: {line}");
    }

    // Warn filtering silences info (the satellite requirement for
    // TDESS_LOG=warn quieting the serve banner).
    set_level(Level::Warn);
    let before = capture.contents().len();
    event!(Info, "tdess.test", "should be silenced");
    assert_eq!(capture.contents().len(), before);
    event!(Warn, "tdess.test", "still audible");
    assert!(capture.contents().contains("still audible"));

    // Off silences everything, including errors.
    set_level(Level::Off);
    let before = capture.contents().len();
    event!(Error, "tdess.test", "nothing at off");
    assert_eq!(capture.contents().len(), before);

    // Filtered-out events must not even format their arguments: the
    // macros guard evaluation behind `enabled`, so hot call sites pay
    // no string-building cost when the logger is off.
    let renders = AtomicUsize::new(0);
    event!(Error, "tdess.test", "lazy {}", FormatProbe(&renders));
    event_kv!(Error, "tdess.test", "lazy", { probe: FormatProbe(&renders) });
    assert_eq!(
        renders.load(Ordering::Relaxed),
        0,
        "filtered-out event rendered its arguments"
    );

    // And the probe does fire once the level passes, proving it works.
    set_level(Level::Info);
    event_kv!(Warn, "tdess.test", "eager", { probe: FormatProbe(&renders) });
    assert_eq!(renders.load(Ordering::Relaxed), 1);

    sink_to_stderr();
}
