//! Property test: histogram quantiles bracket the exact quantiles of
//! the recorded samples within one bucket's relative error (6.25%).

use proptest::prelude::*;
use tdess_obs::Histogram;

/// Exact q-quantile of a sorted sample set, using the same
/// ceil(q * n) rank convention the histogram reports.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reported_quantiles_bracket_exact_quantiles(
        values in prop::collection::vec(1u64..5_000_000_000u64, 1..200),
        q in 0.0f64..1.0f64,
    ) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record_nanos(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let reported = hist.snapshot().quantile_nanos(q);
        // Lower bound: the reported value is a bucket upper bound, so
        // it can never undershoot the exact sample at that rank.
        prop_assert!(
            reported >= exact,
            "reported {reported} < exact {exact} at q={q}"
        );
        // Upper bound: one bucket's width above the exact value, i.e.
        // 1/16 relative plus 1 for unit-bucket rounding.
        prop_assert!(
            reported <= exact + exact / 16 + 1,
            "reported {reported} exceeds exact {exact} + 6.25% at q={q}"
        );
    }

    #[test]
    fn quantiles_stay_within_observed_range(
        values in prop::collection::vec(1u64..10_000_000_000u64, 1..100),
    ) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record_nanos(v);
        }
        let snap = hist.snapshot();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let r = snap.quantile_nanos(q);
            prop_assert!(r >= snap.min_nanos());
            prop_assert!(r <= snap.max_nanos());
        }
    }
}
