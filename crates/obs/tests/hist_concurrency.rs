//! Concurrency guarantees for the obs histograms: no lost counts under
//! contended recording, and exact shard merging.

use std::sync::Arc;
use tdess_obs::{Histogram, HistogramSnapshot};

const THREADS: u64 = 8;
const PER_THREAD: u64 = 5_000;

#[test]
fn concurrent_recording_loses_no_counts() {
    let hist = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread values across many octaves, per-thread offsets.
                    hist.record_nanos(1 + t + i * 997);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("recorder thread panicked");
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count(), THREADS * PER_THREAD);
    assert_eq!(snap.min_nanos(), 1);
    assert_eq!(snap.max_nanos(), (THREADS - 1) + (PER_THREAD - 1) * 997 + 1);
    // The per-bucket counts must account for every sample too.
    let bucket_total: u64 = snap.buckets().map(|(_, c)| c).sum();
    assert_eq!(bucket_total, THREADS * PER_THREAD);
}

#[test]
fn per_thread_shards_merge_exactly_to_the_shared_total() {
    // Record the same sample stream twice: once into a shared histogram
    // from 8 threads, once into 8 private shards merged afterwards.
    let shared = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let shard = Histogram::new();
                for i in 0..PER_THREAD {
                    let v = (t + 1) * 13 + i * i % 1_000_003;
                    shard.record_nanos(v);
                    shared.record_nanos(v);
                }
                shard.snapshot()
            })
        })
        .collect();
    let mut merged = HistogramSnapshot::empty();
    for h in handles {
        merged.merge(&h.join().expect("shard thread panicked"));
    }
    assert_eq!(merged, shared.snapshot());
    assert_eq!(merged.count(), THREADS * PER_THREAD);
}
