//! The 113-shape evaluation corpus.
//!
//! Mirrors the paper's database: 113 engineering shapes of which 86
//! are manually classified into 26 groups (sizes 2–8, Figure 4) and 27
//! are "noisy shapes" belonging to no group. Groups are parametric
//! families with jittered dimensions; every shape additionally receives
//! a random rigid transform and uniform scale so pose normalization is
//! genuinely exercised.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tdess_geom::{Mat3, TriMesh, Vec3};

use crate::families::Family;
use crate::noise::noise_shape;

/// Group sizes matching Figure 4's ascending 2..8 profile:
/// 10×2 + 8×3 + 4×4 + 5 + 6 + 7 + 8 = 86 classified shapes.
pub const GROUP_SIZES: [usize; 26] = [
    2, 2, 2, 2, 2, 2, 2, 2, 2, 2, // ten pairs
    3, 3, 3, 3, 3, 3, 3, 3, // eight triples
    4, 4, 4, 4, // four quadruples
    5, 6, 7, 8, // one each of 5–8
];

/// Number of unclassified noise shapes.
pub const NUM_NOISE: usize = 27;

/// One shape in the corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShapeRecord {
    /// Human-readable identifier, e.g. `flange-2` or `noise-13`.
    pub name: String,
    /// Ground-truth group id, `None` for noise shapes.
    pub group: Option<usize>,
    /// The mesh, in a randomized pose.
    pub mesh: TriMesh,
}

/// The full labeled corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    /// All 113 shapes: classified first (grouped contiguously), then
    /// noise.
    pub shapes: Vec<ShapeRecord>,
    /// Family name per group id.
    pub group_names: Vec<String>,
}

impl Corpus {
    /// Indices of the members of group `g`.
    pub fn group_members(&self, g: usize) -> Vec<usize> {
        self.shapes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.group == Some(g))
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.group_names.len()
    }

    /// Sizes of all groups, in group-id order.
    pub fn group_sizes(&self) -> Vec<usize> {
        (0..self.num_groups())
            .map(|g| self.group_members(g).len())
            .collect()
    }

    /// Indices of the noise shapes.
    pub fn noise_shapes(&self) -> Vec<usize> {
        self.shapes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.group.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    /// One representative member (the first) of each group.
    pub fn representatives(&self) -> Vec<usize> {
        (0..self.num_groups())
            .map(|g| self.group_members(g)[0])
            .collect()
    }
}

/// Applies a random rigid transform plus uniform scale, mimicking CAD
/// models arriving in arbitrary coordinate frames.
fn random_pose(mesh: &mut TriMesh, rng: &mut StdRng) {
    let axis = Vec3::new(
        rng.gen_range(-1.0..1.0),
        rng.gen_range(-1.0..1.0),
        rng.gen_range(-1.0..1.0),
    );
    let angle = rng.gen_range(0.0..std::f64::consts::TAU);
    mesh.rotate(&Mat3::rotation_axis_angle(axis, angle));
    // Parts of a family share nominal dimensions in a real PDM
    // database; the unit jitter here models drawing-unit noise, not
    // arbitrary rescaling (which would turn the volume and scale-factor
    // feature dimensions into pure noise).
    mesh.scale_uniform(rng.gen_range(0.85..1.18));
    mesh.translate(Vec3::new(
        rng.gen_range(-10.0..10.0),
        rng.gen_range(-10.0..10.0),
        rng.gen_range(-10.0..10.0),
    ));
}

/// Builds the 113-shape corpus. Deterministic for a fixed seed.
pub fn build_corpus(seed: u64) -> Corpus {
    build_corpus_scaled(seed, 1)
}

/// Builds a corpus with every group (and the noise set) `multiplier`
/// times its Figure 4 size — the scalability variant used to test the
/// paper's prediction that eigenvalue selectivity degrades as the
/// database grows. `build_corpus_scaled(seed, 1)` is exactly
/// [`build_corpus`].
pub fn build_corpus_scaled(seed: u64, multiplier: usize) -> Corpus {
    build_corpus_custom(seed, multiplier, multiplier)
}

/// Builds a corpus with independent group-size and noise multipliers.
/// Scaling only the noise grows the *distractor* population while the
/// relevant sets stay fixed — the cleanest probe of how retrieval
/// degrades in larger databases.
pub fn build_corpus_custom(seed: u64, group_multiplier: usize, noise_multiplier: usize) -> Corpus {
    assert!(
        group_multiplier >= 1 && noise_multiplier >= 1,
        "multipliers must be at least 1"
    );
    let multiplier = group_multiplier;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shapes = Vec::with_capacity(113);
    let mut group_names = Vec::with_capacity(26);

    for (g, (&size, family)) in GROUP_SIZES.iter().zip(Family::ALL).enumerate() {
        group_names.push(family.name().to_owned());
        for member in 0..size * multiplier {
            let mut mesh = family.generate(&mut rng);
            random_pose(&mut mesh, &mut rng);
            shapes.push(ShapeRecord {
                name: format!("{}-{member}", family.name()),
                group: Some(g),
                mesh,
            });
        }
    }
    for i in 0..NUM_NOISE * noise_multiplier {
        let mut mesh = noise_shape(i, &mut rng);
        random_pose(&mut mesh, &mut rng);
        shapes.push(ShapeRecord {
            name: format!("noise-{i}"),
            group: None,
            mesh,
        });
    }

    // Shuffle the storage order: a real database does not store group
    // members contiguously, and a grouped order would let distance
    // ties resolve in the ground truth's favor.
    for i in (1..shapes.len()).rev() {
        let j = rng.gen_range(0..=i);
        shapes.swap(i, j);
    }

    Corpus {
        shapes,
        group_names,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_matches_paper_statistics() {
        assert_eq!(GROUP_SIZES.iter().sum::<usize>(), 86);
        assert_eq!(GROUP_SIZES.len(), 26);
        let c = build_corpus(2004);
        assert_eq!(c.shapes.len(), 113);
        assert_eq!(c.num_groups(), 26);
        assert_eq!(c.noise_shapes().len(), 27);
        assert_eq!(c.group_sizes(), GROUP_SIZES.to_vec());
        // Figure 4: sizes span 2..=8.
        assert_eq!(*c.group_sizes().iter().min().unwrap(), 2);
        assert_eq!(*c.group_sizes().iter().max().unwrap(), 8);
    }

    #[test]
    fn every_corpus_shape_is_watertight() {
        let c = build_corpus(7);
        for s in &c.shapes {
            assert!(s.mesh.is_watertight(), "{}", s.name);
            assert!(s.mesh.signed_volume() > 0.0, "{}", s.name);
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = build_corpus(11);
        let b = build_corpus(11);
        assert_eq!(a.shapes.len(), b.shapes.len());
        for (x, y) in a.shapes.iter().zip(&b.shapes) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.mesh.num_vertices(), y.mesh.num_vertices());
            assert_eq!(x.mesh.vertices.first(), y.mesh.vertices.first());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = build_corpus(1);
        let b = build_corpus(2);
        assert_ne!(a.shapes[0].mesh.vertices[0], b.shapes[0].mesh.vertices[0]);
    }

    #[test]
    fn representatives_one_per_group() {
        let c = build_corpus(3);
        let reps = c.representatives();
        assert_eq!(reps.len(), 26);
        let groups: std::collections::HashSet<_> =
            reps.iter().map(|&i| c.shapes[i].group).collect();
        assert_eq!(groups.len(), 26);
    }

    #[test]
    fn names_are_unique() {
        let c = build_corpus(5);
        let names: std::collections::HashSet<_> = c.shapes.iter().map(|s| &s.name).collect();
        assert_eq!(names.len(), 113);
    }
}
