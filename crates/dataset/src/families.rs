//! Parametric engineering-part families.
//!
//! Each family is a generator of watertight meshes whose members share
//! an engineering character (bracket, channel, flange, gear, …) but
//! differ in jittered dimensions — the structure the paper's manually
//! classified groups have. All generators use only extrusion,
//! revolution, and closed primitives, so every produced mesh is
//! watertight and exact moment integration applies.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tdess_geom::polygon::{rect_ring, regular_ngon};
use tdess_geom::{extrude, primitives, revolve, Polygon, TriMesh, Vec3, P2};

/// The twenty-six part families of the evaluation corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Extruded L-profile bracket.
    LBracket,
    /// Extruded T-section.
    TSection,
    /// Extruded U-channel.
    UChannel,
    /// Extruded I-beam.
    IBeam,
    /// Extruded Z-section.
    ZSection,
    /// Extruded plus/cross section.
    PlusSection,
    /// Rectangular plate with four corner bolt holes.
    PlateFourHoles,
    /// Rectangular plate with one central hole.
    PlateOneHole,
    /// Thin washer (annular plate).
    Washer,
    /// Spur gear blank with teeth and a center bore.
    SpurGear,
    /// Extruded star profile.
    Star,
    /// Hexagonal prism (nut blank).
    HexPrism,
    /// Revolved stepped shaft (three diameters).
    SteppedShaft,
    /// Revolved flange: disk base with a hub.
    Flange,
    /// Revolved bushing (thick-walled tube).
    Bushing,
    /// Revolved cone frustum.
    ConeFrustum,
    /// Revolved pulley with a V-groove rim.
    Pulley,
    /// Revolved bottle (body, shoulder, neck).
    Bottle,
    /// Torus (O-ring).
    Torus,
    /// Ellipsoid.
    Ellipsoid,
    /// Rectangular block.
    Block,
    /// Slender cylindrical rod.
    Rod,
    /// Long thin-walled pipe.
    Pipe,
    /// Extruded right-triangle wedge.
    Wedge,
    /// Extruded open C-ring (annulus sector).
    CRing,
    /// Solid cone.
    Cone,
}

impl Family {
    /// All families, in corpus order.
    pub const ALL: [Family; 26] = [
        Family::LBracket,
        Family::TSection,
        Family::UChannel,
        Family::IBeam,
        Family::ZSection,
        Family::PlusSection,
        Family::PlateFourHoles,
        Family::PlateOneHole,
        Family::Washer,
        Family::SpurGear,
        Family::Star,
        Family::HexPrism,
        Family::SteppedShaft,
        Family::Flange,
        Family::Bushing,
        Family::ConeFrustum,
        Family::Pulley,
        Family::Bottle,
        Family::Torus,
        Family::Ellipsoid,
        Family::Block,
        Family::Rod,
        Family::Pipe,
        Family::Wedge,
        Family::CRing,
        Family::Cone,
    ];

    /// Short name used in shape identifiers.
    pub fn name(self) -> &'static str {
        match self {
            Family::LBracket => "l-bracket",
            Family::TSection => "t-section",
            Family::UChannel => "u-channel",
            Family::IBeam => "i-beam",
            Family::ZSection => "z-section",
            Family::PlusSection => "plus-section",
            Family::PlateFourHoles => "plate-4holes",
            Family::PlateOneHole => "plate-1hole",
            Family::Washer => "washer",
            Family::SpurGear => "spur-gear",
            Family::Star => "star",
            Family::HexPrism => "hex-prism",
            Family::SteppedShaft => "stepped-shaft",
            Family::Flange => "flange",
            Family::Bushing => "bushing",
            Family::ConeFrustum => "cone-frustum",
            Family::Pulley => "pulley",
            Family::Bottle => "bottle",
            Family::Torus => "torus",
            Family::Ellipsoid => "ellipsoid",
            Family::Block => "block",
            Family::Rod => "rod",
            Family::Pipe => "pipe",
            Family::Wedge => "wedge",
            Family::CRing => "c-ring",
            Family::Cone => "cone",
        }
    }

    /// Generates one member of the family with jittered dimensions.
    /// The mesh is produced in a canonical pose; callers typically
    /// apply a random rigid transform afterwards.
    pub fn generate(self, rng: &mut StdRng) -> TriMesh {
        // Relative jitter around a base dimension.
        fn j(rng: &mut StdRng, base: f64, rel: f64) -> f64 {
            base * (1.0 + rng.gen_range(-rel..rel))
        }

        match self {
            Family::LBracket => {
                let w = j(rng, 3.0, 0.2);
                let h = j(rng, 4.0, 0.2);
                let t = j(rng, 0.8, 0.15);
                let depth = j(rng, 1.5, 0.2);
                let profile = Polygon::simple(vec![
                    P2::new(0.0, 0.0),
                    P2::new(w, 0.0),
                    P2::new(w, t),
                    P2::new(t, t),
                    P2::new(t, h),
                    P2::new(0.0, h),
                ]);
                extrude(&profile, depth)
            }
            Family::TSection => {
                let w = j(rng, 4.0, 0.2);
                let h = j(rng, 3.5, 0.2);
                let t = j(rng, 0.7, 0.15);
                let depth = j(rng, 1.8, 0.2);
                let profile = Polygon::simple(vec![
                    P2::new(-w / 2.0, 0.0),
                    P2::new(w / 2.0, 0.0),
                    P2::new(w / 2.0, t),
                    P2::new(t / 2.0, t),
                    P2::new(t / 2.0, h),
                    P2::new(-t / 2.0, h),
                    P2::new(-t / 2.0, t),
                    P2::new(-w / 2.0, t),
                ]);
                extrude(&profile, depth)
            }
            Family::UChannel => {
                let w = j(rng, 3.0, 0.2);
                let h = j(rng, 2.5, 0.2);
                let t = j(rng, 0.5, 0.15);
                let depth = j(rng, 5.0, 0.25);
                let profile = Polygon::simple(vec![
                    P2::new(0.0, 0.0),
                    P2::new(w, 0.0),
                    P2::new(w, h),
                    P2::new(w - t, h),
                    P2::new(w - t, t),
                    P2::new(t, t),
                    P2::new(t, h),
                    P2::new(0.0, h),
                ]);
                extrude(&profile, depth)
            }
            Family::IBeam => {
                let w = j(rng, 3.0, 0.2); // flange width
                let h = j(rng, 4.0, 0.2); // total height
                let tf = j(rng, 0.6, 0.15); // flange thickness
                let tw = j(rng, 0.5, 0.15); // web thickness
                let depth = j(rng, 6.0, 0.25);
                let profile = Polygon::simple(vec![
                    P2::new(-w / 2.0, 0.0),
                    P2::new(w / 2.0, 0.0),
                    P2::new(w / 2.0, tf),
                    P2::new(tw / 2.0, tf),
                    P2::new(tw / 2.0, h - tf),
                    P2::new(w / 2.0, h - tf),
                    P2::new(w / 2.0, h),
                    P2::new(-w / 2.0, h),
                    P2::new(-w / 2.0, h - tf),
                    P2::new(-tw / 2.0, h - tf),
                    P2::new(-tw / 2.0, tf),
                    P2::new(-w / 2.0, tf),
                ]);
                extrude(&profile, depth)
            }
            Family::ZSection => {
                let b = j(rng, 2.0, 0.2); // flange width
                let h = j(rng, 4.0, 0.2);
                let t = j(rng, 0.6, 0.15);
                let depth = j(rng, 5.0, 0.25);
                let profile = Polygon::simple(vec![
                    P2::new(0.0, 0.0),
                    P2::new(b, 0.0),
                    P2::new(b, t),
                    P2::new(t, t),
                    P2::new(t, h),
                    P2::new(t - b, h),
                    P2::new(t - b, h - t),
                    P2::new(0.0, h - t),
                ]);
                extrude(&profile, depth)
            }
            Family::PlusSection => {
                let a = j(rng, 4.0, 0.2); // arm span
                let t = j(rng, 1.0, 0.15); // arm thickness
                let depth = j(rng, 1.2, 0.2);
                let (ha, ht) = (a / 2.0, t / 2.0);
                let profile = Polygon::simple(vec![
                    P2::new(-ht, -ha),
                    P2::new(ht, -ha),
                    P2::new(ht, -ht),
                    P2::new(ha, -ht),
                    P2::new(ha, ht),
                    P2::new(ht, ht),
                    P2::new(ht, ha),
                    P2::new(-ht, ha),
                    P2::new(-ht, ht),
                    P2::new(-ha, ht),
                    P2::new(-ha, -ht),
                    P2::new(-ht, -ht),
                ]);
                extrude(&profile, depth)
            }
            Family::PlateFourHoles => {
                let w = j(rng, 5.0, 0.2);
                let h = j(rng, 3.0, 0.2);
                let t = j(rng, 0.5, 0.2);
                let r = j(rng, 0.4, 0.15);
                let inset = 0.22;
                let holes = [
                    (-w * (0.5 - inset), -h * (0.5 - inset)),
                    (w * (0.5 - inset), -h * (0.5 - inset)),
                    (w * (0.5 - inset), h * (0.5 - inset)),
                    (-w * (0.5 - inset), h * (0.5 - inset)),
                ]
                .iter()
                .map(|&(cx, cy)| regular_ngon(12, r, cx, cy, 0.1))
                .collect();
                let profile = Polygon::new(rect_ring(-w / 2.0, -h / 2.0, w / 2.0, h / 2.0), holes);
                extrude(&profile, t)
            }
            Family::PlateOneHole => {
                let w = j(rng, 4.0, 0.2);
                let h = j(rng, 4.0, 0.2);
                let t = j(rng, 0.6, 0.2);
                let r = j(rng, 1.0, 0.2);
                let profile = Polygon::new(
                    rect_ring(-w / 2.0, -h / 2.0, w / 2.0, h / 2.0),
                    vec![regular_ngon(16, r.min(w.min(h) * 0.35), 0.0, 0.0, 0.05)],
                );
                extrude(&profile, t)
            }
            Family::Washer => {
                let ro = j(rng, 2.0, 0.2);
                let ri = ro * j(rng, 0.55, 0.1);
                let t = j(rng, 0.35, 0.2);
                let profile = Polygon::new(
                    regular_ngon(24, ro, 0.0, 0.0, 0.0),
                    vec![regular_ngon(24, ri, 0.0, 0.0, 0.03)],
                );
                extrude(&profile, t)
            }
            Family::SpurGear => {
                let teeth = rng.gen_range(8..14usize);
                let r_root = j(rng, 2.0, 0.15);
                let r_tip = r_root * j(rng, 1.25, 0.05);
                let bore = r_root * j(rng, 0.3, 0.1);
                let t = j(rng, 0.8, 0.2);
                // Four profile points per tooth: root-root-tip-tip.
                let mut ring = Vec::with_capacity(teeth * 4);
                for i in 0..teeth {
                    let base = 2.0 * std::f64::consts::PI * i as f64 / teeth as f64;
                    let step = 2.0 * std::f64::consts::PI / teeth as f64 / 4.0;
                    for (s, r) in [(0.0, r_root), (1.0, r_tip), (2.0, r_tip), (3.0, r_root)] {
                        let a = base + s * step;
                        ring.push(P2::new(r * a.cos(), r * a.sin()));
                    }
                }
                let profile = Polygon::new(ring, vec![regular_ngon(12, bore, 0.0, 0.0, 0.07)]);
                extrude(&profile, t)
            }
            Family::Star => {
                let points = rng.gen_range(5..8usize);
                let ro = j(rng, 2.5, 0.15);
                let ri = ro * j(rng, 0.45, 0.1);
                let t = j(rng, 0.7, 0.2);
                let mut ring = Vec::with_capacity(points * 2);
                for i in 0..points * 2 {
                    let r = if i % 2 == 0 { ro } else { ri };
                    let a = std::f64::consts::PI * i as f64 / points as f64;
                    ring.push(P2::new(r * a.cos(), r * a.sin()));
                }
                extrude(&Polygon::simple(ring), t)
            }
            Family::HexPrism => {
                let r = j(rng, 1.8, 0.2);
                let t = j(rng, 1.2, 0.25);
                extrude(&Polygon::simple(regular_ngon(6, r, 0.0, 0.0, 0.0)), t)
            }
            Family::SteppedShaft => {
                let r1 = j(rng, 1.0, 0.15);
                let r2 = r1 * j(rng, 0.65, 0.1);
                let r3 = r1 * j(rng, 0.4, 0.1);
                let h1 = j(rng, 2.0, 0.2);
                let h2 = j(rng, 2.5, 0.2);
                let h3 = j(rng, 1.5, 0.2);
                let profile = vec![
                    P2::new(0.0, 0.0),
                    P2::new(r1, 0.0),
                    P2::new(r1, h1),
                    P2::new(r2, h1),
                    P2::new(r2, h1 + h2),
                    P2::new(r3, h1 + h2),
                    P2::new(r3, h1 + h2 + h3),
                    P2::new(0.0, h1 + h2 + h3),
                ];
                revolve(&profile, 32)
            }
            Family::Flange => {
                let rb = j(rng, 2.5, 0.15); // base radius
                let tb = j(rng, 0.6, 0.2); // base thickness
                let rh = rb * j(rng, 0.4, 0.1); // hub radius
                let hh = j(rng, 1.8, 0.2); // hub height
                let profile = vec![
                    P2::new(0.0, 0.0),
                    P2::new(rb, 0.0),
                    P2::new(rb, tb),
                    P2::new(rh, tb),
                    P2::new(rh, tb + hh),
                    P2::new(0.0, tb + hh),
                ];
                revolve(&profile, 32)
            }
            Family::Bushing => {
                let ro = j(rng, 1.5, 0.15);
                let ri = ro * j(rng, 0.6, 0.1);
                let h = j(rng, 2.0, 0.25);
                revolve(&rect_ring(ri, 0.0, ro, h), 32)
            }
            Family::ConeFrustum => {
                let r1 = j(rng, 2.0, 0.15);
                let r2 = r1 * j(rng, 0.5, 0.15);
                let h = j(rng, 2.5, 0.2);
                let profile = vec![
                    P2::new(0.0, 0.0),
                    P2::new(r1, 0.0),
                    P2::new(r2, h),
                    P2::new(0.0, h),
                ];
                revolve(&profile, 32)
            }
            Family::Pulley => {
                let r = j(rng, 2.2, 0.15);
                let h = j(rng, 1.2, 0.2);
                let g = h * 0.22; // groove half-width
                let d = r * j(rng, 0.25, 0.1); // groove depth
                let bore = r * 0.25;
                let profile = vec![
                    P2::new(bore, 0.0),
                    P2::new(r, 0.0),
                    P2::new(r, h / 2.0 - g),
                    P2::new(r - d, h / 2.0),
                    P2::new(r, h / 2.0 + g),
                    P2::new(r, h),
                    P2::new(bore, h),
                ];
                revolve(&profile, 32)
            }
            Family::Bottle => {
                let rb = j(rng, 1.5, 0.15); // body radius
                let rn = rb * j(rng, 0.35, 0.1); // neck radius
                let hb = j(rng, 3.0, 0.2);
                let hs = j(rng, 0.8, 0.2); // shoulder
                let hn = j(rng, 1.0, 0.2); // neck
                let profile = vec![
                    P2::new(0.0, 0.0),
                    P2::new(rb, 0.0),
                    P2::new(rb, hb),
                    P2::new(rn, hb + hs),
                    P2::new(rn, hb + hs + hn),
                    P2::new(0.0, hb + hs + hn),
                ];
                revolve(&profile, 32)
            }
            Family::Torus => {
                let big = j(rng, 2.0, 0.15);
                let small = big * j(rng, 0.3, 0.15);
                primitives::torus(big, small, 32, 16)
            }
            Family::Ellipsoid => {
                let a = j(rng, 2.0, 0.2);
                let b = j(rng, 1.3, 0.2);
                let c = j(rng, 0.8, 0.2);
                let mut m = primitives::uv_sphere(1.0, 24, 12);
                m.map_vertices(|v| Vec3::new(v.x * a, v.y * b, v.z * c));
                m
            }
            Family::Block => {
                let x = j(rng, 3.0, 0.25);
                let y = j(rng, 2.0, 0.25);
                let z = j(rng, 1.2, 0.25);
                primitives::box_mesh(Vec3::new(x, y, z))
            }
            Family::Rod => {
                let r = j(rng, 0.4, 0.2);
                let h = j(rng, 6.0, 0.2);
                primitives::cylinder(r, h, 24)
            }
            Family::Pipe => {
                let ro = j(rng, 1.0, 0.15);
                let ri = ro * j(rng, 0.8, 0.05);
                let h = j(rng, 7.0, 0.2);
                let profile = Polygon::new(
                    regular_ngon(24, ro, 0.0, 0.0, 0.0),
                    vec![regular_ngon(24, ri, 0.0, 0.0, 0.03)],
                );
                extrude(&profile, h)
            }
            Family::Wedge => {
                let a = j(rng, 3.0, 0.2);
                let b = j(rng, 2.0, 0.2);
                let t = j(rng, 1.5, 0.25);
                let profile =
                    Polygon::simple(vec![P2::new(0.0, 0.0), P2::new(a, 0.0), P2::new(0.0, b)]);
                extrude(&profile, t)
            }
            Family::CRing => {
                let ro = j(rng, 2.2, 0.15);
                let ri = ro * j(rng, 0.65, 0.08);
                let opening = j(rng, 1.1, 0.2); // radians of the gap
                let t = j(rng, 0.8, 0.2);
                let n = 24usize;
                let a0 = opening / 2.0;
                let a1 = 2.0 * std::f64::consts::PI - opening / 2.0;
                let mut ring = Vec::with_capacity(2 * (n + 1));
                for i in 0..=n {
                    let a = a0 + (a1 - a0) * i as f64 / n as f64;
                    ring.push(P2::new(ro * a.cos(), ro * a.sin()));
                }
                for i in (0..=n).rev() {
                    let a = a0 + (a1 - a0) * i as f64 / n as f64;
                    ring.push(P2::new(ri * a.cos(), ri * a.sin()));
                }
                extrude(&Polygon::simple(ring), t)
            }
            Family::Cone => {
                let r = j(rng, 1.8, 0.2);
                let h = j(rng, 3.0, 0.2);
                primitives::cone(r, h, 28)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn every_family_generates_watertight_positive_volume() {
        let mut rng = StdRng::seed_from_u64(42);
        for fam in Family::ALL {
            for rep in 0..3 {
                let mesh = fam.generate(&mut rng);
                assert!(
                    mesh.is_watertight(),
                    "{} rep {rep}: {:?}",
                    fam.name(),
                    mesh.validate().first()
                );
                let v = mesh.signed_volume();
                assert!(v > 0.0, "{} rep {rep}: volume {v}", fam.name());
            }
        }
    }

    #[test]
    fn family_names_are_unique() {
        let names: std::collections::HashSet<_> = Family::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), Family::ALL.len());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Family::SpurGear.generate(&mut StdRng::seed_from_u64(5));
        let b = Family::SpurGear.generate(&mut StdRng::seed_from_u64(5));
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.vertices[0], b.vertices[0]);
    }

    #[test]
    fn members_of_a_family_differ() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Family::Flange.generate(&mut rng);
        let b = Family::Flange.generate(&mut rng);
        assert!((a.signed_volume() - b.signed_volume()).abs() > 1e-6);
    }
}
