//! Unclassified "noisy shapes" (§4 of the paper: 27 shapes that do not
//! belong to any group).
//!
//! Each noise shape is a one-off: a random polygon prism, a random
//! revolved staircase, or an extreme-parameter primitive — deliberately
//! unlike the 26 families, so they act as distractors during retrieval.

use rand::rngs::StdRng;
use rand::Rng;
use tdess_geom::polygon::regular_ngon;
use tdess_geom::{extrude, primitives, revolve, Polygon, TriMesh, Vec3, P2};

/// Generates the `i`-th noise shape. Varies the construction recipe by
/// index so all 27 distractors are structurally different.
pub fn noise_shape(i: usize, rng: &mut StdRng) -> TriMesh {
    match i % 6 {
        0 => random_polygon_prism(rng),
        1 => random_revolved_staircase(rng),
        2 => {
            // Squashed ellipsoid with extreme eccentricity.
            let a = rng.gen_range(2.5..4.0);
            let b = rng.gen_range(0.3..0.8);
            let c = rng.gen_range(0.8..1.5);
            let mut m = primitives::uv_sphere(1.0, 20, 10);
            m.map_vertices(|v| Vec3::new(v.x * a, v.y * b, v.z * c));
            m
        }
        3 => {
            // Very flat or very tall random n-gon.
            let n = rng.gen_range(3..9usize);
            let r = rng.gen_range(0.5..3.0);
            let t = if rng.gen_bool(0.5) {
                rng.gen_range(0.05..0.15)
            } else {
                rng.gen_range(6.0..9.0)
            };
            extrude(
                &Polygon::simple(regular_ngon(n, r, 0.0, 0.0, rng.gen_range(0.0..1.0))),
                t,
            )
        }
        4 => {
            // Skinny torus or fat torus.
            let big = rng.gen_range(1.5..3.0);
            let frac = if rng.gen_bool(0.5) { 0.08 } else { 0.45 };
            primitives::torus(big, big * frac, 28, 12)
        }
        _ => random_bumpy_disk(rng),
    }
}

/// A prism over a random star-like polygon with 5–9 irregular radii.
fn random_polygon_prism(rng: &mut StdRng) -> TriMesh {
    let n = rng.gen_range(5..10usize);
    let mut ring = Vec::with_capacity(n);
    for k in 0..n {
        let a = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
        let r = rng.gen_range(0.8..3.0);
        ring.push(P2::new(r * a.cos(), r * a.sin()));
    }
    extrude(&Polygon::simple(ring), rng.gen_range(0.4..2.5))
}

/// A revolved monotone staircase profile with 3–6 random steps.
fn random_revolved_staircase(rng: &mut StdRng) -> TriMesh {
    let steps = rng.gen_range(3..7usize);
    let mut profile = vec![P2::new(0.0, 0.0)];
    let mut z = 0.0;
    for _ in 0..steps {
        let r = rng.gen_range(0.4..2.5);
        let h = rng.gen_range(0.4..1.5);
        profile.push(P2::new(r, z));
        z += h;
        profile.push(P2::new(r, z));
    }
    profile.push(P2::new(0.0, z));
    revolve(&profile, 24)
}

/// A disk with a wavy rim (random amplitude and lobe count).
fn random_bumpy_disk(rng: &mut StdRng) -> TriMesh {
    let lobes = rng.gen_range(3..8usize);
    let base = rng.gen_range(1.5..2.5);
    let amp = rng.gen_range(0.2..0.6);
    let n = 48;
    let mut ring = Vec::with_capacity(n);
    for k in 0..n {
        let a = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
        let r = base + amp * (lobes as f64 * a).sin();
        ring.push(P2::new(r * a.cos(), r * a.sin()));
    }
    extrude(&Polygon::simple(ring), rng.gen_range(0.3..1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn all_noise_shapes_are_watertight() {
        let mut rng = StdRng::seed_from_u64(99);
        for i in 0..27 {
            let m = noise_shape(i, &mut rng);
            assert!(m.is_watertight(), "noise-{i}: {:?}", m.validate().first());
            assert!(m.signed_volume() > 0.0, "noise-{i}");
        }
    }

    #[test]
    fn recipes_cycle_by_index() {
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let a = noise_shape(0, &mut r1);
        let b = noise_shape(6, &mut r2); // same recipe branch, same rng state
                                         // Same recipe with identical rng state gives identical shapes.
        assert_eq!(a.num_vertices(), b.num_vertices());
    }
}
