//! Large synthetic feature-vector corpora for persistence and index
//! scale tests.
//!
//! The procedural corpus of [`crate::build_corpus`] tops out around
//! 10³ shapes before feature extraction dominates every benchmark:
//! voxelizing 10⁵ meshes takes hours and measures the extractor, not
//! the storage or index layer under test. This module sidesteps
//! extraction. It extracts features **once per part family** (26
//! anchor models) and then stamps out an arbitrary number of synthetic
//! shapes by jittering the anchor vectors — the same clustered
//! distribution a real PDM database exhibits (parts within a family
//! are near-identical, families are well separated), at the cost of a
//! single 26-mesh extraction pass.
//!
//! Each synthetic shape carries a tiny placeholder tetrahedron instead
//! of the anchor's full mesh so a 10⁵-shape database fits comfortably
//! in memory and on disk; the mesh is never re-extracted, so search
//! behavior depends only on the stored vectors.
//!
//! Generation is seeded and byte-stable: the same
//! ([`FeatureExtractor`], seed, count) always yields bit-identical
//! names, meshes, and feature vectors, so snapshots written from a
//! synthetic corpus are reproducible across runs and machines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdess_features::{FeatureExtractor, FeatureSet, NormalizeError};
use tdess_geom::{TriMesh, Vec3};

use crate::families::Family;

/// Relative jitter applied to every anchor coordinate: each synthetic
/// coordinate is `anchor * (1 + u)` with `u` uniform in ±this. Chosen
/// to match the within-family feature spread of the procedural corpus
/// (generated family members differ by a few percent per coordinate)
/// while keeping families separated by far more than the jitter.
pub const SYNTH_JITTER: f64 = 0.04;

/// One synthetic shape: name, placeholder mesh, and the feature
/// vectors the database will index. Ready for
/// `ShapeDatabase::insert_batch_precomputed`.
pub type SynthShape = (String, TriMesh, FeatureSet);

/// Generates `count` synthetic shapes around the 26 family anchors.
///
/// Families are assigned round-robin so every corpus size keeps the
/// same balanced cluster structure. Fails only if anchor feature
/// extraction fails, which the watertight family generators do not
/// trigger in practice.
pub fn synth_corpus(
    extractor: &FeatureExtractor,
    seed: u64,
    count: usize,
) -> Result<Vec<SynthShape>, NormalizeError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let anchors: Vec<(&'static str, FeatureSet)> = Family::ALL
        .iter()
        .map(|family| {
            let mesh = family.generate(&mut rng);
            Ok((family.name(), extractor.extract(&mesh)?))
        })
        .collect::<Result<_, NormalizeError>>()?;

    let mut shapes = Vec::with_capacity(count);
    for i in 0..count {
        let (family_name, anchor) = &anchors[i % anchors.len()];
        let features = jitter_features(anchor, &mut rng);
        let mesh = placeholder_mesh(&mut rng);
        shapes.push((format!("synth-{family_name}-{i}"), mesh, features));
    }
    Ok(shapes)
}

/// A fresh copy of `anchor` with every coordinate scaled by an
/// independent `1 ± SYNTH_JITTER` factor. Zero coordinates stay zero,
/// so structurally-empty dimensions (e.g. an anchor with no skeleton
/// loops) remain empty across its synthetic family.
fn jitter_features(anchor: &FeatureSet, rng: &mut StdRng) -> FeatureSet {
    let mut f = anchor.clone();
    for field in [
        &mut f.moment_invariants,
        &mut f.geometric,
        &mut f.principal_moments,
        &mut f.eigenvalues,
        &mut f.higher_order,
        &mut f.shape_distribution,
        &mut f.shell_histogram,
    ] {
        for x in field.iter_mut() {
            *x *= 1.0 + rng.gen_range(-SYNTH_JITTER..SYNTH_JITTER);
        }
    }
    f
}

/// A four-vertex tetrahedron with jittered scale and position — the
/// cheapest watertight stand-in mesh (the features above are indexed;
/// this is storage ballast shaped like a real record).
fn placeholder_mesh(rng: &mut StdRng) -> TriMesh {
    let s = rng.gen_range(0.5..2.0);
    let c = Vec3::new(
        rng.gen_range(-10.0..10.0),
        rng.gen_range(-10.0..10.0),
        rng.gen_range(-10.0..10.0),
    );
    TriMesh {
        vertices: vec![
            Vec3::new(c.x + s, c.y + s, c.z + s),
            Vec3::new(c.x + s, c.y - s, c.z - s),
            Vec3::new(c.x - s, c.y + s, c.z - s),
            Vec3::new(c.x - s, c.y - s, c.z + s),
        ],
        triangles: vec![[0, 1, 2], [0, 3, 1], [0, 2, 3], [1, 3, 2]],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdess_features::FeatureKind;

    fn extractor() -> FeatureExtractor {
        FeatureExtractor {
            voxel_resolution: 10,
            ..Default::default()
        }
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let ex = extractor();
        let a = synth_corpus(&ex, 7, 60).unwrap();
        let b = synth_corpus(&ex, 7, 60).unwrap();
        assert_eq!(a.len(), b.len());
        for ((na, ma, fa), (nb, mb, fb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(ma.vertices.len(), mb.vertices.len());
            for (va, vb) in ma.vertices.iter().zip(&mb.vertices) {
                assert_eq!(va.x.to_bits(), vb.x.to_bits());
                assert_eq!(va.y.to_bits(), vb.y.to_bits());
                assert_eq!(va.z.to_bits(), vb.z.to_bits());
            }
            for kind in FeatureKind::ALL {
                let (xa, xb) = (fa.get(kind), fb.get(kind));
                assert_eq!(xa.len(), xb.len());
                for (p, q) in xa.iter().zip(xb) {
                    assert_eq!(p.to_bits(), q.to_bits(), "{kind:?}");
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let ex = extractor();
        let a = synth_corpus(&ex, 1, 30).unwrap();
        let b = synth_corpus(&ex, 2, 30).unwrap();
        let differs = a.iter().zip(&b).any(|((_, _, fa), (_, _, fb))| {
            fa.get(FeatureKind::GeometricParams) != fb.get(FeatureKind::GeometricParams)
        });
        assert!(differs, "seed must influence the jitter");
    }

    #[test]
    fn vectors_have_extractor_dims_and_are_finite() {
        let ex = extractor();
        let shapes = synth_corpus(&ex, 42, 120).unwrap();
        assert_eq!(shapes.len(), 120);
        for (name, mesh, f) in &shapes {
            assert!(name.starts_with("synth-"), "{name}");
            assert_eq!(mesh.vertices.len(), 4);
            assert_eq!(mesh.triangles.len(), 4);
            for kind in FeatureKind::ALL {
                let v = f.get(kind);
                assert_eq!(v.len(), ex.dim(kind), "{kind:?}");
                assert!(v.iter().all(|x| x.is_finite()), "{kind:?}");
            }
        }
    }

    #[test]
    fn round_robin_covers_every_family() {
        let ex = extractor();
        let shapes = synth_corpus(&ex, 3, Family::ALL.len() * 2).unwrap();
        for family in Family::ALL {
            let members = shapes
                .iter()
                .filter(|(n, _, _)| n.contains(family.name()))
                .count();
            assert!(members >= 2, "{} missing members", family.name());
        }
    }
}
