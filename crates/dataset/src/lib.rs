//! # tdess-dataset — the evaluation corpus for 3DESS
//!
//! A deterministic, procedural substitute for the paper's proprietary
//! database of 113 engineering shapes: 26 parametric part families
//! (86 classified shapes in groups of 2–8, matching Figure 4) plus 27
//! unclassified noise shapes, every one watertight and posed with a
//! random rigid transform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod families;
pub mod noise;
pub mod synth;

pub use builder::{
    build_corpus, build_corpus_custom, build_corpus_scaled, Corpus, ShapeRecord, GROUP_SIZES,
    NUM_NOISE,
};
pub use families::Family;
pub use noise::noise_shape;
pub use synth::{synth_corpus, SynthShape, SYNTH_JITTER};
