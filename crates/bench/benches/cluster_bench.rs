//! Criterion benches for the clustering module (§2.2): k-means, SOM,
//! and GA at database-like sizes, plus hierarchy construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tdess_cluster::{
    build_hierarchy, ga_cluster, kmeans, som_cluster, GaParams, HierarchyParams, SomParams,
};

fn blob_points(n: usize, dim: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(5);
    let centers: Vec<Vec<f64>> = (0..10)
        .map(|_| (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect())
        .collect();
    (0..n)
        .map(|_| {
            let c = &centers[rng.gen_range(0..10usize)];
            c.iter().map(|&x| x + rng.gen_range(-1.0..1.0)).collect()
        })
        .collect()
}

fn bench_algorithms(c: &mut Criterion) {
    let mut g = c.benchmark_group("clustering_113x5");
    g.sample_size(20);
    // Database-shaped workload: 113 points, 5 dimensions, k = 26.
    let pts = blob_points(113, 5);
    g.bench_function("kmeans", |b| b.iter(|| black_box(kmeans(&pts, 26, 7).sse)));
    g.bench_function("som_6x5", |b| {
        b.iter(|| {
            black_box(
                som_cluster(
                    &pts,
                    &SomParams {
                        width: 6,
                        height: 5,
                        ..Default::default()
                    },
                    7,
                )
                .1
                .sse,
            )
        })
    });
    g.bench_function("ga", |b| {
        b.iter(|| black_box(ga_cluster(&pts, 26, &GaParams::default(), 7).sse))
    });
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("kmeans_scaling");
    for &n in &[100usize, 1_000, 10_000] {
        let pts = blob_points(n, 5);
        g.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| black_box(kmeans(pts, 10, 3).sse))
        });
    }
    g.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let pts = blob_points(1_000, 5);
    c.bench_function("hierarchy_1k", |b| {
        b.iter(|| {
            black_box(
                build_hierarchy(
                    &pts,
                    &HierarchyParams {
                        branching: 4,
                        leaf_size: 8,
                    },
                    9,
                )
                .node_count(),
            )
        })
    });
}

criterion_group!(benches, bench_algorithms, bench_scaling, bench_hierarchy);
criterion_main!(benches);
