//! Criterion benches for the multidimensional index (E-IDX, §2.3):
//! R-tree build, kNN, and ball queries vs the linear-scan baseline,
//! over clustered synthetic data at several scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tdess_index::{LinearScan, QueryStats, RTree};

fn clustered_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..50)
        .map(|_| (0..dim).map(|_| rng.gen_range(-100.0..100.0)).collect())
        .collect();
    (0..n)
        .map(|_| {
            let c = &centers[rng.gen_range(0..50usize)];
            c.iter().map(|&x| x + rng.gen_range(-2.0..2.0)).collect()
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtree_build");
    for &n in &[1_000usize, 10_000] {
        let pts = clustered_points(n, 3, 1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| {
                let mut t: RTree<usize> = RTree::with_dim(3);
                for (i, p) in pts.iter().enumerate() {
                    t.insert(p.clone(), i);
                }
                black_box(t.len())
            })
        });
    }
    g.finish();
}

fn bench_knn(c: &mut Criterion) {
    let mut g = c.benchmark_group("knn_k10");
    for &n in &[1_000usize, 10_000, 100_000] {
        let pts = clustered_points(n, 3, 2);
        let mut tree: RTree<usize> = RTree::with_dim(3);
        let mut scan: LinearScan<usize> = LinearScan::new(3);
        for (i, p) in pts.iter().enumerate() {
            tree.insert(p.clone(), i);
            scan.insert(p.clone(), i);
        }
        let q = pts[n / 2].clone();
        g.bench_with_input(BenchmarkId::new("rtree", n), &q, |b, q| {
            b.iter(|| {
                let mut s = QueryStats::default();
                black_box(tree.knn(q, 10, &mut s).len())
            })
        });
        g.bench_with_input(BenchmarkId::new("linear", n), &q, |b, q| {
            b.iter(|| {
                let mut s = QueryStats::default();
                black_box(scan.knn(q, 10, &mut s).len())
            })
        });
    }
    g.finish();
}

fn bench_ball(c: &mut Criterion) {
    let mut g = c.benchmark_group("ball_query");
    let n = 10_000;
    for &dim in &[3usize, 8] {
        let pts = clustered_points(n, dim, 3);
        let mut tree: RTree<usize> = RTree::with_dim(dim);
        let mut scan: LinearScan<usize> = LinearScan::new(dim);
        for (i, p) in pts.iter().enumerate() {
            tree.insert(p.clone(), i);
            scan.insert(p.clone(), i);
        }
        let q = pts[17].clone();
        g.bench_with_input(BenchmarkId::new("rtree", dim), &q, |b, q| {
            b.iter(|| {
                let mut s = QueryStats::default();
                black_box(tree.within_distance(q, 3.0, &mut s).len())
            })
        });
        g.bench_with_input(BenchmarkId::new("linear", dim), &q, |b, q| {
            b.iter(|| {
                let mut s = QueryStats::default();
                black_box(scan.within_distance(q, 3.0, &mut s).len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build, bench_knn, bench_ball);
criterion_main!(benches);
