//! Criterion benches for the §3 feature-extraction pipeline: full
//! extraction throughput per shape family and per voxel resolution,
//! plus the individual stages that feed the four feature vectors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use tdess_dataset::Family;
use tdess_features::{moment_invariants, normalize, FeatureExtractor};
use tdess_geom::{mesh_moments, primitives, Vec3};

fn bench_full_extraction(c: &mut Criterion) {
    let mut g = c.benchmark_group("extract_full");
    g.sample_size(10);
    for fam in [
        Family::Block,
        Family::Flange,
        Family::SpurGear,
        Family::Pipe,
    ] {
        let mesh = fam.generate(&mut StdRng::seed_from_u64(1));
        let ex = FeatureExtractor {
            voxel_resolution: 32,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(fam.name()), &mesh, |b, m| {
            b.iter(|| black_box(ex.extract(m).unwrap()))
        });
    }
    g.finish();
}

fn bench_resolution_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("extract_vs_resolution");
    g.sample_size(10);
    let mesh = Family::UChannel.generate(&mut StdRng::seed_from_u64(2));
    for &res in &[24usize, 32, 48, 64] {
        let ex = FeatureExtractor {
            voxel_resolution: res,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(res), &mesh, |b, m| {
            b.iter(|| black_box(ex.extract(m).unwrap()))
        });
    }
    g.finish();
}

fn bench_moment_stages(c: &mut Criterion) {
    let sphere = primitives::uv_sphere(1.0, 64, 32);
    c.bench_function("mesh_moments_4k_tris", |b| {
        b.iter(|| black_box(mesh_moments(&sphere)))
    });
    c.bench_function("moment_invariants", |b| {
        let m = mesh_moments(&sphere);
        b.iter(|| black_box(moment_invariants(&m)))
    });
    let box_mesh = primitives::box_mesh(Vec3::new(3.0, 2.0, 1.0));
    c.bench_function("normalize_box", |b| {
        b.iter(|| black_box(normalize(&box_mesh).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_full_extraction,
    bench_resolution_scaling,
    bench_moment_stages
);
criterion_main!(benches);
