//! Criterion benches for the voxelization and skeletonization
//! substrates: surface rasterization, flood fill, thinning, and
//! skeletal-graph construction at several resolutions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tdess_geom::primitives;
use tdess_skeleton::{build_graph, skeletonize, ThinningParams};
use tdess_voxel::{
    fill_flood, rasterize_surface, voxel_moments, voxelize, VoxelGrid, VoxelizeParams,
};

fn bench_voxelize(c: &mut Criterion) {
    let mut g = c.benchmark_group("voxelize_sphere");
    g.sample_size(20);
    let mesh = primitives::uv_sphere(1.0, 32, 16);
    for &res in &[32usize, 64, 96] {
        g.bench_with_input(BenchmarkId::from_parameter(res), &res, |b, &res| {
            b.iter(|| {
                black_box(voxelize(
                    &mesh,
                    &VoxelizeParams {
                        resolution: res,
                        ..Default::default()
                    },
                ))
            })
        });
    }
    g.finish();
}

fn bench_stages(c: &mut Criterion) {
    let mesh = primitives::torus(1.0, 0.3, 32, 16);
    let params = VoxelizeParams {
        resolution: 48,
        fill: false,
        ..Default::default()
    };
    let shell = voxelize(&mesh, &params);

    c.bench_function("rasterize_surface_48", |b| {
        b.iter(|| {
            let (nx, ny, nz) = shell.dims();
            let mut g = VoxelGrid::new(nx, ny, nz, shell.origin, shell.voxel_size);
            rasterize_surface(&mesh, &mut g);
            black_box(g.count())
        })
    });
    c.bench_function("fill_flood_48", |b| {
        b.iter(|| {
            let mut g = shell.clone();
            fill_flood(&mut g);
            black_box(g.count())
        })
    });

    let solid = voxelize(
        &mesh,
        &VoxelizeParams {
            resolution: 48,
            ..Default::default()
        },
    );
    c.bench_function("voxel_moments_48", |b| {
        b.iter(|| black_box(voxel_moments(&solid)))
    });

    let mut g = c.benchmark_group("thinning");
    g.sample_size(10);
    g.bench_function("thin_torus_48", |b| {
        b.iter(|| black_box(skeletonize(&solid, &ThinningParams::default()).count()))
    });
    g.finish();

    let skel = skeletonize(&solid, &ThinningParams::default());
    c.bench_function("build_graph_torus", |b| {
        b.iter(|| black_box(build_graph(&skel).num_nodes()))
    });
}

criterion_group!(benches, bench_voxelize, bench_stages);
criterion_main!(benches);
