//! Criterion benches for end-to-end query processing on the indexed
//! corpus: one-shot top-k, threshold queries, weighted scans, and
//! multi-step search.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tdess_core::{multi_step_search, MultiStepPlan, Query, QueryMode, ShapeDatabase, Weights};
use tdess_dataset::build_corpus;
use tdess_features::{FeatureExtractor, FeatureKind};

fn indexed_db() -> ShapeDatabase {
    let corpus = build_corpus(2004);
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: 24,
        ..Default::default()
    });
    for s in &corpus.shapes {
        db.insert(s.name.clone(), s.mesh.clone()).unwrap();
    }
    db
}

fn bench_queries(c: &mut Criterion) {
    let db = indexed_db();
    let q = db.shapes()[42].features.clone();

    c.bench_function("one_shot_topk10_pm", |b| {
        b.iter(|| {
            black_box(
                db.search(&q, &Query::top_k(FeatureKind::PrincipalMoments, 10))
                    .len(),
            )
        })
    });
    c.bench_function("one_shot_threshold085_mi", |b| {
        b.iter(|| {
            black_box(
                db.search(&q, &Query::threshold(FeatureKind::MomentInvariants, 0.85))
                    .len(),
            )
        })
    });
    c.bench_function("weighted_scan_gp", |b| {
        let query = Query {
            kind: FeatureKind::GeometricParams,
            weights: Weights::new(vec![2.0, 2.0, 0.5, 1.0, 0.1]),
            mode: QueryMode::TopK(10),
        };
        b.iter(|| black_box(db.search(&q, &query).len()))
    });
    c.bench_function("multi_step_pm_ev", |b| {
        let plan = MultiStepPlan {
            steps: vec![FeatureKind::PrincipalMoments, FeatureKind::Eigenvalues],
            candidates: 30,
            presented: 10,
        };
        b.iter(|| black_box(multi_step_search(&db, &q, &plan).len()))
    });
}

fn bench_insert(c: &mut Criterion) {
    // Full insert cost: extraction dominates (normalization,
    // voxelization, thinning, graph, eigen) plus four index updates.
    let corpus = build_corpus(7);
    let mesh = corpus.shapes[0].mesh.clone();
    let mut g = c.benchmark_group("db_insert");
    g.sample_size(10);
    g.bench_function("insert_res24", |b| {
        b.iter_batched(
            || {
                ShapeDatabase::new(FeatureExtractor {
                    voxel_resolution: 24,
                    ..Default::default()
                })
            },
            |mut db| black_box(db.insert("shape", mesh.clone()).unwrap()),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_queries, bench_insert);
criterion_main!(benches);
