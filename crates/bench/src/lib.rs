//! # tdess-bench — benchmark harness for 3DESS
//!
//! One binary per table/figure of the paper's evaluation (§4), plus
//! Criterion performance benches. Each `fig*` binary prints the
//! series/rows of the corresponding paper artifact; see EXPERIMENTS.md
//! for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tdess_dataset::{build_corpus, Corpus};
use tdess_eval::EvalContext;
use tdess_features::FeatureExtractor;

/// Corpus seed used by every experiment (fixed for reproducibility).
pub const CORPUS_SEED: u64 = 2004;

/// Voxel resolution used by every experiment.
pub const RESOLUTION: usize = 48;

/// Builds the standard 113-shape corpus.
pub fn standard_corpus() -> Corpus {
    build_corpus(CORPUS_SEED)
}

/// Builds the standard evaluation context (indexes the whole corpus;
/// takes a few seconds in release mode).
pub fn standard_context() -> EvalContext {
    let corpus = standard_corpus();
    eprintln!(
        "[setup] indexing {} shapes at voxel resolution {RESOLUTION} (seed {CORPUS_SEED})...",
        corpus.shapes.len()
    );
    let ctx = EvalContext::build(
        &corpus,
        FeatureExtractor {
            voxel_resolution: RESOLUTION,
            ..Default::default()
        },
    );
    eprintln!("[setup] done.");
    ctx
}
