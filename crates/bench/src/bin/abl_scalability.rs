//! **Ablation: database size.**
//!
//! Two predictions the paper makes about growth are tested by scaling
//! the corpus's *distractor* population (the noise shapes) while the
//! labeled groups stay fixed:
//!
//! 1. "[the eigenvalues' weakness] will become worse when the database
//!    becomes larger" (§4.1) — eigenvalue recall should fall faster
//!    than the moment features' as distractors multiply;
//! 2. the R-tree keeps queries cheap as the database grows (§2.3).
//!
//! Relevant sets are unchanged across sizes, so recall at `|R| = |A|`
//! is directly comparable: any drop is caused purely by distractors
//! crowding into the shortlist.

use std::time::Instant;

use tdess_dataset::build_corpus_custom;
use tdess_eval::{average_effectiveness, render_table, EvalContext, RetrievalSize, Strategy};
use tdess_features::FeatureExtractor;
use tdess_index::QueryStats;

fn main() {
    let strategies = Strategy::paper_set();
    println!("\nAblation — noise distractors scaled 1x / 4x / 16x (27 / 108 / 432 of them), recall at |R| = |A|\n");
    let mut rows = Vec::new();
    for mult in [1usize, 4, 16] {
        let corpus = build_corpus_custom(2004, 1, mult);
        eprintln!(
            "[setup] indexing {} shapes (noise x{mult})...",
            corpus.shapes.len()
        );
        let ctx = EvalContext::build(
            &corpus,
            FeatureExtractor {
                voxel_resolution: 32,
                ..Default::default()
            },
        );
        let eff = average_effectiveness(&ctx, &strategies, RetrievalSize::GroupSize);

        // Index query cost at this size (kNN k = 10 on principal
        // moments, averaged over all shapes as queries).
        let mut stats = QueryStats::default();
        let t0 = Instant::now();
        for s in ctx.db.shapes() {
            let _ = ctx.db.search_with_stats(
                &s.features,
                &tdess_core::Query::top_k(tdess_features::FeatureKind::PrincipalMoments, 10),
                &mut stats,
            );
        }
        let us_per_query = t0.elapsed().as_secs_f64() * 1e6 / ctx.db.len() as f64;

        rows.push(vec![
            format!("{}x ({})", mult, ctx.db.len()),
            format!("{:.3}", eff[2].avg_recall), // PM
            format!("{:.3}", eff[0].avg_recall), // MI
            format!("{:.3}", eff[3].avg_recall), // EV
            format!("{:.3}", eff[4].avg_recall), // multi-step
            format!("{}", stats.entries_checked / ctx.db.len()),
            format!("{:.1}", us_per_query),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "size",
                "PM recall",
                "MI recall",
                "EV recall",
                "multi-step",
                "rtree entries/query",
                "µs/query"
            ],
            &rows
        )
    );

    // The paper's EV prediction, quantified as *relative* recall loss.
    let pm_loss = 1.0 - parse(&rows[2][1]) / parse(&rows[0][1]).max(1e-12);
    let ev_loss = 1.0 - parse(&rows[2][3]) / parse(&rows[0][3]).max(1e-12);
    println!(
        "1x -> 16x relative recall loss: principal moments {:.0}%, eigenvalues {:.0}%",
        pm_loss * 100.0,
        ev_loss * 100.0
    );
    println!("paper (§4.1) predicts the eigenvalues' weakness \"will become worse when the");
    println!("database becomes larger\". Measured: every feature degrades as distractors grow,");
    println!("but on THIS corpus the eigenvalues degrade *less* than the moment features —");
    println!("our procedural noise shapes are topologically diverse, so topology stays");
    println!("discriminative, while moment statistics collide. The prediction holds only for");
    println!("databases whose growth adds topologically similar shapes. The §2.3 index");
    println!("prediction does hold: query cost grows far slower than database size.");
}

fn parse(s: &str) -> f64 {
    s.parse().expect("numeric table cell")
}
