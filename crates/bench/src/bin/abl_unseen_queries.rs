//! **Ablation: unseen query models.**
//!
//! The paper's experiments query with shapes already stored in the
//! database; its interface, however, is built for query-by-example
//! with user-created CAD models (§2.1). This experiment measures that
//! generalization: fresh members of each part family — generated with
//! a different seed, so they are *not* in the database — are used as
//! queries, and we measure how well each strategy retrieves their
//! family. The whole group is now relevant (no self-match to exclude).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tdess_bench::standard_context;
use tdess_core::{multi_step_search, MultiStepPlan, Query, QueryMode, Weights};
use tdess_dataset::Family;
use tdess_eval::{precision_recall, render_table, Strategy};

fn main() {
    let ctx = standard_context();
    let strategies = Strategy::paper_set();

    // Fresh query models: one per family, from an unrelated seed.
    let mut rng = StdRng::seed_from_u64(777_777);
    let queries: Vec<(Family, tdess_geom::TriMesh)> = Family::ALL
        .iter()
        .map(|&f| (f, f.generate(&mut rng)))
        .collect();

    println!("\nAblation — queries NOT stored in the database (one fresh member per family)\n");
    let mut rows = Vec::new();
    for strategy in &strategies {
        let mut sum_r_group = 0.0;
        let mut sum_r_10 = 0.0;
        for (fam, mesh) in &queries {
            // Ground truth: every stored shape of the same family.
            let relevant: std::collections::HashSet<_> = ctx
                .db
                .shapes()
                .iter()
                .filter(|s| s.name.starts_with(fam.name()))
                .map(|s| s.id)
                .collect();
            let features = ctx
                .db
                .extract_query(mesh)
                .expect("fresh family members extract");
            let run = |k: usize| -> f64 {
                let ids: Vec<_> = match strategy {
                    Strategy::OneShot(kind) => ctx
                        .db
                        .search(
                            &features,
                            &Query {
                                kind: *kind,
                                weights: Weights::unit(),
                                mode: QueryMode::TopK(k),
                            },
                        )
                        .into_iter()
                        .map(|h| h.id)
                        .collect(),
                    Strategy::MultiStep(plan) => {
                        let p = MultiStepPlan {
                            steps: plan.steps.clone(),
                            candidates: plan.candidates,
                            presented: k,
                        };
                        multi_step_search(&ctx.db, &features, &p)
                            .into_iter()
                            .map(|h| h.id)
                            .collect()
                    }
                };
                precision_recall(&ids, &relevant).recall
            };
            sum_r_group += run(relevant.len());
            sum_r_10 += run(10);
        }
        rows.push(vec![
            strategy.label(),
            format!("{:.3}", sum_r_group / queries.len() as f64),
            format!("{:.3}", sum_r_10 / queries.len() as f64),
        ]);
    }
    println!(
        "{}",
        render_table(&["strategy", "recall |R|=|A|", "recall |R|=10"], &rows)
    );
    println!("reading: effectiveness on never-stored queries tracks the stored-query results of");
    println!("Figure 15 — the features generalize across family members, not just memorize them.");
}
