//! **Ablation: per-dimension weight standardization.**
//!
//! Eq. 4.3's weighted Euclidean distance is the paper's hook for
//! feature weighting, but the experiments run with unit weights. This
//! ablation measures what database-side standardization (`wᵢ = 1/σᵢ²`
//! over the stored shapes, [`ShapeDatabase::standardized_weights`])
//! buys each feature vector — it should matter most where dimension
//! spans are incommensurate (the geometric parameters mix aspect
//! ratios with volumes).

use tdess_bench::standard_context;
use tdess_core::{Query, QueryMode, ShapeDatabase, Weights};
use tdess_eval::{precision_recall, render_table, EvalContext};
use tdess_features::FeatureKind;

fn recall_at_group_size(
    ctx: &EvalContext,
    db: &ShapeDatabase,
    kind: FeatureKind,
    weights: &Weights,
) -> f64 {
    let reps = ctx.group_representatives();
    let mut sum = 0.0;
    for &qi in &reps {
        let qid = ctx.ids[qi];
        let relevant = ctx.relevant_set(qi);
        let features = db.get(qid).expect("query exists").features.clone();
        let ids: Vec<_> = db
            .search(
                &features,
                &Query {
                    kind,
                    weights: weights.clone(),
                    mode: QueryMode::TopK(relevant.len() + 1),
                },
            )
            .into_iter()
            .map(|h| h.id)
            .filter(|&id| id != qid)
            .take(relevant.len())
            .collect();
        sum += precision_recall(&ids, &relevant).recall;
    }
    sum / reps.len() as f64
}

fn main() {
    let ctx = standard_context();
    println!("\nAblation — unit vs standardized (1/σ²) weights, recall at |R| = |A|\n");
    let mut rows = Vec::new();
    for kind in FeatureKind::PAPER_FOUR {
        let unit = recall_at_group_size(&ctx, &ctx.db, kind, &Weights::unit());
        let w = ctx.db.standardized_weights(kind);
        let std = recall_at_group_size(&ctx, &ctx.db, kind, &w);
        rows.push(vec![
            kind.label().to_string(),
            format!("{:.3}", unit),
            format!("{:.3}", std),
            format!("{:+.0}%", (std / unit.max(1e-12) - 1.0) * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["feature vector", "unit weights", "standardized", "change"],
            &rows
        )
    );
    println!("reading: every moment-based feature improves substantially — their dimensions");
    println!("have wildly different variances (F1 >> F2 >> F3 for the invariants; lambda1 >>");
    println!("lambda3 for principal moments), so unit-weight distances throw away the small");
    println!("dimensions' signal. Only the eigenvalue feature degrades: its dominant eigenvalue");
    println!("carries most of the topology signal, and standardization dilutes it with noisy");
    println!("tail eigenvalues. The mechanism is pure Eq. 4.3 with weights learned from the");
    println!("database instead of the user — a large win the paper leaves on the table.");
}
