//! Regenerates the **index-efficiency** result of §2.3: the R-tree is
//! "almost optimal for small real databases and efficient for large
//! synthetic databases".
//!
//! Two workloads:
//! * the real 113-shape feature sets (each feature space), kNN k = 10;
//! * synthetic clustered points (10³, 10⁴, 10⁵ points; dims 3 and 8),
//!   kNN k = 10 and similarity-ball queries.
//!
//! For each, we report entries checked and nodes visited, R-tree vs
//! linear scan, plus wall time.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdess_bench::standard_context;
use tdess_eval::render_table;
use tdess_features::FeatureKind;
use tdess_index::{LinearScan, QueryStats, RTree};

fn main() {
    real_database();
    synthetic_databases();
}

fn real_database() {
    let ctx = standard_context();
    println!("\nIndex efficiency — real database (113 shapes), kNN k = 10, all shapes as queries");
    let mut rows = Vec::new();
    for kind in FeatureKind::ALL {
        let dim = ctx.db.extractor().dim(kind);
        let mut tree: RTree<u64> = RTree::with_dim(dim);
        let mut scan: LinearScan<u64> = LinearScan::new(dim);
        for s in ctx.db.shapes() {
            tree.insert(s.features.get(kind).to_vec(), s.id);
            scan.insert(s.features.get(kind).to_vec(), s.id);
        }
        let mut ts = QueryStats::default();
        let mut ls = QueryStats::default();
        let t0 = Instant::now();
        for s in ctx.db.shapes() {
            let _ = tree.knn(s.features.get(kind), 10, &mut ts);
        }
        let tree_time = t0.elapsed();
        let t0 = Instant::now();
        for s in ctx.db.shapes() {
            let _ = scan.knn(s.features.get(kind), 10, &mut ls);
        }
        let scan_time = t0.elapsed();
        rows.push(vec![
            kind.label().to_string(),
            dim.to_string(),
            format!("{}", ts.entries_checked / ctx.db.len()),
            format!("{}", ls.entries_checked / ctx.db.len()),
            format!("{:.1}", tree_time.as_secs_f64() * 1e6 / ctx.db.len() as f64),
            format!("{:.1}", scan_time.as_secs_f64() * 1e6 / ctx.db.len() as f64),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "feature space",
                "dim",
                "rtree entries/query",
                "scan entries/query",
                "rtree µs/query",
                "scan µs/query"
            ],
            &rows
        )
    );
}

fn synthetic_databases() {
    println!("\nIndex efficiency — synthetic clustered databases, 100 queries each");
    let mut rows = Vec::new();
    for &n in &[1_000usize, 10_000, 100_000] {
        for &dim in &[3usize, 8] {
            let (tree, scan, points) = build_synthetic(n, dim, 7);
            let mut rng = StdRng::seed_from_u64(99);

            let mut ts = QueryStats::default();
            let mut ls = QueryStats::default();
            let queries: Vec<Vec<f64>> = (0..100)
                .map(|_| points[rng.gen_range(0..points.len())].clone())
                .collect();

            let t0 = Instant::now();
            for q in &queries {
                let _ = tree.knn(q, 10, &mut ts);
            }
            let tree_time = t0.elapsed();
            let t0 = Instant::now();
            for q in &queries {
                let _ = scan.knn(q, 10, &mut ls);
            }
            let scan_time = t0.elapsed();

            rows.push(vec![
                n.to_string(),
                dim.to_string(),
                format!("{}", ts.entries_checked / 100),
                format!("{}", ls.entries_checked / 100),
                format!("{:.1}", tree_time.as_secs_f64() * 1e6 / 100.0),
                format!("{:.1}", scan_time.as_secs_f64() * 1e6 / 100.0),
                format!(
                    "{:.1}x",
                    scan_time.as_secs_f64() / tree_time.as_secs_f64().max(1e-12)
                ),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "points",
                "dim",
                "rtree entries/query",
                "scan entries/query",
                "rtree µs/query",
                "scan µs/query",
                "speedup"
            ],
            &rows
        )
    );
    println!("paper (§2.3): R-tree search almost optimal for small real databases, efficient for large synthetic databases.");
}

/// Builds a clustered point set (mixture of 50 Gaussian-ish blobs) and
/// both index structures over it.
fn build_synthetic(
    n: usize,
    dim: usize,
    seed: u64,
) -> (RTree<usize>, LinearScan<usize>, Vec<Vec<f64>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let clusters = 50usize;
    let centers: Vec<Vec<f64>> = (0..clusters)
        .map(|_| (0..dim).map(|_| rng.gen_range(-100.0..100.0)).collect())
        .collect();
    let mut tree = RTree::with_dim(dim);
    let mut scan = LinearScan::new(dim);
    let mut points = Vec::with_capacity(n);
    for i in 0..n {
        let c = &centers[rng.gen_range(0..clusters)];
        let p: Vec<f64> = c.iter().map(|&x| x + rng.gen_range(-2.0..2.0)).collect();
        tree.insert(p.clone(), i);
        scan.insert(p.clone(), i);
        points.push(p);
    }
    (tree, scan, points)
}
