//! Extraction-cache effectiveness: cold vs warm vs Zipf-replay query
//! latency, plus the bit-exactness gate.
//!
//! Real retrieval front ends replay queries: benchmark protocols
//! re-run fixed query sets, interactive users re-submit the part they
//! are refining, and popularity is heavy-tailed. This bench drives the
//! corpus through a [`SearchServer`] built with the content-addressed
//! extraction cache (`tdess-cache`) and measures end-to-end
//! `search_mesh` latency per query:
//!
//! * **cold** — first pass over every corpus mesh (all misses);
//! * **warm** — second identical pass (all hits);
//! * **zipf** — a Zipf(s=1) replay over corpus ranks, the
//!   heavy-tailed mix a shared server actually sees;
//! * **uncached** — the warm workload on a cache-less server, as the
//!   baseline the cache is judged against.
//!
//! Before any timing, every corpus mesh is answered by both servers
//! and compared hit-for-hit — ids, similarities, and f64 distances
//! must be *bit-identical* between the cached (cold and warm) and
//! uncached paths. `--smoke` runs this same gate on a corpus subset at
//! low resolution for CI.
//!
//! Outputs: `BENCH_cache.json` and `results/tab_cache.txt`.

use std::time::Instant;

use tdess_bench::{standard_corpus, CORPUS_SEED, RESOLUTION};
use tdess_core::{bulk_insert, CacheConfig, Query, SearchServer, ShapeDatabase};
use tdess_eval::render_table;
use tdess_features::{FeatureExtractor, FeatureKind};
use tdess_geom::TriMesh;

/// Zipf replay length as a multiple of the corpus size.
const REPLAY_FACTOR: usize = 5;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (resolution, take) = if smoke {
        (12, 12)
    } else {
        (RESOLUTION, usize::MAX)
    };

    let corpus = standard_corpus();
    let shapes: Vec<(String, TriMesh)> = corpus
        .shapes
        .iter()
        .take(take)
        .map(|s| (s.name.clone(), s.mesh.clone()))
        .collect();
    let n = shapes.len();
    eprintln!(
        "[setup] indexing {n} shapes at voxel resolution {resolution} (seed {CORPUS_SEED})..."
    );
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: resolution,
        ..Default::default()
    });
    match bulk_insert(&mut db, shapes.clone(), 8) {
        Ok(_) => {}
        Err(e) => {
            eprintln!("error: corpus indexing failed: {e}");
            std::process::exit(1);
        }
    }
    let uncached = SearchServer::new(db.clone());
    let cached = SearchServer::with_cache(db, CacheConfig::default());
    eprintln!("[setup] done.");

    let query = Query::top_k(FeatureKind::PrincipalMoments, 10);

    // ── Bit-exactness gate ─────────────────────────────────────────
    // Every mesh, answered uncached vs cached-cold vs cached-warm:
    // the hit lists must agree exactly (same ids, same f64 bits in
    // distances and similarities — SearchHit equality is exact).
    eprintln!("[gate] comparing cached and uncached answers over {n} meshes...");
    for (name, mesh) in &shapes {
        let want = match uncached.search_mesh(mesh, &query) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("error: uncached query `{name}` failed: {e}");
                std::process::exit(1);
            }
        };
        let cold = match cached.search_mesh(mesh, &query) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("error: cached query `{name}` failed: {e}");
                std::process::exit(1);
            }
        };
        let warm = match cached.search_mesh(mesh, &query) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("error: warm query `{name}` failed: {e}");
                std::process::exit(1);
            }
        };
        if want != cold || want != warm {
            eprintln!("error: cached answers diverge from uncached for `{name}`");
            std::process::exit(1);
        }
    }
    let gate_stats = cached.cache_stats().unwrap_or_default();
    if gate_stats.misses != n as u64 {
        eprintln!(
            "error: expected {n} extractions during the gate, saw {}",
            gate_stats.misses
        );
        std::process::exit(1);
    }
    eprintln!(
        "[gate] ok — bit-identical over {n} meshes ({} hits / {} misses)",
        gate_stats.hits, gate_stats.misses
    );

    // ── Timed workloads ────────────────────────────────────────────
    // A fresh cached server so "cold" really is cold.
    let cached = match rebuild_cached(&shapes, resolution) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: rebuilding cached server: {e}");
            std::process::exit(1);
        }
    };

    let time_pass = |server: &SearchServer, meshes: &[&TriMesh]| -> Vec<f64> {
        let mut samples = Vec::with_capacity(meshes.len());
        for mesh in meshes {
            let t0 = Instant::now();
            match server.search_mesh(mesh, &query) {
                Ok(_) => samples.push(t0.elapsed().as_secs_f64()),
                Err(e) => {
                    eprintln!("error: timed query failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        samples
    };

    let all: Vec<&TriMesh> = shapes.iter().map(|(_, m)| m).collect();
    let replay = zipf_replay(n, n * REPLAY_FACTOR);
    let replay_meshes: Vec<&TriMesh> = replay.iter().map(|&i| all[i]).collect();

    eprintln!("[run] cold pass ({n} queries)...");
    let cold = time_pass(&cached, &all);
    eprintln!("[run] warm pass ({n} queries)...");
    let warm = time_pass(&cached, &all);
    eprintln!("[run] zipf replay ({} queries)...", replay_meshes.len());
    let zipf = time_pass(&cached, &replay_meshes);
    eprintln!("[run] uncached baseline ({n} queries)...");
    let base = time_pass(&uncached, &all);

    let stats = cached.cache_stats().unwrap_or_default();
    let rows: Vec<(&str, &Vec<f64>)> = vec![
        ("cold (all miss)", &cold),
        ("warm (all hit)", &warm),
        ("zipf replay s=1", &zipf),
        ("uncached", &base),
    ];
    let cold_p50 = p50(&cold);
    let warm_p50 = p50(&warm);
    let speedup = cold_p50 / warm_p50;

    let table = render_table(
        &[
            "workload", "queries", "p50 ms", "p90 ms", "mean ms", "total s",
        ],
        &rows
            .iter()
            .map(|(label, s)| {
                vec![
                    label.to_string(),
                    s.len().to_string(),
                    format!("{:.4}", p50(s) * 1e3),
                    format!("{:.4}", quantile(s, 0.9) * 1e3),
                    format!("{:.4}", mean(s) * 1e3),
                    format!("{:.3}", s.iter().sum::<f64>()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nExtraction cache — {n} corpus shapes, voxel resolution {resolution}{}",
        if smoke { " [smoke]" } else { "" }
    );
    println!("{table}");
    println!("warm p50 speedup over cold: {speedup:.1}x");
    println!(
        "cache after all runs: {} hits, {} misses, {} coalesced, {} evictions, {}/{} bytes",
        stats.hits,
        stats.misses,
        stats.coalesced_waits,
        stats.evictions,
        stats.resident_bytes,
        stats.capacity_bytes
    );

    if !smoke && speedup < 10.0 {
        eprintln!("error: warm p50 must be >=10x faster than cold, measured {speedup:.1}x");
        std::process::exit(1);
    }

    let json = serde_json::json!({
        "bench": "tab_cache",
        "smoke": smoke,
        "corpus_size": n,
        "voxel_resolution": resolution,
        "replay_len": replay_meshes.len(),
        "bit_exact_gate": "passed",
        "workloads": rows.iter().map(|(label, s)| serde_json::json!({
            "workload": label,
            "queries": s.len(),
            "p50_s": p50(s),
            "p90_s": quantile(s, 0.9),
            "mean_s": mean(s),
            "total_s": s.iter().sum::<f64>(),
        })).collect::<Vec<_>>(),
        "warm_speedup_p50": speedup,
        "cache": serde_json::json!({
            "hits": stats.hits,
            "misses": stats.misses,
            "coalesced_waits": stats.coalesced_waits,
            "evictions": stats.evictions,
            "resident_bytes": stats.resident_bytes,
            "capacity_bytes": stats.capacity_bytes,
        }),
    });
    let pretty = match serde_json::to_string_pretty(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: serializing results: {e}");
            std::process::exit(1);
        }
    };
    write_or_die("BENCH_cache.json", &pretty);
    if !smoke {
        let _ = std::fs::create_dir_all("results");
        write_or_die(
            "results/tab_cache.txt",
            &format!(
                "Extraction cache — {n} corpus shapes, voxel resolution {resolution}\n{table}\nwarm p50 speedup over cold: {speedup:.1}x\n"
            ),
        );
    }
}

/// Builds a fresh cached server over the same corpus, so timing starts
/// from a genuinely empty cache.
fn rebuild_cached(shapes: &[(String, TriMesh)], resolution: usize) -> Result<SearchServer, String> {
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: resolution,
        ..Default::default()
    });
    bulk_insert(&mut db, shapes.to_vec(), 8).map_err(|e| e.to_string())?;
    Ok(SearchServer::with_cache(db, CacheConfig::default()))
}

/// A deterministic Zipf(s=1) replay over `n` ranks: inverse-CDF
/// sampling driven by an xorshift64* stream, so runs are reproducible
/// without pulling in an RNG crate.
fn zipf_replay(n: usize, len: usize) -> Vec<usize> {
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0;
    for rank in 1..=n {
        total += 1.0 / rank as f64;
        cdf.push(total);
    }
    let mut state: u64 = CORPUS_SEED | 1;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let word = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let u = (word >> 11) as f64 / (1u64 << 53) as f64 * total;
        let idx = cdf.partition_point(|&c| c < u).min(n - 1);
        out.push(idx);
    }
    out
}

fn p50(samples: &[f64]) -> f64 {
    quantile(samples, 0.5)
}

/// Nearest-rank quantile over a copy of the samples.
fn quantile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = ((sorted.len() as f64 * q).ceil() as usize).saturating_sub(1);
    sorted[idx.min(sorted.len() - 1)]
}

fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: writing {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("[out] wrote {path}");
}
