//! Regenerates **Figure 16**: average precision *and* recall of the 26
//! representative queries when every query retrieves exactly 10
//! shapes, for all five strategies.
//!
//! Paper finding: with `|R| = 10 > |A|` the precisions look like
//! scaled-down recalls (since precision = hits/10 while recall =
//! hits/|A| with |A| < 10).

use tdess_bench::standard_context;
use tdess_eval::{average_effectiveness, render_bars, render_table, RetrievalSize, Strategy};

fn main() {
    let ctx = standard_context();
    let rows = average_effectiveness(&ctx, &Strategy::paper_set(), RetrievalSize::Fixed(10));

    println!("Figure 16 — effectiveness of queries retrieving 10 shapes");
    let table: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            vec![
                (i + 1).to_string(),
                r.strategy.clone(),
                format!("{:.3}", r.avg_recall),
                format!("{:.3}", r.avg_precision),
                format!("{:.3}", r.avg_precision / r.avg_recall.max(1e-12)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["#", "strategy", "avg recall", "avg precision", "P/R ratio"],
            &table
        )
    );

    println!("recall bars:");
    let bars: Vec<(String, f64)> = rows
        .iter()
        .map(|r| (r.strategy.clone(), r.avg_recall))
        .collect();
    println!("{}", render_bars(&bars, 40));
    println!("precision bars:");
    let bars: Vec<(String, f64)> = rows
        .iter()
        .map(|r| (r.strategy.clone(), r.avg_precision))
        .collect();
    println!("{}", render_bars(&bars, 40));

    // The "precision is a scaled recall" effect: P/R should be nearly
    // constant across strategies (≈ mean |A| / 10).
    let ratios: Vec<f64> = rows
        .iter()
        .map(|r| r.avg_precision / r.avg_recall.max(1e-12))
        .collect();
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let spread = ratios.iter().map(|r| (r - mean).abs()).fold(0.0, f64::max);
    println!(
        "P/R ratio: mean {:.3}, max deviation {:.3} — precision tracks recall scaled by ~|A|/10",
        mean, spread
    );
    println!("paper: precisions at |R| = 10 are much smaller than at |R| = |A| and appear scaled from the recalls.");
}
