//! NET-tier throughput: requests per second over loopback TCP,
//! 1 client thread vs 8.
//!
//! Complements `tab_server_throughput` (which drives the
//! [`SearchServer`] in-process): here every request crosses the full
//! `tdess-net` stack — frame encode, loopback socket, bounded worker
//! pool, dispatch, frame decode — so the delta between the two tables
//! is the cost of the wire. Two workloads per thread count: `ping`
//! (pure transport overhead) and one-shot top-10 searches with
//! pre-extracted features (transport + query processing).
//!
//! Outputs:
//! * `BENCH_net_throughput.json` — machine-readable numbers
//!   (including `available_parallelism`, since the speedup ceiling is
//!   the host's core count);
//! * `results/tab_net_throughput.txt` — the rendered table.
//!
//! `--smoke` runs a small corpus subset at low voxel resolution for
//! CI: same code path, seconds instead of minutes.

use std::time::Instant;

use tdess_bench::{standard_corpus, CORPUS_SEED, RESOLUTION};
use tdess_core::{bulk_insert, Query, SearchServer, ShapeDatabase};
use tdess_eval::render_table;
use tdess_features::{FeatureExtractor, FeatureKind, FeatureSet};
use tdess_geom::TriMesh;
use tdess_net::{NetClient, NetServer, NetServerConfig};

const THREAD_COUNTS: [usize; 2] = [1, 8];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (resolution, take, requests) = if smoke {
        (12, 12, 200)
    } else {
        (RESOLUTION, usize::MAX, 2000)
    };

    let corpus = standard_corpus();
    let shapes: Vec<(String, TriMesh)> = corpus
        .shapes
        .iter()
        .take(take)
        .map(|s| (s.name.clone(), s.mesh.clone()))
        .collect();
    let n = shapes.len();
    eprintln!(
        "[setup] indexing {n} shapes at voxel resolution {resolution} (seed {CORPUS_SEED})..."
    );
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: resolution,
        ..Default::default()
    });
    match bulk_insert(&mut db, shapes, 8) {
        Ok(_) => {}
        Err(e) => {
            eprintln!("error: corpus indexing failed: {e}");
            std::process::exit(1);
        }
    }
    // Pre-extracted query features: the bench measures the wire +
    // query processing, not repeated feature extraction.
    let queries: Vec<FeatureSet> = db.shapes().iter().map(|s| s.features.clone()).collect();
    let mut server = match NetServer::bind(
        "127.0.0.1:0",
        SearchServer::new(db),
        NetServerConfig {
            workers: THREAD_COUNTS[1],
            ..Default::default()
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: binding loopback server: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.local_addr();
    eprintln!("[setup] serving on {addr}.");

    let parallelism = std::thread::available_parallelism().map_or(0, |p| p.get());
    let query = Query::top_k(FeatureKind::PrincipalMoments, 10);

    // (workload, threads, secs, req/s) per run.
    let mut runs: Vec<(&str, usize, f64, f64)> = Vec::new();
    for &threads in &THREAD_COUNTS {
        let secs = run_clients(addr, threads, requests, |client, _| {
            client.ping().map_err(|e| e.to_string())
        });
        runs.push(("ping", threads, secs, requests as f64 / secs));
    }
    for &threads in &THREAD_COUNTS {
        let queries = &queries;
        let query = &query;
        let secs = run_clients(addr, threads, requests, move |client, i| {
            let features = &queries[i % queries.len()];
            let report = client
                .search_features(features, query)
                .map_err(|e| e.to_string())?;
            if report.hits.is_empty() {
                return Err("search returned no hits".to_string());
            }
            Ok(())
        });
        runs.push(("one-shot top-10", threads, secs, requests as f64 / secs));
    }

    let speedup = |workload: &str| -> f64 {
        let rps_at = |t: usize| {
            runs.iter()
                .find(|(w, th, _, _)| *w == workload && *th == t)
                .map_or(f64::NAN, |&(_, _, _, rps)| rps)
        };
        rps_at(THREAD_COUNTS[1]) / rps_at(THREAD_COUNTS[0])
    };

    let table = render_table(
        &[
            "workload",
            "client threads",
            "total s",
            "requests/s",
            "speedup",
        ],
        &runs
            .iter()
            .map(|&(workload, threads, secs, rps)| {
                vec![
                    workload.to_string(),
                    threads.to_string(),
                    format!("{secs:.3}"),
                    format!("{rps:.1}"),
                    if threads == THREAD_COUNTS[0] {
                        "1.0x (baseline)".to_string()
                    } else {
                        format!("{:.2}x", speedup(workload))
                    },
                ]
            })
            .collect::<Vec<_>>(),
    );
    let title = format!(
        "NET-tier throughput — {requests} loopback requests per run over {n} shapes, host parallelism {parallelism}{}",
        if smoke { " [smoke]" } else { "" }
    );
    println!("\n{title}");
    println!("{table}");

    // Joining the workers (shutdown) makes the counters final before
    // they are reported.
    server.shutdown();
    let transport = server.transport_stats();
    println!("transport counters after all runs:");
    println!(
        "  {} connections accepted, {} rejected; {} frames decoded, {} decode errors; {} requests served",
        transport.connections_accepted,
        transport.connections_rejected,
        transport.frames_decoded,
        transport.decode_errors,
        transport.requests_served
    );

    let json = serde_json::json!({
        "bench": "tab_net_throughput",
        "smoke": smoke,
        "available_parallelism": parallelism,
        "corpus_size": n,
        "voxel_resolution": resolution,
        "requests_per_run": requests,
        "runs": runs.iter().map(|&(workload, threads, secs, rps)| serde_json::json!({
            "workload": workload,
            "client_threads": threads,
            "total_s": secs,
            "requests_per_s": rps,
        })).collect::<Vec<_>>(),
        "speedup_8_vs_1": serde_json::json!({
            "ping": speedup("ping"),
            "one_shot": speedup("one-shot top-10"),
        }),
        "transport": serde_json::json!({
            "connections_accepted": transport.connections_accepted,
            "connections_rejected": transport.connections_rejected,
            "frames_decoded": transport.frames_decoded,
            "decode_errors": transport.decode_errors,
            "requests_served": transport.requests_served,
        }),
    });
    let pretty = match serde_json::to_string_pretty(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: serializing results: {e}");
            std::process::exit(1);
        }
    };
    write_or_die("BENCH_net_throughput.json", &pretty);
    if !smoke {
        let _ = std::fs::create_dir_all("results");
        write_or_die(
            "results/tab_net_throughput.txt",
            &format!("{title}\n{table}\n"),
        );
    }
}

/// Spreads `total` requests across `threads` clients (one connection
/// each) and returns the wall-clock seconds for all of them.
fn run_clients<F>(addr: std::net::SocketAddr, threads: usize, total: usize, work: F) -> f64
where
    F: Fn(&mut NetClient, usize) -> Result<(), String> + Sync,
{
    let per_thread = total / threads.max(1);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let work = &work;
            scope.spawn(move || {
                let mut client = match NetClient::connect_default(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("error: client connect: {e}");
                        std::process::exit(1);
                    }
                };
                for i in 0..per_thread {
                    if let Err(e) = work(&mut client, t * per_thread + i) {
                        eprintln!("error: request failed: {e}");
                        std::process::exit(1);
                    }
                }
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: writing {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("[out] wrote {path}");
}
