//! **Ablation: voxel resolution.**
//!
//! The paper's pipeline discretizes at `N³` voxels but never states
//! `N` or studies its effect. This sweep measures retrieval
//! effectiveness (average recall at `|R| = |A|`, Figure 15 protocol)
//! against the voxelization resolution, for the features that depend
//! on the voxel/skeleton stages (eigenvalues) and for the analytic
//! ones (principal moments, unaffected by construction), plus the
//! multi-step strategy.

use std::time::Instant;

use tdess_bench::{standard_corpus, CORPUS_SEED};
use tdess_eval::{average_effectiveness, render_table, EvalContext, RetrievalSize, Strategy};
use tdess_features::FeatureExtractor;

fn main() {
    let corpus = standard_corpus();
    println!(
        "Ablation — average recall (|R| = |A|) vs voxel resolution (corpus seed {CORPUS_SEED})\n"
    );
    let strategies = Strategy::paper_set();
    let mut rows = Vec::new();
    for res in [16usize, 24, 32, 48, 64] {
        let t0 = Instant::now();
        let ctx = EvalContext::build(
            &corpus,
            FeatureExtractor {
                voxel_resolution: res,
                ..Default::default()
            },
        );
        let build_s = t0.elapsed().as_secs_f64();
        let eff = average_effectiveness(&ctx, &strategies, RetrievalSize::GroupSize);
        rows.push(vec![
            res.to_string(),
            format!("{:.3}", eff[2].avg_recall), // principal moments
            format!("{:.3}", eff[0].avg_recall), // moment invariants
            format!("{:.3}", eff[3].avg_recall), // eigenvalues
            format!("{:.3}", eff[4].avg_recall), // multi-step
            format!("{:.1}", build_s),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "resolution N",
                "principal moments",
                "moment invariants",
                "eigenvalues",
                "multi-step",
                "index time (s)"
            ],
            &rows
        )
    );
    println!("reading: the analytic features (exact mesh moments) are flat by construction.");
    println!("The eigenvalue feature is non-monotone in N: too coarse merges topology, too fine");
    println!("grows spurious junction artifacts in the thinned skeleton — another face of the");
    println!("paper's finding that the skeletal-graph eigenvalues are an unstable descriptor.");
    println!("Indexing cost grows superlinearly; N = 48 is the experiments' operating point.");
}
