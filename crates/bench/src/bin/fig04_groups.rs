//! Regenerates **Figure 4**: the group-size distribution of the
//! 113-model database (26 groups of sizes 2–8, shown ascending, plus
//! the 27 unclassified noise shapes).

use tdess_bench::standard_corpus;
use tdess_eval::{render_bars, render_table};

fn main() {
    let corpus = standard_corpus();
    let mut sizes: Vec<(usize, usize)> = (0..corpus.num_groups())
        .map(|g| (g, corpus.group_members(g).len()))
        .collect();
    sizes.sort_by_key(|&(_, s)| s);

    println!(
        "Figure 4 — sizes of the {} groups (ascending)",
        corpus.num_groups()
    );
    println!();
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .enumerate()
        .map(|(rank, &(g, s))| {
            vec![
                (rank + 1).to_string(),
                corpus.group_names[g].clone(),
                s.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&["rank", "family", "size"], &rows));

    let max = sizes.iter().map(|&(_, s)| s).max().unwrap_or(1) as f64;
    let bars: Vec<(String, f64)> = sizes
        .iter()
        .enumerate()
        .map(|(rank, &(_, s))| (format!("group {:2}", rank + 1), s as f64 / max))
        .collect();
    println!("{}", render_bars(&bars, 32));

    let classified: usize = sizes.iter().map(|&(_, s)| s).sum();
    println!(
        "total: {} shapes = {classified} classified in {} groups + {} noise",
        corpus.shapes.len(),
        corpus.num_groups(),
        corpus.noise_shapes().len()
    );
    println!("paper: 113 shapes = 86 classified in 26 groups (sizes 2-8) + 27 noise");
}
