//! Regenerates **Figure 7**: a single example query with the moment-
//! invariants feature vector at similarity threshold 0.85, reporting
//! precision and recall with the query shape excluded (the paper
//! reports Pr = 0.50, Re ≈ 0.22 for a query from a 5-member group).

use tdess_bench::standard_context;
use tdess_eval::{render_table, threshold_query};
use tdess_features::FeatureKind;

fn main() {
    let ctx = standard_context();

    // The paper queries a member of a five-shape group; use the
    // representative of our size-5 group.
    let qi = ctx
        .group_representatives()
        .into_iter()
        .find(|&qi| ctx.relevant_set(qi).len() + 1 == 5)
        .expect("the corpus has a five-member group");
    let qname = ctx.db.get(ctx.ids[qi]).expect("query exists").name.clone();

    println!("Figure 7 — example query: {qname} (group of 5)");
    println!("feature vector: moment invariants");
    println!();

    // The absolute similarity scale depends on dmax of the database;
    // sweep a band of thresholds around the paper's 0.85 to show the
    // precision/recall trade the figure illustrates.
    println!("threshold sweep:");
    let sweep: Vec<Vec<String>> = [0.80, 0.85, 0.90, 0.95, 0.98, 0.99]
        .iter()
        .map(|&t| {
            let (pr, retrieved) = threshold_query(&ctx, qi, FeatureKind::MomentInvariants, t);
            vec![
                format!("{t:.2}"),
                retrieved.len().to_string(),
                format!("{:.2}", pr.precision),
                format!("{:.2}", pr.recall),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["threshold", "|R|", "precision", "recall"], &sweep)
    );

    let threshold = 0.85;
    let (pr, retrieved) = threshold_query(&ctx, qi, FeatureKind::MomentInvariants, threshold);
    println!("result list at the paper's threshold {threshold}:");
    let rows: Vec<Vec<String>> = retrieved
        .iter()
        .enumerate()
        .map(|(rank, &id)| {
            let s = ctx.db.get(id).expect("retrieved id exists");
            let relevant = ctx.relevant_set(qi).contains(&id);
            vec![
                (rank + 1).to_string(),
                s.name.clone(),
                if relevant { "yes".into() } else { "no".into() },
            ]
        })
        .collect();
    println!("{}", render_table(&["rank", "shape", "relevant"], &rows));
    println!(
        "measured: Pr = {:.2}, Re = {:.2} ({} retrieved, query excluded)",
        pr.precision,
        pr.recall,
        retrieved.len()
    );
    println!("paper:    Pr = 0.50, Re = 0.22");
}
