//! Regenerates **Figures 13–14**: one worked query where the
//! multi-step strategy beats the best one-shot search. The paper's
//! example retrieves 30 candidates, presents the 10 most similar, and
//! reports Pr = 0.3 / Re = 0.43 for the best one-shot (principal
//! moments) vs Pr = 0.5 / Re = 0.71 for the multi-step search.

use tdess_bench::standard_context;
use tdess_core::MultiStepPlan;
use tdess_eval::{multistep_comparison, render_table, EvalContext, Strategy};
use tdess_features::FeatureKind;

fn main() {
    let ctx = standard_context();
    let plan = match Strategy::paper_set().pop().expect("paper set is non-empty") {
        Strategy::MultiStep(p) => p,
        _ => unreachable!("last paper strategy is multi-step"),
    };

    // The paper shows a query for which multi-step wins; scan the 26
    // representatives and present the largest win among queries from
    // substantial groups (|A| ≥ 4, like the paper's 7-member example).
    // The paper, too, chose a favorable example — and notes that not
    // every query benefits.
    let mut best: Option<(usize, f64)> = None;
    let mut wins = 0usize;
    let mut tried = 0usize;
    for qi in 0..ctx.ids.len() {
        if ctx.relevant_set(qi).len() < 4 {
            continue; // like the paper's example, use a substantial group
        }
        tried += 1;
        let c = multistep_comparison(&ctx, qi, FeatureKind::PrincipalMoments, &plan);
        let gain = c.multi_step.2 - c.one_shot.2;
        if gain > 0.0 {
            wins += 1;
        }
        if best.is_none_or(|(_, g)| gain > g) {
            best = Some((qi, gain));
        }
    }
    let (qi, _) = best.expect("the corpus has groups of size ≥ 5");
    let c = multistep_comparison(&ctx, qi, FeatureKind::PrincipalMoments, &plan);

    println!(
        "Figures 13-14 — one-shot vs multi-step for query {}",
        c.query
    );
    println!(
        "(plan: {} candidates, {} presented; multi-step strictly beat one-shot on {wins}/{tried} large-group queries — the paper, too, notes not every query benefits)",
        plan.candidates, plan.presented
    );
    println!();
    let rows = vec![
        vec![
            c.one_shot.0.clone(),
            format!("{:.2}", c.one_shot.1),
            format!("{:.2}", c.one_shot.2),
        ],
        vec![
            c.multi_step.0.clone(),
            format!("{:.2}", c.multi_step.1),
            format!("{:.2}", c.multi_step.2),
        ],
    ];
    println!(
        "{}",
        render_table(&["strategy", "precision", "recall"], &rows)
    );
    println!("paper: one-shot Pr = 0.30 / Re = 0.43; multi-step Pr = 0.50 / Re = 0.71");

    print_result_list(&ctx, qi, &plan);
}

/// Prints the presented result list of the winning multi-step query
/// (the paper's Figure 14 shows the 10 returned shapes).
fn print_result_list(ctx: &EvalContext, qi: usize, plan: &MultiStepPlan) {
    let ids = tdess_eval::retrieve_k(ctx, qi, &Strategy::MultiStep(plan.clone()), plan.presented);
    let relevant = ctx.relevant_set(qi);
    println!("\npresented results (multi-step):");
    let rows: Vec<Vec<String>> = ids
        .iter()
        .enumerate()
        .map(|(rank, id)| {
            vec![
                (rank + 1).to_string(),
                ctx.db.get(*id).expect("id exists").name.clone(),
                if relevant.contains(id) {
                    "yes".into()
                } else {
                    "no".into()
                },
            ]
        })
        .collect();
    println!("{}", render_table(&["rank", "shape", "relevant"], &rows));
}
