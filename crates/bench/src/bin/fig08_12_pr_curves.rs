//! Regenerates **Figures 8–12**: precision-recall curves for five
//! representative query shapes (one per group, five distinct groups) ×
//! the four feature vectors, swept over similarity thresholds.
//!
//! The paper's qualitative findings these series should reproduce:
//! moment-invariant and principal-moment curves show the classic
//! inverse precision/recall relationship and track each other, while
//! the eigenvalue curves degenerate (recall or precision barely moves).

use tdess_bench::standard_context;
use tdess_eval::{pr_curve, render_table, representative_queries};
use tdess_features::FeatureKind;

fn main() {
    let ctx = standard_context();
    let queries = representative_queries(&ctx);

    for (fig, &qi) in queries.iter().enumerate() {
        let name = &ctx.db.get(ctx.ids[qi]).expect("query exists").name;
        let group_size = ctx.relevant_set(qi).len() + 1;
        println!(
            "\nFigure {} — query shape No. {}: {name} (group of {group_size})",
            fig + 8,
            fig + 1
        );

        let mut rows = Vec::new();
        for kind in FeatureKind::PAPER_FOUR {
            let curve = pr_curve(&ctx, qi, kind, 21);
            for p in &curve {
                rows.push(vec![
                    kind.label().to_string(),
                    format!("{:.2}", p.threshold),
                    p.retrieved.to_string(),
                    format!("{:.3}", p.recall),
                    format!("{:.3}", p.precision),
                ]);
            }
        }
        println!(
            "{}",
            render_table(
                &["feature vector", "threshold", "|R|", "recall", "precision"],
                &rows
            )
        );
    }

    // Summary: mean precision at recall >= 0.5, per feature vector, a
    // compact proxy for the curves' vertical ordering.
    println!("\nSummary — mean precision over points with recall >= 0.5:");
    for kind in FeatureKind::PAPER_FOUR {
        let mut vals = Vec::new();
        for &qi in &queries {
            for p in pr_curve(&ctx, qi, kind, 21) {
                if p.recall >= 0.5 && p.retrieved > 0 {
                    vals.push(p.precision);
                }
            }
        }
        let mean = if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        println!("  {:22} {:.3}", kind.label(), mean);
    }
    println!("paper: MI and PM curves similar and strongest; EV curves degenerate.");
}
