//! Persistence and index-build behavior at 10³/10⁴/10⁵ shapes — the
//! scale regime of §2.3's "large synthetic databases", applied to the
//! storage layer.
//!
//! For each scale a synthetic corpus (feature vectors jittered around
//! the 26 family anchors, see `tdess_dataset::synth_corpus`) is
//! indexed and then:
//!
//! * **persistence** — the database is saved and re-loaded in the
//!   binary `TDSS` snapshot format and (at 10³/10⁴) in the JSON compat
//!   format, wall time for each; the JSON path is skipped at 10⁵
//!   because the serde value tree alone needs gigabytes of RAM there,
//!   which is precisely why the binary format exists;
//! * **index build** — every feature space's R-tree built by STR bulk
//!   loading vs one-at-a-time insertion, build wall time plus mean
//!   kNN node accesses over 100 stored-vector queries on each;
//! * **equivalence** — search results from the re-loaded binary (and
//!   JSON, where produced) database are checked bit-identical to the
//!   in-memory database before any timing is trusted.
//!
//! Outputs:
//! * `BENCH_scale.json` — machine-readable numbers;
//! * `results/tab_scale.txt` — the rendered table.
//!
//! `--smoke` runs the 10³ scale only: same code path, CI-sized.

use std::path::Path;
use std::time::Instant;

use tdess_bench::CORPUS_SEED;
use tdess_core::{
    load_from_path, save_to_path, save_to_path_binary, Query, SearchHit, ShapeDatabase,
};
use tdess_dataset::synth_corpus;
use tdess_eval::render_table;
use tdess_features::{FeatureExtractor, FeatureKind};
use tdess_index::{QueryStats, RTree, RTreeConfig};

/// Anchor-extraction resolution. Only 26 meshes are ever voxelized, so
/// this is a fixed setup cost, not part of any measured interval.
const ANCHOR_RESOLUTION: usize = 24;

/// kNN queries per (scale, kind, structure) when counting node
/// accesses.
const QUERIES: usize = 100;

/// JSON save/load is only measured up to this many shapes; beyond it
/// the in-memory serde value tree dwarfs the database itself.
const JSON_MAX_SHAPES: usize = 10_000;

struct PersistNumbers {
    bin_bytes: u64,
    bin_save_s: f64,
    bin_load_s: f64,
    json: Option<(u64, f64, f64)>, // bytes, save s, load s
}

struct IndexNumbers {
    str_build_s: f64,
    incr_build_s: f64,
    str_nodes_per_query: f64,
    incr_nodes_per_query: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scales: &[usize] = if smoke {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };

    let extractor = FeatureExtractor {
        voxel_resolution: ANCHOR_RESOLUTION,
        ..Default::default()
    };
    let dir = std::env::temp_dir().join("tdess_tab_scale");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: creating {}: {e}", dir.display());
        std::process::exit(1);
    }

    let mut rows = Vec::new();
    let mut scale_json = Vec::new();
    for &n in scales {
        eprintln!("[setup] generating {n} synthetic shapes (seed {CORPUS_SEED})");
        let shapes = match synth_corpus(&extractor, CORPUS_SEED, n) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: anchor extraction: {e}");
                std::process::exit(1);
            }
        };

        let t0 = Instant::now();
        let mut db = ShapeDatabase::new(extractor);
        db.insert_batch_precomputed(shapes.clone());
        let db_build_s = t0.elapsed().as_secs_f64();
        eprintln!("[setup] database of {n} indexed in {db_build_s:.2}s");

        let index = index_numbers(&db, n);
        let persist = persist_numbers(&db, n, &dir);

        rows.push(vec![
            n.to_string(),
            format!("{:.1}", persist.bin_bytes as f64 / 1e6),
            format!("{:.3}", persist.bin_save_s),
            format!("{:.3}", persist.bin_load_s),
            persist
                .json
                .map_or("- (skipped)".into(), |(_, s, _)| format!("{s:.3}")),
            persist
                .json
                .map_or("- (skipped)".into(), |(_, _, l)| format!("{l:.3}")),
            persist.json.map_or("-".into(), |(_, _, l)| {
                format!("{:.1}x", l / persist.bin_load_s.max(1e-12))
            }),
            format!("{:.3}", index.str_build_s),
            format!("{:.3}", index.incr_build_s),
            format!("{:.1}", index.str_nodes_per_query),
            format!("{:.1}", index.incr_nodes_per_query),
        ]);

        let persist_json = {
            let json_part = match persist.json {
                Some((bytes, save_s, load_s)) => serde_json::json!({
                    "bytes": bytes,
                    "save_s": save_s,
                    "load_s": load_s,
                    "load_speedup_binary_vs_json": load_s / persist.bin_load_s.max(1e-12),
                }),
                None => serde_json::json!(null),
            };
            serde_json::json!({
                "binary_bytes": persist.bin_bytes,
                "binary_save_s": persist.bin_save_s,
                "binary_load_s": persist.bin_load_s,
                "json": json_part,
                "json_skipped_above_shapes": JSON_MAX_SHAPES,
            })
        };
        let index_json = serde_json::json!({
            "str_build_s": index.str_build_s,
            "incremental_build_s": index.incr_build_s,
            "str_nodes_per_query": index.str_nodes_per_query,
            "incremental_nodes_per_query": index.incr_nodes_per_query,
        });
        scale_json.push(serde_json::json!({
            "shapes": n,
            "db_build_s": db_build_s,
            "persist": persist_json,
            "index": index_json,
        }));
    }

    let headers = [
        "shapes",
        "bin MB",
        "bin save s",
        "bin load s",
        "json save s",
        "json load s",
        "load speedup",
        "STR build s",
        "incr build s",
        "STR nodes/q",
        "incr nodes/q",
    ];
    let table = render_table(&headers, &rows);
    let title = format!(
        "Persistence and index build at scale — synthetic corpora, binary vs JSON snapshots{}",
        if smoke { " [smoke]" } else { "" }
    );
    println!("\n{title}");
    println!("{table}");
    println!(
        "JSON format measured up to {JSON_MAX_SHAPES} shapes; larger databases are binary-only. \
         Build times sum all {} feature-space trees.",
        FeatureKind::ALL.len()
    );

    let json = serde_json::json!({
        "bench": "tab_scale",
        "smoke": smoke,
        "corpus_seed": CORPUS_SEED,
        "anchor_resolution": ANCHOR_RESOLUTION,
        "queries_per_tree": QUERIES,
        "scales": serde_json::Value::Arr(scale_json),
    });
    let pretty = match serde_json::to_string_pretty(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: serializing results: {e}");
            std::process::exit(1);
        }
    };
    write_or_die("BENCH_scale.json", &pretty);
    if !smoke {
        let _ = std::fs::create_dir_all("results");
        write_or_die("results/tab_scale.txt", &format!("{title}\n{table}\n"));
    }
}

/// Best wall time of `REPS` runs of `f` — the standard guard against a
/// single run eating a page-cache miss or scheduler hiccup.
fn best_of<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    const REPS: usize = 5;
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("REPS is nonzero"))
}

/// Saves and re-loads `db` in both formats (best of three runs each),
/// verifying the round trips give bit-identical search results before
/// reporting any timing.
fn persist_numbers(db: &ShapeDatabase, n: usize, dir: &Path) -> PersistNumbers {
    let bin_path = dir.join(format!("scale_{n}.tdss"));
    let (bin_save_s, ()) = best_of(|| {
        if let Err(e) = save_to_path_binary(db, &bin_path) {
            eprintln!("error: binary save at {n}: {e}");
            std::process::exit(1);
        }
    });
    let bin_bytes = std::fs::metadata(&bin_path).map(|m| m.len()).unwrap_or(0);
    let (bin_load_s, from_bin) = best_of(|| match load_from_path(&bin_path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: binary load at {n}: {e}");
            std::process::exit(1);
        }
    });
    assert_identical_results(db, &from_bin, "binary");
    let _ = std::fs::remove_file(&bin_path);

    let json = if n <= JSON_MAX_SHAPES {
        let json_path = dir.join(format!("scale_{n}.json"));
        let (save_s, ()) = best_of(|| {
            if let Err(e) = save_to_path(db, &json_path) {
                eprintln!("error: json save at {n}: {e}");
                std::process::exit(1);
            }
        });
        let bytes = std::fs::metadata(&json_path).map(|m| m.len()).unwrap_or(0);
        let (load_s, from_json) = best_of(|| match load_from_path(&json_path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: json load at {n}: {e}");
                std::process::exit(1);
            }
        });
        assert_identical_results(db, &from_json, "json");
        let _ = std::fs::remove_file(&json_path);
        Some((bytes, save_s, load_s))
    } else {
        eprintln!("[note] {n} shapes: JSON path skipped (> {JSON_MAX_SHAPES})");
        None
    };

    PersistNumbers {
        bin_bytes,
        bin_save_s,
        bin_load_s,
        json,
    }
}

/// kNN results from a re-loaded database must match the source bit for
/// bit — otherwise the timing numbers describe a different database.
fn assert_identical_results(a: &ShapeDatabase, b: &ShapeDatabase, format: &str) {
    if a.len() != b.len() {
        eprintln!(
            "error: {format} reload has {} of {} shapes",
            b.len(),
            a.len()
        );
        std::process::exit(1);
    }
    let step = (a.len() / 16).max(1);
    for shape in a.shapes().iter().step_by(step) {
        for kind in FeatureKind::ALL {
            let q = Query::top_k(kind, 10);
            let ha = a.search(&shape.features, &q);
            let hb = b.search(&shape.features, &q);
            let same = ha.len() == hb.len()
                && ha.iter().zip(&hb).all(|(x, y): (&SearchHit, &SearchHit)| {
                    x.id == y.id && x.distance.to_bits() == y.distance.to_bits()
                });
            if !same {
                eprintln!(
                    "error: {format} reload gives different {kind:?} results for `{}`",
                    shape.name
                );
                std::process::exit(1);
            }
        }
    }
}

/// Builds each feature space's tree twice — STR bulk load vs
/// incremental insertion — and compares build time and query node
/// accesses. The STR trees must never need more node accesses than the
/// incremental ones; that regression check is the point of the column.
fn index_numbers(db: &ShapeDatabase, n: usize) -> IndexNumbers {
    let config = RTreeConfig::default();
    let mut str_build_s = 0.0;
    let mut incr_build_s = 0.0;
    let mut str_stats = QueryStats::default();
    let mut incr_stats = QueryStats::default();
    let mut query_count = 0usize;
    for kind in FeatureKind::ALL {
        let dim = db.extractor().dim(kind);
        let points: Vec<(Vec<f64>, u64)> = db
            .shapes()
            .iter()
            .map(|s| (s.features.get(kind).to_vec(), s.id))
            .collect();

        let t0 = Instant::now();
        let bulk: RTree<u64> = RTree::bulk_load(dim, config, points.clone());
        str_build_s += t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let mut incr: RTree<u64> = RTree::new(dim, config);
        for (p, id) in &points {
            incr.insert(p.clone(), *id);
        }
        incr_build_s += t0.elapsed().as_secs_f64();

        let step = (points.len() / QUERIES).max(1);
        for (p, _) in points.iter().step_by(step).take(QUERIES) {
            let a = bulk.knn(p, 10, &mut str_stats);
            let b = incr.knn(p, 10, &mut incr_stats);
            query_count += 1;
            // Same distances from both shapes of the same point set.
            let same = a.len() == b.len()
                && a.iter()
                    .zip(&b)
                    .all(|((_, _, da), (_, _, db))| da.to_bits() == db.to_bits());
            if !same {
                eprintln!("error: STR and incremental kNN disagree ({kind:?}, n={n})");
                std::process::exit(1);
            }
        }
    }
    IndexNumbers {
        str_build_s,
        incr_build_s,
        str_nodes_per_query: str_stats.nodes_visited as f64 / query_count as f64,
        incr_nodes_per_query: incr_stats.nodes_visited as f64 / query_count as f64,
    }
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: writing {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("[out] wrote {path}");
}
