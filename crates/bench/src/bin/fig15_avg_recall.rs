//! Regenerates **Figure 15**: average recall of 26 queries (one per
//! group) for the five strategies, under both retrieval sizes —
//! `|R| = |A|` (group size) and `|R| = 10`.
//!
//! Paper findings to reproduce: descending order PM > MI > GP > EV
//! among one-shot feature vectors, and multi-step beating the best
//! one-shot by ≈ 51%.

use tdess_bench::standard_context;
use tdess_eval::{average_effectiveness, render_bars, render_table, RetrievalSize, Strategy};

fn main() {
    let ctx = standard_context();
    let strategies = Strategy::paper_set();

    for (label, size) in [
        (
            "retrieved as many shapes as group size (|R| = |A|)",
            RetrievalSize::GroupSize,
        ),
        (
            "retrieved 10 shapes for every query (|R| = 10)",
            RetrievalSize::Fixed(10),
        ),
    ] {
        let rows = average_effectiveness(&ctx, &strategies, size);
        println!("\nFigure 15 — average recall, {label}");
        let table: Vec<Vec<String>> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                vec![
                    (i + 1).to_string(),
                    r.strategy.clone(),
                    format!("{:.3}", r.avg_recall),
                ]
            })
            .collect();
        println!("{}", render_table(&["#", "strategy", "avg recall"], &table));
        let bars: Vec<(String, f64)> = rows
            .iter()
            .map(|r| (r.strategy.clone(), r.avg_recall))
            .collect();
        println!("{}", render_bars(&bars, 40));

        // Headline ratio: multi-step vs the best one-shot.
        let best_one_shot = rows[..4]
            .iter()
            .map(|r| r.avg_recall)
            .fold(f64::NEG_INFINITY, f64::max);
        let multi = rows[4].avg_recall;
        println!(
            "multi-step vs best one-shot: {:.3} vs {:.3} ({:+.0}%)",
            multi,
            best_one_shot,
            (multi / best_one_shot - 1.0) * 100.0
        );
    }
    println!("\npaper: order PM > MI > GP > EV; multi-step +51% over principal moments.");
}
