//! **Ablation: R-tree fan-out.**
//!
//! §2.3 builds the R-tree index without stating its node capacity.
//! This sweep measures kNN cost (entries checked, nodes visited, wall
//! time) across fan-outs `M ∈ {4..64}` on a clustered synthetic
//! database, bracketing the default `M = 16`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdess_eval::render_table;
use tdess_index::{QueryStats, RTree, RTreeConfig};

fn main() {
    let n = 50_000usize;
    let dim = 3;
    let mut rng = StdRng::seed_from_u64(11);
    let centers: Vec<Vec<f64>> = (0..50)
        .map(|_| (0..dim).map(|_| rng.gen_range(-100.0..100.0)).collect())
        .collect();
    let points: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let c = &centers[rng.gen_range(0..50usize)];
            c.iter().map(|&x| x + rng.gen_range(-2.0..2.0)).collect()
        })
        .collect();
    let queries: Vec<Vec<f64>> = (0..200)
        .map(|_| points[rng.gen_range(0..n)].clone())
        .collect();

    println!("Ablation — R-tree fan-out M, kNN k = 10 on {n} clustered points (200 queries)\n");
    let mut rows = Vec::new();
    for m in [4usize, 8, 16, 32, 64] {
        let cfg = RTreeConfig {
            max_entries: m,
            min_entries: (m / 2).max(1).min(m / 2).max(1),
        };
        let t0 = Instant::now();
        let mut tree: RTree<usize> = RTree::new(dim, cfg);
        for (i, p) in points.iter().enumerate() {
            tree.insert(p.clone(), i);
        }
        let build = t0.elapsed();
        let mut stats = QueryStats::default();
        let t0 = Instant::now();
        for q in &queries {
            let _ = tree.knn(q, 10, &mut stats);
        }
        let qt = t0.elapsed();
        rows.push(vec![
            m.to_string(),
            tree.height().to_string(),
            format!("{:.2}", build.as_secs_f64()),
            format!("{}", stats.nodes_visited / queries.len()),
            format!("{}", stats.entries_checked / queries.len()),
            format!("{:.1}", qt.as_secs_f64() * 1e6 / queries.len() as f64),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "M",
                "height",
                "build (s)",
                "nodes/query",
                "entries/query",
                "µs/query"
            ],
            &rows
        )
    );
    println!(
        "reading: small M = deep trees, many node hops; large M = flat trees, big node scans;"
    );
    println!("the default M = 16 sits at the usual sweet spot for in-memory points.");
}
