//! **Ablation: noise sensitivity of moment orders.**
//!
//! §3.5.3 of the paper justifies stopping at second-order moments:
//! "higher order moments are sensitive to noise." This experiment
//! quantifies that claim on our corpus: each shape's vertices are
//! jittered by a fraction of its bounding-box diagonal, and we measure
//! the feature displacement relative to the feature space's diameter
//! (a signal-to-noise proxy — how far noise moves a shape compared to
//! how far shapes are from each other).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdess_bench::standard_corpus;
use tdess_core::{weighted_distance, Weights};
use tdess_eval::render_table;
use tdess_features::{FeatureExtractor, FeatureKind};
use tdess_geom::{TriMesh, Vec3};

/// Feature kinds compared: second-order descriptors vs the
/// higher-order extension.
const KINDS: [FeatureKind; 4] = [
    FeatureKind::MomentInvariants,
    FeatureKind::PrincipalMoments,
    FeatureKind::GeometricParams,
    FeatureKind::HigherOrder,
];

fn jitter(mesh: &TriMesh, rel: f64, rng: &mut StdRng) -> TriMesh {
    let diag = mesh.bounding_box().diagonal();
    let amp = rel * diag;
    let mut out = mesh.clone();
    out.map_vertices(|v| {
        v + Vec3::new(
            rng.gen_range(-amp..amp),
            rng.gen_range(-amp..amp),
            rng.gen_range(-amp..amp),
        )
    });
    out
}

fn main() {
    let corpus = standard_corpus();
    let ex = FeatureExtractor {
        voxel_resolution: 32,
        ..Default::default()
    };
    // A manageable subset: the 26 group representatives.
    let shapes: Vec<&tdess_dataset::ShapeRecord> = {
        let mut seen = std::collections::HashSet::new();
        corpus
            .shapes
            .iter()
            .filter(|s| s.group.is_some_and(|g| seen.insert(g)))
            .collect()
    };
    eprintln!(
        "[setup] extracting clean features for {} shapes...",
        shapes.len()
    );
    let clean: Vec<_> = shapes
        .iter()
        .map(|s| ex.extract(&s.mesh).expect("corpus shapes extract"))
        .collect();

    // Feature-space diameters over the clean subset (the "signal").
    let diameter = |kind: FeatureKind| -> f64 {
        let mut dmax: f64 = 0.0;
        for i in 0..clean.len() {
            for j in (i + 1)..clean.len() {
                dmax = dmax.max(weighted_distance(
                    clean[i].get(kind),
                    clean[j].get(kind),
                    &Weights::unit(),
                ));
            }
        }
        dmax
    };
    let diams: Vec<f64> = KINDS.iter().map(|&k| diameter(k)).collect();

    println!("Ablation — feature displacement under vertex jitter,");
    println!("as a fraction of the feature space's clean diameter (lower = more robust)\n");
    let mut rows = Vec::new();
    for rel in [0.002, 0.005, 0.01, 0.02] {
        let mut rng = StdRng::seed_from_u64(4242);
        let mut sums = vec![0.0f64; KINDS.len()];
        for (s, cf) in shapes.iter().zip(&clean) {
            let noisy_mesh = jitter(&s.mesh, rel, &mut rng);
            let nf = ex
                .extract(&noisy_mesh)
                .expect("jittered shapes stay extractable");
            for (ki, &kind) in KINDS.iter().enumerate() {
                sums[ki] += weighted_distance(cf.get(kind), nf.get(kind), &Weights::unit());
            }
        }
        let mut row = vec![format!("{:.3}", rel)];
        for (ki, sum) in sums.iter().enumerate() {
            let mean = sum / shapes.len() as f64;
            row.push(format!("{:.4}", mean / diams[ki].max(1e-12)));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("jitter (rel)")
        .chain(KINDS.iter().map(|k| k.label()))
        .collect();
    println!("{}", render_table(&headers, &rows));

    // The paper's claim: higher order more sensitive than second order.
    let last = rows.last().expect("non-empty sweep");
    let pm: f64 = last[2].parse().expect("numeric cell");
    let ho: f64 = last[4].parse().expect("numeric cell");
    println!(
        "at the largest jitter, higher-order displacement is {:.1}x the principal-moment displacement",
        ho / pm.max(1e-12)
    );
    println!("paper (§3.5.3): \"higher order moments are sensitive to noise\" — hence the paper stops at second order.");
}
