//! Double-run reproducibility gate — the dynamic complement of
//! `cargo xtask determinism`'s static taint analysis.
//!
//! The standard 113-shape corpus is built and indexed **twice, in
//! genuinely fresh processes** (the binary re-execs itself with
//! `--worker`, so each run gets its own address space, its own
//! `RandomState` hash seeds, and no shared allocator state). Each
//! worker persists the binary `TDSS` snapshot and a fixed query sweep
//! — every stored shape queried top-10 against every feature space,
//! hits serialized with bit-exact distance/similarity — and the parent
//! compares both artifacts **byte for byte**. Any divergence (hash
//! iteration order leaking into the snapshot, a clock stamp, an
//! unseeded RNG) fails the run.
//!
//! Outputs:
//! * `BENCH_repro.json` — machine-readable verdict and timings;
//! * `results/tab_repro.txt` — the rendered table.
//!
//! `--smoke` runs the same double build and comparison but skips the
//! rendered-table artifact: same gate, CI-sized output.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

use tdess_bench::{standard_context, CORPUS_SEED, RESOLUTION};
use tdess_core::{save_to_path_binary, Query};
use tdess_eval::render_table;
use tdess_features::FeatureKind;

/// Hits kept per (shape, feature space) in the fixed query sweep.
const TOP_K: usize = 10;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--worker") {
        match args.get(pos + 1) {
            Some(dir) => worker(Path::new(dir)),
            None => {
                eprintln!("error: --worker needs a directory");
                std::process::exit(2);
            }
        }
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");

    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: locating own executable: {e}");
            std::process::exit(1);
        }
    };
    let base = std::env::temp_dir().join(format!("tdess_tab_repro_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let mut run_dirs: Vec<PathBuf> = Vec::new();
    let mut totals: Vec<f64> = Vec::new();
    for label in ["run_a", "run_b"] {
        let dir = base.join(label);
        eprintln!("[run] {label}: building the {RESOLUTION}³ index in a fresh process");
        let t0 = Instant::now();
        let status = Command::new(&exe).arg("--worker").arg(&dir).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("error: {label} worker exited with {s}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: spawning {label} worker: {e}");
                std::process::exit(1);
            }
        }
        totals.push(t0.elapsed().as_secs_f64());
        run_dirs.push(dir);
    }

    let snap_a = read_or_die(&run_dirs[0].join("snapshot.tdss"));
    let snap_b = read_or_die(&run_dirs[1].join("snapshot.tdss"));
    let res_a = read_or_die(&run_dirs[0].join("results.txt"));
    let res_b = read_or_die(&run_dirs[1].join("results.txt"));
    let (build_a, shapes) = read_meta(&run_dirs[0].join("meta.txt"));
    let (build_b, _) = read_meta(&run_dirs[1].join("meta.txt"));

    let snapshot_identical = snap_a == snap_b;
    let results_identical = res_a == res_b;
    if !snapshot_identical {
        let off = first_divergence(&snap_a, &snap_b);
        eprintln!(
            "error: snapshots differ ({} vs {} bytes, first divergence at byte {off}) — \
             the index build is not reproducible",
            snap_a.len(),
            snap_b.len(),
        );
    }
    if !results_identical {
        let line = res_a
            .split(|b| *b == b'\n')
            .zip(res_b.split(|b| *b == b'\n'))
            .position(|(a, b)| a != b)
            .map_or(0, |i| i + 1);
        eprintln!(
            "error: query results differ (first divergence at line {line}) — \
             search over the rebuilt index is not reproducible"
        );
    }
    if !snapshot_identical || !results_identical {
        std::process::exit(1);
    }
    let _ = std::fs::remove_dir_all(&base);

    let verdict = format!(
        "reproducible: {shapes} shapes, {} snapshot bytes and {} result lines byte-identical \
         across fresh processes",
        snap_a.len(),
        res_a.iter().filter(|b| **b == b'\n').count(),
    );
    let headers = ["run", "index build s", "total s", "snapshot bytes"];
    let rows = vec![
        vec![
            "a".into(),
            format!("{build_a:.2}"),
            format!("{:.2}", totals[0]),
            snap_a.len().to_string(),
        ],
        vec![
            "b".into(),
            format!("{build_b:.2}"),
            format!("{:.2}", totals[1]),
            snap_b.len().to_string(),
        ],
    ];
    let table = render_table(&headers, &rows);
    let title = format!(
        "Double-run reproducibility — fresh-process index builds, byte-exact gate{}",
        if smoke { " [smoke]" } else { "" }
    );
    println!("\n{title}");
    println!("{table}");
    println!("{verdict}");

    let json = serde_json::json!({
        "bench": "tab_repro",
        "smoke": smoke,
        "corpus_seed": CORPUS_SEED,
        "resolution": RESOLUTION,
        "shapes": shapes,
        "top_k": TOP_K,
        "snapshot_bytes": snap_a.len() as u64,
        "snapshot_identical": snapshot_identical,
        "results_identical": results_identical,
        "runs": serde_json::Value::Arr(vec![
            serde_json::json!({"build_s": build_a, "total_s": totals[0]}),
            serde_json::json!({"build_s": build_b, "total_s": totals[1]}),
        ]),
    });
    let pretty = match serde_json::to_string_pretty(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: serializing results: {e}");
            std::process::exit(1);
        }
    };
    write_or_die("BENCH_repro.json", &pretty);
    if !smoke {
        let _ = std::fs::create_dir_all("results");
        write_or_die(
            "results/tab_repro.txt",
            &format!("{title}\n{table}\n{verdict}\n"),
        );
    }
}

/// One fresh-process build: index the standard corpus, persist the
/// binary snapshot, and serialize the fixed query sweep with bit-exact
/// scores. Everything written here is compared byte-for-byte by the
/// parent, so the serialization must itself be order-fixed: shapes in
/// insertion order, feature spaces in `FeatureKind::ALL` order.
fn worker(dir: &Path) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: creating {}: {e}", dir.display());
        std::process::exit(1);
    }
    let t0 = Instant::now();
    let ctx = standard_context();
    let build_s = t0.elapsed().as_secs_f64();

    if let Err(e) = save_to_path_binary(&ctx.db, &dir.join("snapshot.tdss")) {
        eprintln!("error: saving snapshot: {e}");
        std::process::exit(1);
    }

    let mut out = String::new();
    for shape in ctx.db.shapes() {
        for kind in FeatureKind::ALL {
            let q = Query::top_k(kind, TOP_K);
            out.push_str(&format!("{} {kind:?}", shape.name));
            for h in ctx.db.search(&shape.features, &q) {
                out.push_str(&format!(
                    " {}:{:016x}:{:016x}",
                    h.id,
                    h.distance.to_bits(),
                    h.similarity.to_bits(),
                ));
            }
            out.push('\n');
        }
    }
    write_or_die_at(&dir.join("results.txt"), &out);
    write_or_die_at(
        &dir.join("meta.txt"),
        &format!("{build_s} {}\n", ctx.db.len()),
    );
}

fn first_divergence(a: &[u8], b: &[u8]) -> usize {
    a.iter()
        .zip(b.iter())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()))
}

fn read_or_die(path: &Path) -> Vec<u8> {
    match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("error: reading {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Parses the worker's `meta.txt` (`<build_s> <shapes>`).
fn read_meta(path: &Path) -> (f64, usize) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let mut parts = text.split_whitespace();
    let build_s = parts.next().and_then(|s| s.parse::<f64>().ok());
    let shapes = parts.next().and_then(|s| s.parse::<usize>().ok());
    match (build_s, shapes) {
        (Some(b), Some(n)) => (b, n),
        _ => {
            eprintln!(
                "error: malformed worker meta in {}: {text:?}",
                path.display()
            );
            std::process::exit(1);
        }
    }
}

fn write_or_die_at(path: &Path, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: writing {}: {e}", path.display());
        std::process::exit(1);
    }
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: writing {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("[out] wrote {path}");
}
