//! OBS-tier overhead: the cost of full instrumentation vs `TDESS_LOG=off`.
//!
//! Runs the same indexing + query workload over the standard corpus
//! twice: once with tracing disabled (`Level::Off` — stage timers
//! compile to a no-op `None`) and once fully instrumented
//! (`Level::Debug` with the JSON sink pointed at `io::sink()`, so the
//! numbers measure event formatting and histogram recording, not
//! terminal I/O). The delta is the price of observability on the hot
//! path.
//!
//! Outputs:
//! * `BENCH_obs_overhead.json` — machine-readable numbers;
//! * `results/tab_obs_overhead.txt` — the rendered table.
//!
//! `--smoke` runs a small corpus subset at low voxel resolution for
//! CI: same code path, seconds instead of minutes.

use std::time::Instant;

use tdess_bench::{standard_corpus, CORPUS_SEED, RESOLUTION};
use tdess_core::{bulk_insert, Query, SearchServer, ShapeDatabase};
use tdess_eval::render_table;
use tdess_features::{FeatureExtractor, FeatureKind, FeatureSet};
use tdess_geom::TriMesh;
use tdess_obs::Level;

/// Seconds spent in each phase of one workload pass.
struct Pass {
    index_s: f64,
    query_s: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (resolution, take, query_rounds) = if smoke {
        (12, 12, 5)
    } else {
        (RESOLUTION, usize::MAX, 50)
    };

    let corpus = standard_corpus();
    let shapes: Vec<(String, TriMesh)> = corpus
        .shapes
        .iter()
        .take(take)
        .map(|s| (s.name.clone(), s.mesh.clone()))
        .collect();
    let n = shapes.len();
    eprintln!(
        "[setup] {n} shapes at voxel resolution {resolution} (seed {CORPUS_SEED}), {query_rounds} query rounds"
    );

    // Off first: with tracing disabled the stage timers short-circuit
    // before touching the clock, so this pass is the baseline.
    tdess_obs::set_level(Level::Off);
    let off = run_pass(&shapes, resolution, query_rounds);

    // Fully instrumented: debug-level events and per-stage histograms
    // live, formatted JSON discarded into `io::sink()` so the terminal
    // is not part of the measurement.
    tdess_obs::set_level(Level::Debug);
    tdess_obs::set_sink(Box::new(std::io::sink()));
    let on = run_pass(&shapes, resolution, query_rounds);

    tdess_obs::set_level(Level::Info);
    tdess_obs::sink_to_stderr();

    let overhead = |base: f64, inst: f64| -> f64 {
        if base > 0.0 {
            (inst - base) / base * 100.0
        } else {
            f64::NAN
        }
    };
    let rows = [
        ("index (extract all)", off.index_s, on.index_s),
        ("one-shot queries", off.query_s, on.query_s),
        ("total", off.index_s + off.query_s, on.index_s + on.query_s),
    ];
    let table = render_table(
        &["phase", "TDESS_LOG=off s", "instrumented s", "overhead"],
        &rows
            .iter()
            .map(|&(phase, base, inst)| {
                vec![
                    phase.to_string(),
                    format!("{base:.3}"),
                    format!("{inst:.3}"),
                    format!("{:+.2}%", overhead(base, inst)),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let title = format!(
        "OBS-tier overhead — {n} shapes, {query_rounds} query rounds{}",
        if smoke { " [smoke]" } else { "" }
    );
    println!("\n{title}");
    println!("{table}");

    // The instrumented pass must actually have recorded stage
    // histograms — otherwise the comparison is vacuous.
    let stages = tdess_obs::stage_snapshots();
    if stages.is_empty() {
        eprintln!("error: instrumented pass recorded no stage histograms");
        std::process::exit(1);
    }

    let json = serde_json::json!({
        "bench": "tab_obs_overhead",
        "smoke": smoke,
        "corpus_size": n,
        "voxel_resolution": resolution,
        "query_rounds": query_rounds,
        "off": serde_json::json!({"index_s": off.index_s, "query_s": off.query_s}),
        "instrumented": serde_json::json!({"index_s": on.index_s, "query_s": on.query_s}),
        "overhead_pct": serde_json::json!({
            "index": overhead(off.index_s, on.index_s),
            "query": overhead(off.query_s, on.query_s),
            "total": overhead(off.index_s + off.query_s, on.index_s + on.query_s),
        }),
        "stages_recorded": stages.iter().map(|(stage, snap)| serde_json::json!({
            "stage": stage.name(),
            "count": snap.count(),
            "p50_s": snap.quantile_seconds(0.5),
            "p99_s": snap.quantile_seconds(0.99),
        })).collect::<Vec<_>>(),
    });
    let pretty = match serde_json::to_string_pretty(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: serializing results: {e}");
            std::process::exit(1);
        }
    };
    write_or_die("BENCH_obs_overhead.json", &pretty);
    if !smoke {
        let _ = std::fs::create_dir_all("results");
        write_or_die(
            "results/tab_obs_overhead.txt",
            &format!("{title}\n{table}\n"),
        );
    }
}

/// One full workload pass: index the corpus (feature extraction runs
/// every pipeline stage), then query each shape's own features for
/// `rounds` rounds.
fn run_pass(shapes: &[(String, TriMesh)], resolution: usize, rounds: usize) -> Pass {
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: resolution,
        ..Default::default()
    });
    let t0 = Instant::now();
    if let Err(e) = bulk_insert(&mut db, shapes.to_vec(), 8) {
        eprintln!("error: corpus indexing failed: {e}");
        std::process::exit(1);
    }
    let index_s = t0.elapsed().as_secs_f64();

    let queries: Vec<FeatureSet> = db.shapes().iter().map(|s| s.features.clone()).collect();
    let server = SearchServer::new(db);
    let query = Query::top_k(FeatureKind::PrincipalMoments, 10);
    let t0 = Instant::now();
    for _ in 0..rounds {
        for features in &queries {
            let hits = server.search_features(features, &query);
            if hits.is_empty() {
                eprintln!("error: search returned no hits");
                std::process::exit(1);
            }
        }
    }
    let query_s = t0.elapsed().as_secs_f64();
    Pass { index_s, query_s }
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: writing {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("[out] wrote {path}");
}
