//! OBS-tier overhead: the cost of full instrumentation vs `TDESS_LOG=off`.
//!
//! Runs the same indexing + query workload over the standard corpus
//! twice: once with tracing disabled (`Level::Off` — stage timers
//! short-circuit before touching the clock, no spans, no recorder)
//! and once fully instrumented (`Level::Debug` with the JSON sink
//! pointed at `io::sink()`, plus request-span collection and a live
//! flight recorder on the mesh-query phase, so the numbers measure
//! event formatting, histogram recording, span bookkeeping, and tail
//! sampling — not terminal I/O). The delta is the price of
//! observability on the hot path.
//!
//! The workload has three phases:
//! * **index** — bulk extraction of the corpus (all five pipeline
//!   stages);
//! * **one-shot queries** — `search_features` on pre-extracted
//!   features (index search + similarity combine only);
//! * **mesh queries** — `multi_step_mesh` on raw meshes, each wrapped
//!   in a request span when instrumented, so `query_extract` and
//!   `rerank` record samples too (a regression against the earlier
//!   version of this bench, whose query loop never extracted and left
//!   `query_extract` at 0 samples).
//!
//! Outputs:
//! * `BENCH_obs_overhead.json` — machine-readable numbers;
//! * `results/tab_obs_overhead.txt` — the rendered table.
//!
//! `--smoke` runs a small corpus subset at low voxel resolution for
//! CI: same code path, seconds instead of minutes.

use std::time::{Duration, Instant};

use tdess_bench::{standard_corpus, CORPUS_SEED, RESOLUTION};
use tdess_core::{bulk_insert, MultiStepPlan, Query, SearchServer, ShapeDatabase};
use tdess_eval::render_table;
use tdess_features::{FeatureExtractor, FeatureKind, FeatureSet};
use tdess_geom::TriMesh;
use tdess_obs::{FlightRecorder, Level, RecorderConfig, Stage, TraceGuard};

/// How many distinct corpus meshes the mesh-query phase cycles over.
/// Bounded: each query runs the full extraction pipeline uncached.
const MESH_QUERY_SUBSET: usize = 8;

/// Seconds spent in each phase of one workload pass.
struct Pass {
    index_s: f64,
    query_s: f64,
    mesh_query_s: f64,
}

/// Per-phase minimum across repetitions — the least-noise estimator
/// of a configuration's true cost.
fn min_pass(passes: &[Pass]) -> Pass {
    let min = |f: fn(&Pass) -> f64| passes.iter().map(f).fold(f64::INFINITY, f64::min);
    Pass {
        index_s: min(|p| p.index_s),
        query_s: min(|p| p.query_s),
        mesh_query_s: min(|p| p.mesh_query_s),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (resolution, take, query_rounds, mesh_rounds, reps) = if smoke {
        (12, 12, 5, 2, 1)
    } else {
        // 200 query rounds: the one-shot phase is microseconds per
        // query, and a longer phase keeps a single context switch
        // from dominating its overhead percentage.
        (RESOLUTION, usize::MAX, 200, 5, 5)
    };

    let corpus = standard_corpus();
    let shapes: Vec<(String, TriMesh)> = corpus
        .shapes
        .iter()
        .take(take)
        .map(|s| (s.name.clone(), s.mesh.clone()))
        .collect();
    let n = shapes.len();
    eprintln!(
        "[setup] {n} shapes at voxel resolution {resolution} (seed {CORPUS_SEED}), \
         {query_rounds} query rounds, {mesh_rounds}x{} mesh queries",
        n.min(MESH_QUERY_SUBSET)
    );

    // The passes alternate off/instrumented for `reps` repetitions
    // and the table reports the per-phase minimum of each side:
    // single multi-threaded passes are scheduler-noise dominated
    // (observed swings of ±10% between identical runs), and the
    // minimum is the least-noise estimator of each configuration's
    // true cost.
    //
    // Off baseline: with tracing disabled the stage timers
    // short-circuit before touching the clock, no request spans are
    // opened, and no recorder exists. Instrumented: debug-level
    // events and per-stage histograms live, formatted JSON discarded
    // into `io::sink()` so the terminal is not part of the
    // measurement, and every mesh query collects a span tree that is
    // offered to a flight recorder running the default tail-sampling
    // policy.
    let recorder = FlightRecorder::new(RecorderConfig {
        capacity: 128,
        slow: Duration::from_secs(1),
        sample_one_in: 16,
    });
    let mut offs = Vec::new();
    let mut ons = Vec::new();
    for rep in 0..reps {
        let run_off = |offs: &mut Vec<Pass>| {
            tdess_obs::set_level(Level::Off);
            offs.push(run_pass(
                &shapes,
                resolution,
                query_rounds,
                mesh_rounds,
                None,
            ));
        };
        let run_on = |ons: &mut Vec<Pass>| {
            tdess_obs::set_level(Level::Debug);
            tdess_obs::set_sink(Box::new(std::io::sink()));
            ons.push(run_pass(
                &shapes,
                resolution,
                query_rounds,
                mesh_rounds,
                Some(&recorder),
            ));
        };
        // Alternate which side goes first so monotone warmup (page
        // cache, allocator arenas) does not systematically favor the
        // second pass of every pair.
        if rep % 2 == 0 {
            run_off(&mut offs);
            run_on(&mut ons);
        } else {
            run_on(&mut ons);
            run_off(&mut offs);
        }
        tdess_obs::set_level(Level::Info);
        tdess_obs::sink_to_stderr();
        eprintln!("[rep {}/{reps}] done", rep + 1);
    }
    let off = min_pass(&offs);
    let on = min_pass(&ons);

    let overhead = |base: f64, inst: f64| -> f64 {
        if base > 0.0 {
            (inst - base) / base * 100.0
        } else {
            f64::NAN
        }
    };
    let total = |p: &Pass| p.index_s + p.query_s + p.mesh_query_s;
    let rows = [
        ("index (extract all)", off.index_s, on.index_s),
        ("one-shot queries", off.query_s, on.query_s),
        ("mesh queries (traced)", off.mesh_query_s, on.mesh_query_s),
        ("total", total(&off), total(&on)),
    ];
    let table = render_table(
        &["phase", "TDESS_LOG=off s", "instrumented s", "overhead"],
        &rows
            .iter()
            .map(|&(phase, base, inst)| {
                vec![
                    phase.to_string(),
                    format!("{base:.3}"),
                    format!("{inst:.3}"),
                    format!("{:+.2}%", overhead(base, inst)),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let title = format!(
        "OBS-tier overhead — {n} shapes, {query_rounds} query rounds, \
         {mesh_rounds}x{} traced mesh queries, min of {reps} rep(s){}",
        n.min(MESH_QUERY_SUBSET),
        if smoke { " [smoke]" } else { "" }
    );
    println!("\n{title}");
    println!("{table}");

    // Every instrumented stage must have recorded samples — the whole
    // point of the mesh-query phase is that `query_extract` and
    // `rerank` are hit too, so a zero count anywhere means the
    // comparison is vacuous for that stage.
    let stages = tdess_obs::stage_snapshots();
    for stage in Stage::ALL {
        let count = stages
            .iter()
            .find(|(s, _)| *s == stage)
            .map_or(0, |(_, snap)| snap.count());
        if count == 0 {
            eprintln!(
                "error: instrumented pass recorded no samples for stage {}",
                stage.name()
            );
            std::process::exit(1);
        }
    }

    // The flight recorder must have seen every traced mesh query.
    let rec = recorder.stats();
    let expected_traces = (reps * mesh_rounds * n.min(MESH_QUERY_SUBSET)) as u64;
    if rec.seen != expected_traces {
        eprintln!(
            "error: recorder saw {} traces, expected {expected_traces}",
            rec.seen
        );
        std::process::exit(1);
    }

    let json = serde_json::json!({
        "bench": "tab_obs_overhead",
        "smoke": smoke,
        "corpus_size": n,
        "voxel_resolution": resolution,
        "query_rounds": query_rounds,
        "reps": reps,
        "mesh_query_rounds": mesh_rounds,
        "mesh_query_subset": n.min(MESH_QUERY_SUBSET),
        "off": serde_json::json!({
            "index_s": off.index_s,
            "query_s": off.query_s,
            "mesh_query_s": off.mesh_query_s,
        }),
        "instrumented": serde_json::json!({
            "index_s": on.index_s,
            "query_s": on.query_s,
            "mesh_query_s": on.mesh_query_s,
        }),
        "overhead_pct": serde_json::json!({
            "index": overhead(off.index_s, on.index_s),
            "query": overhead(off.query_s, on.query_s),
            "mesh_query": overhead(off.mesh_query_s, on.mesh_query_s),
            "total": overhead(total(&off), total(&on)),
        }),
        "recorder": serde_json::json!({
            "seen": rec.seen,
            "kept_error": rec.kept_error,
            "kept_slow": rec.kept_slow,
            "kept_sampled": rec.kept_sampled,
            "skipped": rec.skipped,
        }),
        "stages_recorded": stages.iter().map(|(stage, snap)| serde_json::json!({
            "stage": stage.name(),
            "count": snap.count(),
            "p50_s": snap.quantile_seconds(0.5),
            "p90_s": snap.quantile_seconds(0.9),
            "p99_s": snap.quantile_seconds(0.99),
        })).collect::<Vec<_>>(),
    });
    let pretty = match serde_json::to_string_pretty(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: serializing results: {e}");
            std::process::exit(1);
        }
    };
    write_or_die("BENCH_obs_overhead.json", &pretty);
    if !smoke {
        let _ = std::fs::create_dir_all("results");
        write_or_die(
            "results/tab_obs_overhead.txt",
            &format!("{title}\n{table}\n"),
        );
    }
}

/// One full workload pass: index the corpus (feature extraction runs
/// every pipeline stage), query each shape's own features for
/// `rounds` rounds, then run `mesh_rounds` rounds of multi-step
/// query-by-example over a bounded mesh subset. With `recorder` set,
/// each mesh query runs under a request span whose completed trace is
/// offered to the flight recorder — the full serving-path cost.
fn run_pass(
    shapes: &[(String, TriMesh)],
    resolution: usize,
    rounds: usize,
    mesh_rounds: usize,
    recorder: Option<&FlightRecorder>,
) -> Pass {
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: resolution,
        ..Default::default()
    });
    let t0 = Instant::now();
    if let Err(e) = bulk_insert(&mut db, shapes.to_vec(), 8) {
        eprintln!("error: corpus indexing failed: {e}");
        std::process::exit(1);
    }
    let index_s = t0.elapsed().as_secs_f64();

    let queries: Vec<FeatureSet> = db.shapes().iter().map(|s| s.features.clone()).collect();
    let server = SearchServer::new(db);
    let query = Query::top_k(FeatureKind::PrincipalMoments, 10);
    let t0 = Instant::now();
    for _ in 0..rounds {
        for features in &queries {
            let hits = server.search_features(features, &query);
            if hits.is_empty() {
                eprintln!("error: search returned no hits");
                std::process::exit(1);
            }
        }
    }
    let query_s = t0.elapsed().as_secs_f64();

    // Query-by-example: full extraction plus a two-step plan, so the
    // `query_extract` and `rerank` stages record. The candidate set
    // stays small to keep the phase representative of the paper's
    // retrieve-then-refine flow rather than dominating the pass.
    let plan = MultiStepPlan {
        steps: vec![FeatureKind::PrincipalMoments, FeatureKind::MomentInvariants],
        candidates: 10,
        presented: 5,
    };
    let subset = &shapes[..shapes.len().min(MESH_QUERY_SUBSET)];
    let t0 = Instant::now();
    for round in 0..mesh_rounds {
        for (i, (_, mesh)) in subset.iter().enumerate() {
            let guard = recorder
                .map(|_| tdess_obs::begin_request(&format!("bench-{round}-{i}"), "MultiStepMesh"));
            let hits = match server.multi_step_mesh(mesh, &plan) {
                Ok(hits) => hits,
                Err(e) => {
                    eprintln!("error: mesh query failed: {e}");
                    std::process::exit(1);
                }
            };
            if let (Some(guard), Some(recorder)) = (guard, recorder) {
                if let Some(trace) = TraceGuard::finish(guard, false) {
                    recorder.offer(trace);
                }
            }
            if hits.is_empty() {
                eprintln!("error: mesh query returned no hits");
                std::process::exit(1);
            }
        }
    }
    let mesh_query_s = t0.elapsed().as_secs_f64();
    Pass {
        index_s,
        query_s,
        mesh_query_s,
    }
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: writing {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("[out] wrote {path}");
}
