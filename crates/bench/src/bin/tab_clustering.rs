//! **Clustering quality table** (§2.2): the paper implements k-means,
//! SOM, and GA clustering for query-by-browsing, and notes that "based
//! on different feature vector, the classification of shapes in the
//! database might be different." This table measures all three
//! algorithms in every feature space against the ground-truth
//! families (Rand index, silhouette, within-cluster SSE).

use std::time::Instant;

use tdess_bench::standard_context;
use tdess_cluster::{ga_cluster, kmeans, rand_index, silhouette, som_cluster, GaParams, SomParams};
use tdess_eval::render_table;
use tdess_features::FeatureKind;

fn main() {
    let ctx = standard_context();
    // Ground truth: group id, with a shared bucket for noise shapes.
    let truth: Vec<usize> = ctx
        .groups
        .iter()
        .map(|g| g.map_or(ctx.num_groups, |x| x))
        .collect();
    let k = ctx.num_groups + 1;

    println!("\nClustering quality over the 113-shape corpus (k = {k})\n");
    let mut rows = Vec::new();
    for kind in FeatureKind::ALL {
        let points: Vec<Vec<f64>> = ctx
            .db
            .shapes()
            .iter()
            .map(|s| s.features.get(kind).to_vec())
            .collect();

        let mut run = |algo: &str, assignments: Vec<usize>, sse: f64, secs: f64| {
            rows.push(vec![
                kind.label().to_string(),
                algo.to_string(),
                format!("{:.3}", rand_index(&assignments, &truth)),
                format!("{:.3}", silhouette(&points, &assignments)),
                format!("{:.2}", sse),
                format!("{:.2}", secs),
            ]);
        };

        let t = Instant::now();
        let km = kmeans(&points, k, 42);
        run("k-means", km.assignments, km.sse, t.elapsed().as_secs_f64());

        let t = Instant::now();
        let (_, som) = som_cluster(
            &points,
            &SomParams {
                width: 7,
                height: 4,
                ..Default::default()
            },
            42,
        );
        run(
            "SOM 7x4",
            som.assignments,
            som.sse,
            t.elapsed().as_secs_f64(),
        );

        let t = Instant::now();
        let ga = ga_cluster(&points, k, &GaParams::default(), 42);
        run("GA", ga.assignments, ga.sse, t.elapsed().as_secs_f64());
    }
    println!(
        "{}",
        render_table(
            &[
                "feature space",
                "algorithm",
                "Rand index",
                "silhouette",
                "SSE",
                "time (s)"
            ],
            &rows
        )
    );
    println!("reading: the browsing hierarchy is only as good as its feature space — the ordering");
    println!("mirrors the retrieval ordering (principal moments cluster the families best).");
}
