//! **Baseline comparison**: the paper's four feature vectors against
//! the two related-work descriptor families it cites as alternatives —
//! Osada's D2 shape distribution (reference 15) and Ankerst's shape histogram
//! (reference 14, shell model) — plus the higher-order moment extension.
//!
//! Reported on the Figure 15 protocol (average recall at `|R| = |A|`
//! and `|R| = 10` over the 26 representative queries) and on the
//! full-ranking metrics (nearest neighbor, first/second tier, mAP).

use tdess_bench::standard_context;
use tdess_eval::{average_effectiveness, extended_metrics, render_table, RetrievalSize, Strategy};
use tdess_features::FeatureKind;

fn main() {
    let ctx = standard_context();
    let strategies: Vec<Strategy> = FeatureKind::ALL
        .iter()
        .map(|&k| Strategy::OneShot(k))
        .chain(Strategy::paper_set().pop())
        .collect();

    println!("\nBaselines vs the paper's features — Figure 15 protocol\n");
    let a = average_effectiveness(&ctx, &strategies, RetrievalSize::GroupSize);
    let b = average_effectiveness(&ctx, &strategies, RetrievalSize::Fixed(10));
    let mut rows: Vec<Vec<String>> = a
        .iter()
        .zip(&b)
        .map(|(x, y)| {
            vec![
                x.strategy.clone(),
                format!("{:.3}", x.avg_recall),
                format!("{:.3}", y.avg_recall),
            ]
        })
        .collect();
    rows.sort_by(|p, q| q[1].cmp(&p[1]));
    println!(
        "{}",
        render_table(&["strategy", "recall |R|=|A|", "recall |R|=10"], &rows)
    );

    println!("\nFull-ranking metrics (26 representative queries)\n");
    let mut rows = Vec::new();
    for s in &strategies {
        let m = extended_metrics(&ctx, s);
        rows.push(vec![
            s.label(),
            format!("{:.3}", m.nearest_neighbor),
            format!("{:.3}", m.first_tier),
            format!("{:.3}", m.second_tier),
            format!("{:.3}", m.average_precision),
        ]);
    }
    rows.sort_by(|p, q| q[4].cmp(&p[4]));
    println!(
        "{}",
        render_table(&["strategy", "NN", "1st tier", "2nd tier", "mAP"], &rows)
    );
    println!("reading: the related-work descriptors are strong global-statistics baselines; the");
    println!("paper's contribution is the *system* (indexed multi-feature search + multi-step),");
    println!("and the multi-step strategy remains competitive with any single descriptor.");
}
