//! SERVER-tier throughput: batched concurrent queries against one
//! snapshot, 1 worker thread vs 8.
//!
//! The paper's architecture (Fig. 1) puts query processing in a
//! server tier that many clients hit concurrently; this bench
//! measures what the snapshot-isolated [`SearchServer`] delivers for
//! that workload. Every corpus mesh is replayed as a query — first
//! one-shot top-10 searches, then multi-step searches — through
//! `search_batch`/`multi_step_batch` at each thread count.
//!
//! Outputs:
//! * `BENCH_server_throughput.json` — machine-readable numbers
//!   (including `available_parallelism`, since the speedup ceiling is
//!   the host's core count);
//! * `results/tab_server_throughput.txt` — the rendered table.
//!
//! `--smoke` runs a small corpus subset at low voxel resolution for
//! CI: same code path, seconds instead of minutes.

use std::time::Instant;

use tdess_bench::{standard_corpus, CORPUS_SEED, RESOLUTION};
use tdess_core::{bulk_insert, MultiStepPlan, Query, SearchServer, ShapeDatabase};
use tdess_eval::render_table;
use tdess_features::{FeatureExtractor, FeatureKind};
use tdess_geom::TriMesh;

const THREAD_COUNTS: [usize; 2] = [1, 8];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (resolution, take) = if smoke {
        (12, 12)
    } else {
        (RESOLUTION, usize::MAX)
    };

    let corpus = standard_corpus();
    let shapes: Vec<(String, TriMesh)> = corpus
        .shapes
        .iter()
        .take(take)
        .map(|s| (s.name.clone(), s.mesh.clone()))
        .collect();
    let n = shapes.len();
    eprintln!(
        "[setup] indexing {n} shapes at voxel resolution {resolution} (seed {CORPUS_SEED})..."
    );
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: resolution,
        ..Default::default()
    });
    match bulk_insert(&mut db, shapes.clone(), 8) {
        Ok(_) => {}
        Err(e) => {
            eprintln!("error: corpus indexing failed: {e}");
            std::process::exit(1);
        }
    }
    let server = SearchServer::new(db);
    eprintln!("[setup] done.");

    let parallelism = std::thread::available_parallelism().map_or(0, |p| p.get());
    let query = Query::top_k(FeatureKind::PrincipalMoments, 10);
    let plan = MultiStepPlan {
        steps: vec![FeatureKind::PrincipalMoments, FeatureKind::Eigenvalues],
        candidates: 30,
        presented: 10,
    };

    // (workload, threads, secs, qps) per run.
    let mut runs: Vec<(&str, usize, f64, f64)> = Vec::new();
    for &threads in &THREAD_COUNTS {
        let t0 = Instant::now();
        let result = server.search_batch(shapes.clone(), &query, threads);
        let secs = t0.elapsed().as_secs_f64();
        match result {
            Ok(hits) => assert_eq!(hits.len(), n),
            Err(e) => {
                eprintln!("error: one-shot batch failed: {e}");
                std::process::exit(1);
            }
        }
        runs.push(("one-shot top-10", threads, secs, n as f64 / secs));
    }
    for &threads in &THREAD_COUNTS {
        let t0 = Instant::now();
        let result = server.multi_step_batch(shapes.clone(), &plan, threads);
        let secs = t0.elapsed().as_secs_f64();
        match result {
            Ok(hits) => assert_eq!(hits.len(), n),
            Err(e) => {
                eprintln!("error: multi-step batch failed: {e}");
                std::process::exit(1);
            }
        }
        runs.push(("multi-step pm,ev", threads, secs, n as f64 / secs));
    }

    let speedup = |workload: &str| -> f64 {
        let qps_at = |t: usize| {
            runs.iter()
                .find(|(w, th, _, _)| *w == workload && *th == t)
                .map_or(f64::NAN, |&(_, _, _, qps)| qps)
        };
        qps_at(THREAD_COUNTS[1]) / qps_at(THREAD_COUNTS[0])
    };

    let table = render_table(
        &["workload", "threads", "total s", "queries/s", "speedup"],
        &runs
            .iter()
            .map(|&(workload, threads, secs, qps)| {
                vec![
                    workload.to_string(),
                    threads.to_string(),
                    format!("{secs:.3}"),
                    format!("{qps:.1}"),
                    if threads == THREAD_COUNTS[0] {
                        "1.0x (baseline)".to_string()
                    } else {
                        format!("{:.2}x", speedup(workload))
                    },
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nServer throughput — {n} batched queries per run, host parallelism {parallelism}{}",
        if smoke { " [smoke]" } else { "" }
    );
    println!("{table}");

    let metrics = server.metrics();
    println!("server metrics after all runs:");
    println!("  queries served: {}", metrics.queries_served);
    println!("  index: {}", metrics.index_stats);

    let json = serde_json::json!({
        "bench": "tab_server_throughput",
        "smoke": smoke,
        "available_parallelism": parallelism,
        "corpus_size": n,
        "voxel_resolution": resolution,
        "runs": runs.iter().map(|&(workload, threads, secs, qps)| serde_json::json!({
            "workload": workload,
            "threads": threads,
            "total_s": secs,
            "queries_per_s": qps,
        })).collect::<Vec<_>>(),
        "speedup_8_vs_1": serde_json::json!({
            "one_shot": speedup("one-shot top-10"),
            "multi_step": speedup("multi-step pm,ev"),
        }),
        "metrics": serde_json::json!({
            "queries_served": metrics.queries_served,
            "snapshot_swaps": metrics.snapshot_swaps,
            "one_shot_mean_s": metrics.one_shot.map_or(0.0, |l| l.mean_s),
            "multi_step_mean_s": metrics.multi_step.map_or(0.0, |l| l.mean_s),
            "entries_checked": metrics.index_stats.entries_checked,
            "node_accesses": metrics.index_stats.node_accesses(),
        }),
    });
    let pretty = match serde_json::to_string_pretty(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: serializing results: {e}");
            std::process::exit(1);
        }
    };
    write_or_die("BENCH_server_throughput.json", &pretty);
    if !smoke {
        let _ = std::fs::create_dir_all("results");
        write_or_die(
            "results/tab_server_throughput.txt",
            &format!(
                "Server throughput — {n} batched queries per run, host parallelism {parallelism}\n{table}\n"
            ),
        );
    }
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: writing {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("[out] wrote {path}");
}
