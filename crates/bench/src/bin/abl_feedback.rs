//! **Ablation: relevance feedback effectiveness.**
//!
//! The paper implements relevance feedback (query reconstruction +
//! weight reconfiguration, §2.2) but keeps it *off* during all
//! experiments. This ablation measures what one feedback round would
//! have bought: for each representative query, the user marks the
//! relevant/irrelevant shapes among the first 10 results, the system
//! reconstructs the query (Rocchio) and reconfigures weights, and we
//! compare recall@10 before and after.

use tdess_bench::standard_context;
use tdess_core::{
    reconfigure_weights, reconstruct_query, Feedback, Query, QueryMode, RocchioParams,
};
use tdess_eval::{precision_recall, render_table};
use tdess_features::FeatureKind;

fn main() {
    let ctx = standard_context();
    let params = RocchioParams::default();

    println!("\nAblation — one round of relevance feedback (marking the top 10), recall@10\n");
    let mut rows = Vec::new();
    for kind in FeatureKind::PAPER_FOUR {
        let mut before_sum = 0.0;
        let mut after_sum = 0.0;
        let reps = ctx.group_representatives();
        for &qi in &reps {
            let query_id = ctx.ids[qi];
            let relevant = ctx.relevant_set(qi);
            let features = ctx.db.get(query_id).expect("query exists").features.clone();

            // Round 1: plain query; the user marks the presented 10.
            let first: Vec<_> = ctx
                .db
                .search(&features, &Query::top_k(kind, 11))
                .into_iter()
                .map(|h| h.id)
                .filter(|&id| id != query_id)
                .take(10)
                .collect();
            before_sum += precision_recall(&first, &relevant).recall;

            let feedback = Feedback {
                relevant: first
                    .iter()
                    .copied()
                    .filter(|id| relevant.contains(id))
                    .collect(),
                irrelevant: first
                    .iter()
                    .copied()
                    .filter(|id| !relevant.contains(id))
                    .collect(),
            };

            // Round 2: reconstructed query + reconfigured weights.
            let q0 = features.get(kind).to_vec();
            let q1 = reconstruct_query(&ctx.db, kind, &q0, &feedback, &params);
            let weights = reconfigure_weights(&ctx.db, kind, &feedback);
            let mut adjusted = features.clone();
            match kind {
                FeatureKind::MomentInvariants => adjusted.moment_invariants = q1,
                FeatureKind::GeometricParams => adjusted.geometric = q1,
                FeatureKind::PrincipalMoments => adjusted.principal_moments = q1,
                FeatureKind::Eigenvalues => adjusted.eigenvalues = q1,
                _ => unreachable!("PAPER_FOUR only"),
            }
            let second: Vec<_> = ctx
                .db
                .search(
                    &adjusted,
                    &Query {
                        kind,
                        weights: weights.clone(),
                        mode: QueryMode::TopK(11),
                    },
                )
                .into_iter()
                .map(|h| h.id)
                .filter(|&id| id != query_id)
                .take(10)
                .collect();
            after_sum += precision_recall(&second, &relevant).recall;
        }
        let n = reps.len() as f64;
        rows.push(vec![
            kind.label().to_string(),
            format!("{:.3}", before_sum / n),
            format!("{:.3}", after_sum / n),
            format!("{:+.0}%", (after_sum / before_sum.max(1e-12) - 1.0) * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "feature vector",
                "recall@10 before",
                "recall@10 after",
                "change"
            ],
            &rows
        )
    );
    println!("paper: relevance feedback implemented but switched off for all experiments (§2.2).");
    println!("reading: one blind round helps the features whose dimensions are commensurate");
    println!("(geometric parameters, principal moments — exactly the case §3.5.3 calls 'more");
    println!("meaningful and simpler' for feedback) and *hurts* moment invariants, whose F1/F2/F3");
    println!("spans differ by orders of magnitude: when a query finds no relevant shapes in its");
    println!("top 10, pure-negative Rocchio pushes it off the data manifold. Feedback needs the");
    println!("user in the loop — a good reason the paper benchmarked without it.");
}
