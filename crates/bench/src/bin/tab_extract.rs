//! Per-stage extraction latency: cold (fresh buffers every call) vs
//! warm (one reused `ExtractScratch`-style buffer set).
//!
//! Times voxelization, skeletonization, and the end-to-end feature
//! extraction per shape over the standard corpus and reports
//! p50/p90/p99 for both buffer regimes, verifying along the way that
//! the warm path reproduces the cold path bit for bit. When the
//! committed `BENCH_obs_overhead.json` is present (it recorded the
//! pre-scratch-buffer stage latencies over the same corpus and
//! resolution), the improvement of the current warm path against those
//! seeded numbers is reported too.
//!
//! Outputs:
//! * `BENCH_extract.json` — machine-readable numbers;
//! * `results/tab_extract.txt` — the rendered table.
//!
//! `--smoke` runs a small corpus subset at low voxel resolution for
//! CI: same code path, seconds instead of minutes.

use std::time::Instant;

use tdess_bench::{standard_corpus, CORPUS_SEED, RESOLUTION};
use tdess_core::{bulk_insert, ShapeDatabase};
use tdess_eval::render_table;
use tdess_features::{normalize, ExtractScratch, FeatureExtractor};
use tdess_geom::{TriMesh, Vec3};
use tdess_obs::Level;
use tdess_skeleton::{skeletonize, skeletonize_into, ThinScratch, ThinningParams};
use tdess_voxel::{voxelize, voxelize_into, FloodScratch, VoxelGrid, VoxelizeParams};

/// Latency samples (seconds, one per shape) for one stage.
#[derive(Default)]
struct Samples(Vec<f64>);

impl Samples {
    fn push(&mut self, s: f64) {
        self.0.push(s);
    }

    /// The q-quantile by nearest-rank over the sorted samples.
    fn quantile(&self, q: f64) -> f64 {
        if self.0.is_empty() {
            return 0.0;
        }
        let mut sorted = self.0.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }
}

/// p50/p90/p99 triple for the report.
fn quantiles(s: &Samples) -> (f64, f64, f64) {
    (s.quantile(0.5), s.quantile(0.9), s.quantile(0.99))
}

fn pct_faster(cold: f64, warm: f64) -> f64 {
    if cold > 0.0 {
        (cold - warm) / cold * 100.0
    } else {
        f64::NAN
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (resolution, take) = if smoke {
        (12, 12)
    } else {
        (RESOLUTION, usize::MAX)
    };

    let corpus = standard_corpus();
    let meshes: Vec<(String, TriMesh)> = corpus
        .shapes
        .iter()
        .take(take)
        .map(|s| (s.name.clone(), s.mesh.clone()))
        .collect();
    let n = meshes.len();
    eprintln!("[setup] {n} shapes at voxel resolution {resolution} (seed {CORPUS_SEED})");

    // Stage timers and events off: we time the stages ourselves and
    // want pure compute, not instrumentation.
    tdess_obs::set_level(Level::Off);

    let params = VoxelizeParams {
        resolution,
        ..Default::default()
    };
    let thin = ThinningParams::default();
    let extractor = FeatureExtractor {
        voxel_resolution: resolution,
        ..Default::default()
    };

    let normalized: Vec<TriMesh> = meshes
        .iter()
        .map(|(name, mesh)| match normalize(mesh) {
            Ok(nm) => nm.mesh,
            Err(e) => {
                eprintln!("error: normalize {name}: {e}");
                std::process::exit(1);
            }
        })
        .collect();

    // Cold: every call pays the grid and scratch allocations.
    let mut cold_vox = Samples::default();
    let mut cold_skel = Samples::default();
    let mut cold_extract = Samples::default();
    let mut cold_words: Vec<(Vec<u64>, Vec<u64>)> = Vec::with_capacity(n);
    for mesh in &normalized {
        let t0 = Instant::now();
        let grid = voxelize(mesh, &params);
        cold_vox.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let skel = skeletonize(&grid, &thin);
        cold_skel.push(t0.elapsed().as_secs_f64());
        cold_words.push((grid.words().to_vec(), skel.words().to_vec()));
    }
    for (_, mesh) in &meshes {
        let t0 = Instant::now();
        let mut scratch = ExtractScratch::default();
        if let Err(e) = extractor.extract_with_scratch(mesh, &mut scratch) {
            eprintln!("error: cold extract: {e}");
            std::process::exit(1);
        }
        cold_extract.push(t0.elapsed().as_secs_f64());
    }

    // Warm: one buffer set survives the whole corpus.
    let mut warm_vox = Samples::default();
    let mut warm_skel = Samples::default();
    let mut warm_extract = Samples::default();
    let mut grid = VoxelGrid::new(1, 1, 1, Vec3::ZERO, 1.0);
    let mut skel = VoxelGrid::new(1, 1, 1, Vec3::ZERO, 1.0);
    let mut flood = FloodScratch::default();
    let mut thin_scratch = ThinScratch::default();
    for (si, mesh) in normalized.iter().enumerate() {
        let t0 = Instant::now();
        voxelize_into(mesh, &params, &mut grid, &mut flood);
        warm_vox.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        skeletonize_into(&grid, &thin, &mut skel, &mut thin_scratch);
        warm_skel.push(t0.elapsed().as_secs_f64());
        // The whole comparison is void unless warm output is
        // bit-identical to cold.
        if grid.words() != cold_words[si].0 || skel.words() != cold_words[si].1 {
            eprintln!("error: warm path diverged from cold on shape {si}");
            std::process::exit(1);
        }
    }
    let mut scratch = ExtractScratch::default();
    for (_, mesh) in &meshes {
        let t0 = Instant::now();
        if let Err(e) = extractor.extract_with_scratch(mesh, &mut scratch) {
            eprintln!("error: warm extract: {e}");
            std::process::exit(1);
        }
        warm_extract.push(t0.elapsed().as_secs_f64());
    }

    // Contention-matched comparison against the seeded stage
    // histograms: the committed `BENCH_obs_overhead.json` recorded
    // per-stage p50 during an 8-way bulk insert of this corpus, so the
    // same workload is replayed here — comparing those numbers to the
    // single-threaded samples above would mistake scheduler contention
    // for speedup.
    let baseline = if smoke {
        None
    } else {
        seed_stage_p50s("BENCH_obs_overhead.json")
    };
    let replay = baseline.and_then(|_| {
        tdess_obs::set_level(Level::Debug);
        tdess_obs::set_sink(Box::new(std::io::sink()));
        let mut db = ShapeDatabase::new(extractor);
        if let Err(e) = bulk_insert(&mut db, meshes.clone(), 8) {
            eprintln!("error: replay indexing failed: {e}");
            std::process::exit(1);
        }
        tdess_obs::set_level(Level::Off);
        let stages = tdess_obs::stage_snapshots();
        let p50 = |name: &str| {
            stages
                .iter()
                .find(|(stage, _)| stage.name() == name)
                .map(|(_, snap)| snap.quantile_seconds(0.5))
        };
        p50("voxelize").zip(p50("skeletonize"))
    });

    tdess_obs::set_level(Level::Info);
    tdess_obs::sink_to_stderr();

    let stages = [
        ("voxelize", &cold_vox, &warm_vox),
        ("skeletonize", &cold_skel, &warm_skel),
        ("extract (end to end)", &cold_extract, &warm_extract),
    ];
    let rows: Vec<Vec<String>> = stages
        .iter()
        .map(|(name, cold, warm)| {
            let (c50, c90, c99) = quantiles(cold);
            let (w50, w90, w99) = quantiles(warm);
            vec![
                name.to_string(),
                format!("{:.2} / {:.2} / {:.2}", c50 * 1e3, c90 * 1e3, c99 * 1e3),
                format!("{:.2} / {:.2} / {:.2}", w50 * 1e3, w90 * 1e3, w99 * 1e3),
                format!("{:+.1}%", pct_faster(c50, w50)),
            ]
        })
        .collect();
    let table = render_table(
        &[
            "stage",
            "cold p50/p90/p99 ms",
            "warm p50/p90/p99 ms",
            "warm p50 gain",
        ],
        &rows,
    );
    let title = format!(
        "Extraction latency, cold vs warm scratch — {n} shapes at resolution {resolution}{}",
        if smoke { " [smoke]" } else { "" }
    );
    println!("\n{title}");
    println!("{table}");

    if let (Some((seed_vox, seed_skel)), Some((now_vox, now_skel))) = (baseline, replay) {
        println!(
            "vs seeded BENCH_obs_overhead.json (same 8-way indexing workload): \
             voxelize p50 {:.2} ms -> {:.2} ms ({:+.1}%), \
             skeletonize p50 {:.2} ms -> {:.2} ms ({:+.1}%)",
            seed_vox * 1e3,
            now_vox * 1e3,
            pct_faster(seed_vox, now_vox),
            seed_skel * 1e3,
            now_skel * 1e3,
            pct_faster(seed_skel, now_skel),
        );
    }

    // The vendored json! macro takes no nested object literals: build
    // the sub-objects bottom-up.
    let stage_json = |cold: &Samples, warm: &Samples| {
        let (c50, c90, c99) = quantiles(cold);
        let (w50, w90, w99) = quantiles(warm);
        let cold = serde_json::json!({"p50_s": c50, "p90_s": c90, "p99_s": c99});
        let warm = serde_json::json!({"p50_s": w50, "p90_s": w90, "p99_s": w99});
        serde_json::json!({
            "cold": cold,
            "warm": warm,
            "warm_vs_cold_p50_pct": pct_faster(c50, w50),
        })
    };
    let stages_json = serde_json::json!({
        "voxelize": stage_json(&cold_vox, &warm_vox),
        "skeletonize": stage_json(&cold_skel, &warm_skel),
        "extract": stage_json(&cold_extract, &warm_extract),
    });
    let vs_seed = match (baseline, replay) {
        (Some((seed_vox, seed_skel)), Some((now_vox, now_skel))) => serde_json::json!({
            "source": "BENCH_obs_overhead.json stage histograms, replayed under the same 8-way indexing workload",
            "voxelize_seed_p50_s": seed_vox,
            "voxelize_now_p50_s": now_vox,
            "voxelize_improvement_pct": pct_faster(seed_vox, now_vox),
            "skeletonize_seed_p50_s": seed_skel,
            "skeletonize_now_p50_s": now_skel,
            "skeletonize_improvement_pct": pct_faster(seed_skel, now_skel),
        }),
        _ => serde_json::json!(null),
    };
    let json = serde_json::json!({
        "bench": "tab_extract",
        "smoke": smoke,
        "corpus_size": n,
        "voxel_resolution": resolution,
        "stages": stages_json,
        "vs_seed": vs_seed,
    });
    let pretty = match serde_json::to_string_pretty(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: serializing results: {e}");
            std::process::exit(1);
        }
    };
    write_or_die("BENCH_extract.json", &pretty);
    if !smoke {
        let _ = std::fs::create_dir_all("results");
        write_or_die("results/tab_extract.txt", &format!("{title}\n{table}\n"));
    }
}

/// The (voxelize, skeletonize) p50 seconds recorded in a previous
/// `tab_obs_overhead` run, when its JSON sits in the working
/// directory.
fn seed_stage_p50s(path: &str) -> Option<(f64, f64)> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc: serde_json::Value = serde_json::from_str(&text).ok()?;
    let stages = doc.get("stages_recorded")?.as_arr()?;
    let p50 = |name: &str| -> Option<f64> {
        let stage = stages
            .iter()
            .find(|s| matches!(s.get("stage"), Some(serde_json::Value::Str(n)) if n == name))?;
        match stage.get("p50_s")? {
            serde_json::Value::Float(f) => Some(*f),
            serde_json::Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    };
    Some((p50("voxelize")?, p50("skeletonize")?))
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: writing {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("[out] wrote {path}");
}
