//! **Ablation: multi-step search design.**
//!
//! Two sweeps behind Figure 15's multi-step result:
//!
//! 1. candidate-set size `K` for the winning plan (PM → EV) — too few
//!    candidates cap recall, too many dilute the re-ranking;
//! 2. plan composition — every ordered feature pair as
//!    retrieve-then-re-rank, showing why PM → EV is the configuration
//!    the evaluation uses.

use tdess_bench::standard_context;
use tdess_core::MultiStepPlan;
use tdess_eval::{average_effectiveness, render_table, RetrievalSize, Strategy};
use tdess_features::FeatureKind;

fn main() {
    let ctx = standard_context();

    // --- Sweep 1: candidate count.
    println!("\nAblation 1 — candidate-set size K (plan PM -> EV, |R| = |A| and |R| = 10)\n");
    let mut rows = Vec::new();
    for k in [10usize, 15, 20, 30, 50, 80, 113] {
        let plan = Strategy::MultiStep(MultiStepPlan {
            steps: vec![FeatureKind::PrincipalMoments, FeatureKind::Eigenvalues],
            candidates: k,
            presented: 10,
        });
        let a = average_effectiveness(&ctx, std::slice::from_ref(&plan), RetrievalSize::GroupSize);
        let b = average_effectiveness(&ctx, &[plan], RetrievalSize::Fixed(10));
        rows.push(vec![
            k.to_string(),
            format!("{:.3}", a[0].avg_recall),
            format!("{:.3}", b[0].avg_recall),
        ]);
    }
    println!(
        "{}",
        render_table(&["K", "avg recall |R|=|A|", "avg recall |R|=10"], &rows)
    );

    // --- Sweep 2: plan composition (all ordered pairs).
    println!("\nAblation 2 — retrieve-by A, re-rank-by B (K = 30, |R| = |A|)\n");
    let kinds = FeatureKind::PAPER_FOUR;
    let mut rows = Vec::new();
    // Baseline: one-shot per feature.
    let one_shot: Vec<Strategy> = kinds.iter().map(|&k| Strategy::OneShot(k)).collect();
    let base = average_effectiveness(&ctx, &one_shot, RetrievalSize::GroupSize);
    for (i, r) in base.iter().enumerate() {
        rows.push(vec![
            kinds[i].label().to_string(),
            "(one-shot)".to_string(),
            format!("{:.3}", r.avg_recall),
        ]);
    }
    for &a in &kinds {
        for &b in &kinds {
            if a == b {
                continue;
            }
            let plan = Strategy::MultiStep(MultiStepPlan {
                steps: vec![a, b],
                candidates: 30,
                presented: 10,
            });
            let eff = average_effectiveness(&ctx, &[plan], RetrievalSize::GroupSize);
            rows.push(vec![
                a.label().to_string(),
                b.label().to_string(),
                format!("{:.3}", eff[0].avg_recall),
            ]);
        }
    }
    rows.sort_by(|x, y| y[2].cmp(&x[2]));
    println!(
        "{}",
        render_table(&["retrieve by", "re-rank by", "avg recall"], &rows)
    );
    println!(
        "reading: the strongest retriever (PM) + a complementary re-ranker (EV, topology) wins;"
    );
    println!("re-ranking by a feature weaker than the retriever *and* correlated with it hurts.");
}
