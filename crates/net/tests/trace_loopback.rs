//! End-to-end request tracing over a loopback connection: a slow
//! request's span tree must be retained by the server's flight
//! recorder, retrievable over the `Traces` wire request, exportable as
//! Chrome trace-event JSON that passes a shape check, and served over
//! the HTTP `/traces` and `/healthz` routes.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use tdess_core::{CacheConfig, Query, SearchServer, ShapeDatabase};
use tdess_features::{FeatureExtractor, FeatureKind};
use tdess_geom::{primitives, Vec3};
use tdess_net::{MetricsRoute, MetricsServer, NetClient, NetServer, NetServerConfig};
use tdess_obs::RequestTrace;

fn cached_search_server() -> SearchServer {
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: 12,
        ..Default::default()
    });
    db.insert("box", primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)))
        .unwrap();
    db.insert("sphere", primitives::uv_sphere(1.0, 10, 5))
        .unwrap();
    SearchServer::with_cache(db, CacheConfig::default())
}

/// A zero slow-threshold makes every request "slow", so the tail
/// sampler must retain them all regardless of the sampling rate.
fn traced_config() -> NetServerConfig {
    NetServerConfig {
        workers: 1,
        slow_request: Duration::ZERO,
        trace_capacity: 16,
        // Would drop most traces if the slow rule did not fire first.
        trace_sample_one_in: 1000,
        ..NetServerConfig::default()
    }
}

/// The acceptance path: drive a search over the wire, pull the trace
/// back with the `Traces` request, and verify the span tree — request
/// root, nested stage spans, cache annotations — plus the tail
/// sampler's retention label.
#[test]
fn slow_request_trace_is_retrievable_with_well_formed_span_tree() {
    let mut server =
        NetServer::bind("127.0.0.1:0", cached_search_server(), traced_config()).unwrap();
    let mut client = NetClient::connect_default(server.local_addr()).unwrap();

    let query = Query::top_k(FeatureKind::PrincipalMoments, 1);
    let mesh = primitives::box_mesh(Vec3::ONE);
    client.search_mesh(&mesh, &query).unwrap(); // cache miss
    client.search_mesh(&mesh, &query).unwrap(); // cache hit
    let second_id = client.last_trace_id().unwrap().to_string();

    let report = client.traces(0, true).unwrap();
    assert_eq!(report.slow_threshold_us, 0);
    // The Traces request itself may already be in the ring; search
    // traces are the ones under test.
    let searches: Vec<&Arc<RequestTrace>> = report
        .traces
        .iter()
        .filter(|t| t.name == "SearchMesh")
        .collect();
    assert_eq!(searches.len(), 2, "both searches retained: {report:?}");

    for trace in &searches {
        assert_eq!(trace.retained, "slow");
        assert!(!trace.error);
        // Root span: id 1, parent 0, named after the request kind.
        assert_eq!(trace.spans[0].id, 1);
        assert_eq!(trace.spans[0].parent, 0);
        assert_eq!(trace.spans[0].name, "SearchMesh");
        // Ids are positional and every parent precedes its children.
        for (i, s) in trace.spans.iter().enumerate() {
            assert_eq!(s.id as usize, i + 1);
            assert!(s.parent < s.id, "span {} has forward parent", s.id);
        }
    }

    // The client's trace id addresses the second (warm) search.
    let warm = searches
        .iter()
        .find(|t| t.trace_id == second_id)
        .expect("warm search trace carries the client's trace id");
    let cold = searches.iter().find(|t| t.trace_id != second_id).unwrap();

    let extract = |t: &RequestTrace| {
        t.spans
            .iter()
            .find(|s| s.name == "query_extract")
            .expect("query_extract span")
            .clone()
    };
    let cache_tag = |t: &RequestTrace| {
        extract(t)
            .tags
            .iter()
            .find(|(k, _)| k == "cache")
            .map(|(_, v)| v.clone())
    };
    assert_eq!(cache_tag(cold).as_deref(), Some("miss"));
    assert_eq!(cache_tag(warm).as_deref(), Some("hit"));
    // The cold extraction nests the pipeline stages under
    // query_extract.
    let cold_extract = extract(cold);
    for stage in [
        "normalize",
        "voxelize",
        "skeletonize",
        "graph_build",
        "eigen",
    ] {
        assert!(
            cold.spans
                .iter()
                .any(|s| s.name == stage && s.parent == cold_extract.id),
            "missing {stage} under query_extract in {cold:?}"
        );
    }
    // Stage spans stay inside their parent's time window.
    for s in &cold.spans {
        if s.parent == cold_extract.id {
            assert!(s.start_us >= cold_extract.start_us);
            assert!(s.start_us + s.dur_us <= cold_extract.start_us + cold_extract.dur_us + 1);
        }
    }

    // `last` caps the reply.
    let limited = client.traces(1, false).unwrap();
    assert_eq!(limited.traces.len(), 1);

    server.shutdown();

    // The exported Chrome trace-event JSON round-trips through a
    // schema check: a metadata event per trace plus one complete
    // ("ph":"X") event per span, with the cache annotation in args.
    let chrome = tdess_obs::chrome_trace_json(&report.traces);
    let v: serde::Value = serde_json::from_str(&chrome).expect("chrome export parses");
    let obj = v.as_obj().expect("top-level object");
    let unit = obj.iter().find(|(k, _)| k == "displayTimeUnit").unwrap();
    assert_eq!(unit.1, serde::Value::Str("ms".into()));
    let events = v.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
    let span_count: usize = report.traces.iter().map(|t| t.spans.len()).sum();
    assert_eq!(events.len(), report.traces.len() + span_count);
    let mut saw_cache_annotation = false;
    for ev in events {
        let ph = ev.get("ph").expect("event phase");
        match ph {
            serde::Value::Str(s) if s == "M" => {
                assert_eq!(
                    ev.get("name"),
                    Some(&serde::Value::Str("thread_name".into()))
                );
            }
            serde::Value::Str(s) if s == "X" => {
                for key in ["pid", "tid", "name", "ts", "dur", "args"] {
                    assert!(ev.get(key).is_some(), "X event missing {key}");
                }
                let args = ev.get("args").unwrap();
                if args
                    .get("cache")
                    .is_some_and(|c| matches!(c, serde::Value::Str(_)))
                {
                    saw_cache_annotation = true;
                }
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(
        saw_cache_annotation,
        "no cache annotation exported:\n{chrome}"
    );
}

/// The HTTP side of the tentpole plus the `/healthz` satellite: the
/// route table serves Prometheus text, liveness, and Chrome-trace JSON
/// from the same recorder the wire request reads.
#[test]
fn traces_and_healthz_routes_serve_alongside_metrics() {
    let search = cached_search_server();
    let mut server = NetServer::bind("127.0.0.1:0", search.clone(), traced_config()).unwrap();
    let recorder = server.recorder();
    let metrics = MetricsServer::bind_routes(
        "127.0.0.1:0",
        vec![
            MetricsRoute::metrics(server.metrics_renderer()),
            MetricsRoute::healthz(Arc::new(move || search.metrics().snapshot_swaps)),
            MetricsRoute::traces(Arc::new(move || {
                tdess_obs::chrome_trace_json(&recorder.snapshot(0, false))
            })),
        ],
    )
    .unwrap();

    let mut client = NetClient::connect_default(server.local_addr()).unwrap();
    let query = Query::top_k(FeatureKind::PrincipalMoments, 1);
    client
        .search_mesh(&primitives::box_mesh(Vec3::ONE), &query)
        .unwrap();

    let health = scrape(&metrics, "/healthz");
    assert!(health.starts_with("HTTP/1.0 200 OK"), "{health}");
    assert!(health.contains("text/plain"), "{health}");
    assert!(health.contains("ok\nuptime_seconds "), "{health}");
    assert!(health.contains("snapshot_generation "), "{health}");

    let traces = scrape(&metrics, "/traces");
    assert!(traces.starts_with("HTTP/1.0 200 OK"), "{traces}");
    assert!(traces.contains("application/json"), "{traces}");
    let body = traces.split("\r\n\r\n").nth(1).unwrap();
    let v: serde::Value = serde_json::from_str(body).expect("/traces body is JSON");
    let events = v.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
    assert!(!events.is_empty(), "expected retained traces in {body}");

    // The classic route still works, and unknown paths 404 with a
    // hint listing every route.
    let prom = scrape(&metrics, "/metrics");
    assert!(prom.contains("tdess_requests_served_total"), "{prom}");
    let missing = scrape(&metrics, "/nope");
    assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
    assert!(missing.contains("/metrics /healthz /traces"), "{missing}");

    server.shutdown();
}

/// Issues one raw HTTP/1.0 request and returns the full response text.
fn scrape(metrics: &MetricsServer, path: &str) -> String {
    let mut stream = TcpStream::connect(metrics.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").unwrap();
    let mut body = String::new();
    stream.read_to_string(&mut body).unwrap();
    body
}
