//! End-to-end observability tests over a loopback connection: client
//! trace ids must surface in the server's structured events (including
//! slow-query warnings), and the `/metrics` endpoint must expose the
//! expected Prometheus families.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use tdess_core::{CacheConfig, Query, SearchServer, ShapeDatabase};
use tdess_features::{FeatureExtractor, FeatureKind};
use tdess_geom::{primitives, Vec3};
use tdess_net::{MetricsServer, NetClient, NetServer, NetServerConfig};
use tdess_obs::{Capture, Level};

fn search_server() -> SearchServer {
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: 12,
        ..Default::default()
    });
    db.insert("box", primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)))
        .unwrap();
    db.insert("sphere", primitives::uv_sphere(1.0, 10, 5))
        .unwrap();
    SearchServer::new(db)
}

/// The client's trace id must appear on the server's per-request debug
/// event and on the slow-query warning (forced here by a zero
/// threshold), and must NOT leak onto events outside the dispatch.
#[test]
fn client_trace_id_round_trips_into_server_events() {
    let capture = Capture::install();
    tdess_obs::set_level(Level::Debug);

    let cfg = NetServerConfig {
        workers: 1,
        slow_request: Duration::ZERO,
        ..NetServerConfig::default()
    };
    let mut server = NetServer::bind("127.0.0.1:0", search_server(), cfg).unwrap();
    let mut client = NetClient::connect_default(server.local_addr()).unwrap();

    let query = Query::top_k(FeatureKind::PrincipalMoments, 1);
    let mesh = primitives::box_mesh(Vec3::ONE);
    let hits = client.search_mesh(&mesh, &query).unwrap();
    assert_eq!(hits.hits.len(), 1);
    let trace_id = client
        .last_trace_id()
        .expect("client records the sent trace id")
        .to_string();

    server.shutdown();
    tdess_obs::set_level(Level::Info);
    tdess_obs::sink_to_stderr();

    let log = capture.contents();
    let tagged: Vec<&str> = log.lines().filter(|l| l.contains(&trace_id)).collect();
    assert!(
        !tagged.is_empty(),
        "no server event carried trace id {trace_id}:\n{log}"
    );
    // The request-served debug event and the forced slow-query warning
    // both run inside the traced dispatch.
    assert!(
        tagged
            .iter()
            .any(|l| l.contains("request SearchMesh served")),
        "missing traced request event:\n{log}"
    );
    assert!(
        tagged
            .iter()
            .any(|l| l.contains("slow request") && l.contains("\"level\":\"warn\"")),
        "missing traced slow-query warning:\n{log}"
    );
    // Every tagged line is valid JSON carrying the id in the
    // `trace_id` field, not incidentally in the message text.
    for line in &tagged {
        let v = serde_json::from_str::<serde::Value>(line).expect("event line parses as JSON");
        let id = v.get("trace_id").and_then(|x| match x {
            serde::Value::Str(s) => Some(s.as_str()),
            _ => None,
        });
        assert_eq!(id, Some(trace_id.as_str()), "bad line: {line}");
    }
    // Lifecycle events outside a dispatch are untraced.
    let lifecycle: Vec<&str> = log
        .lines()
        .filter(|l| l.contains("connection from") && l.contains("established"))
        .collect();
    assert!(!lifecycle.is_empty(), "missing connection event:\n{log}");
    assert!(lifecycle.iter().all(|l| !l.contains(&trace_id)));
}

/// A raw HTTP scrape of the metrics endpoint after live traffic must
/// contain counter, gauge, summary (p50/p90/p99), and stage-histogram
/// families.
#[test]
fn metrics_endpoint_serves_prometheus_text() {
    let mut server =
        NetServer::bind("127.0.0.1:0", search_server(), NetServerConfig::default()).unwrap();
    let mut metrics = MetricsServer::bind("127.0.0.1:0", server.metrics_renderer()).unwrap();

    // Drive real traffic so latency summaries and stage histograms
    // are non-empty.
    let mut client = NetClient::connect_default(server.local_addr()).unwrap();
    let query = Query::top_k(FeatureKind::PrincipalMoments, 1);
    let mesh = primitives::box_mesh(Vec3::ONE);
    for _ in 0..3 {
        client.search_mesh(&mesh, &query).unwrap();
    }

    let body = scrape(&metrics, "/metrics");
    assert!(body.starts_with("HTTP/1.0 200 OK"), "bad response: {body}");
    assert!(body.contains("text/plain; version=0.0.4"));
    for family in [
        "# TYPE tdess_queries_served_total counter",
        "# TYPE tdess_requests_served_total counter",
        "# TYPE tdess_connections_accepted_total counter",
        "# TYPE tdess_shapes gauge",
        "# TYPE tdess_queue_depth gauge",
        "# TYPE tdess_one_shot_latency_seconds summary",
        "# TYPE tdess_transport_latency_seconds summary",
        "# TYPE tdess_stage_duration_seconds histogram",
    ] {
        assert!(body.contains(family), "missing {family:?} in:\n{body}");
    }
    for quantile in ["quantile=\"0.5\"", "quantile=\"0.9\"", "quantile=\"0.99\""] {
        assert!(
            body.contains(&format!("tdess_one_shot_latency_seconds{{{quantile}}}")),
            "missing one-shot {quantile} in:\n{body}"
        );
    }
    // Per-stage series from the server-side extraction of the query
    // mesh, with a terminating +Inf bucket.
    assert!(body.contains("tdess_stage_duration_seconds_bucket{stage=\"query_extract\""));
    assert!(body.contains("le=\"+Inf\""));
    // No queries ran multi-step, so that summary is absent rather
    // than a fake zero.
    assert!(body.contains("tdess_queries_served_total 3"));

    // Anything but GET /metrics is a 404.
    let other = scrape(&metrics, "/else");
    assert!(other.starts_with("HTTP/1.0 404"), "bad response: {other}");

    metrics.shutdown();
    server.shutdown();
}

/// A server running with the extraction cache must answer repeat
/// queries identically to an uncached one, report the cache counters
/// over the stats verb, and expose `tdess_cache_*` families on
/// `/metrics` — while an uncached server omits both.
#[test]
fn cache_counters_surface_on_stats_and_metrics() {
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: 12,
        ..Default::default()
    });
    db.insert("box", primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)))
        .unwrap();
    db.insert("sphere", primitives::uv_sphere(1.0, 10, 5))
        .unwrap();
    let cached = SearchServer::with_cache(db.clone(), CacheConfig::default());

    let mut server = NetServer::bind("127.0.0.1:0", cached, NetServerConfig::default()).unwrap();
    let mut plain_server = NetServer::bind(
        "127.0.0.1:0",
        SearchServer::new(db),
        NetServerConfig::default(),
    )
    .unwrap();
    let metrics = MetricsServer::bind("127.0.0.1:0", server.metrics_renderer()).unwrap();
    let plain_metrics =
        MetricsServer::bind("127.0.0.1:0", plain_server.metrics_renderer()).unwrap();

    let mut client = NetClient::connect_default(server.local_addr()).unwrap();
    let mut plain_client = NetClient::connect_default(plain_server.local_addr()).unwrap();
    let query = Query::top_k(FeatureKind::PrincipalMoments, 2);
    let mesh = primitives::box_mesh(Vec3::ONE);

    let want = plain_client.search_mesh(&mesh, &query).unwrap();
    for _ in 0..3 {
        let got = client.search_mesh(&mesh, &query).unwrap();
        assert_eq!(want, got, "cached answers match the uncached server");
    }

    let report = client.stats().unwrap();
    let c = report.cache.expect("cached server reports cache stats");
    assert_eq!(c.misses, 1, "one extraction for three identical queries");
    assert_eq!(c.hits, 2);
    assert_eq!(c.entries, 1);
    assert!(c.resident_bytes > 0);
    assert!(plain_client.stats().unwrap().cache.is_none());

    let body = scrape(&metrics, "/metrics");
    for family in [
        "# TYPE tdess_cache_hits_total counter",
        "# TYPE tdess_cache_misses_total counter",
        "# TYPE tdess_cache_coalesced_waits_total counter",
        "# TYPE tdess_cache_evictions_total counter",
        "# TYPE tdess_cache_resident_bytes gauge",
        "# TYPE tdess_cache_entries gauge",
        "# TYPE tdess_cache_capacity_bytes gauge",
    ] {
        assert!(body.contains(family), "missing {family:?} in:\n{body}");
    }
    assert!(body.contains("tdess_cache_hits_total 2"), "{body}");
    assert!(body.contains("tdess_cache_misses_total 1"), "{body}");
    // Cache-off exposition carries no cache families at all.
    let plain_body = scrape(&plain_metrics, "/metrics");
    assert!(
        !plain_body.contains("tdess_cache_"),
        "uncached server must not expose cache families:\n{plain_body}"
    );

    server.shutdown();
    plain_server.shutdown();
}

/// Issues one raw HTTP/1.0 request and returns the full response text.
fn scrape(metrics: &MetricsServer, path: &str) -> String {
    let mut stream = TcpStream::connect(metrics.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").unwrap();
    let mut body = String::new();
    stream.read_to_string(&mut body).unwrap();
    body
}
