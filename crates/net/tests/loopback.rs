//! Loopback integration tests for the network tier: concurrent
//! clients against an in-process baseline, hostile frames, explicit
//! backpressure, and graceful shutdown with zero dropped in-flight
//! requests.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use tdess_core::{MultiStepPlan, Query, SearchServer, ShapeDatabase};
use tdess_features::{FeatureExtractor, FeatureKind};
use tdess_geom::{primitives, Vec3};
use tdess_net::proto::{
    decode, encode, read_frame, write_frame, Hello, Request, Response, PROTOCOL_VERSION,
};
use tdess_net::{
    ErrorKind, HitsReport, NetClient, NetClientConfig, NetServer, NetServerConfig, WireError,
};

fn small_db() -> ShapeDatabase {
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: 12,
        ..Default::default()
    });
    db.insert("box", primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)))
        .unwrap();
    db.insert("cube", primitives::box_mesh(Vec3::ONE)).unwrap();
    db.insert("sphere", primitives::uv_sphere(1.0, 10, 5))
        .unwrap();
    db.insert("rod", primitives::cylinder(0.3, 4.0, 10))
        .unwrap();
    db.insert("torus", primitives::torus(1.5, 0.4, 10, 6))
        .unwrap();
    db
}

fn serve(cfg: NetServerConfig) -> NetServer {
    NetServer::bind("127.0.0.1:0", SearchServer::new(small_db()), cfg).unwrap()
}

/// Raw-socket handshake, for tests that need frame-level control.
fn raw_handshake(addr: std::net::SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_frame(&mut stream, &encode(&Hello::current()).unwrap()).unwrap();
    let reply = read_frame(&mut stream, 1 << 20).unwrap().unwrap();
    assert!(matches!(
        decode::<Response>(&reply).unwrap(),
        Response::HelloAck {
            version: PROTOCOL_VERSION
        }
    ));
    stream
}

#[test]
fn concurrent_clients_are_byte_identical_to_in_process() {
    let mut server = serve(NetServerConfig {
        workers: 8,
        ..Default::default()
    });
    let addr = server.local_addr();

    // In-process baseline over the same corpus (separate but
    // identically built database — construction is deterministic).
    let baseline = SearchServer::new(small_db());
    let snap = baseline.snapshot();
    let query_mesh = primitives::box_mesh(Vec3::new(1.9, 1.1, 0.6));
    let features = snap.extractor().extract(&query_mesh).unwrap();
    let query = Query::top_k(FeatureKind::MomentInvariants, 4);
    let plan = MultiStepPlan {
        steps: vec![FeatureKind::PrincipalMoments, FeatureKind::MomentInvariants],
        candidates: 4,
        presented: 3,
    };

    let expect_features = HitsReport::new(&snap, &baseline.search_features(&features, &query));
    let expect_mesh = HitsReport::new(&snap, &baseline.search_mesh(&query_mesh, &query).unwrap());
    let expect_multi = HitsReport::new(
        &snap,
        &baseline.multi_step_mesh(&query_mesh, &plan).unwrap(),
    );

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let features = features.clone();
            let query = query.clone();
            let query_mesh = query_mesh.clone();
            let plan = plan.clone();
            std::thread::spawn(move || {
                let mut client = NetClient::connect_default(addr).unwrap();
                let by_features = client.search_features(&features, &query).unwrap();
                let by_mesh = client.search_mesh(&query_mesh, &query).unwrap();
                let multi = client.multi_step(&query_mesh, &plan).unwrap();
                let info = client.info().unwrap();
                (by_features, by_mesh, multi, info)
            })
        })
        .collect();

    for h in handles {
        let (by_features, by_mesh, multi, info) = h.join().unwrap();
        // Byte-identical: the JSON the wire carried re-serializes to
        // exactly the bytes the in-process reports produce.
        assert_eq!(
            serde_json::to_string(&by_features).unwrap(),
            serde_json::to_string(&expect_features).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&by_mesh).unwrap(),
            serde_json::to_string(&expect_mesh).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&multi).unwrap(),
            serde_json::to_string(&expect_multi).unwrap()
        );
        assert_eq!(info.shapes, 5);
        assert_eq!(info.voxel_resolution, 12);
    }

    // Joining the workers (shutdown) makes the counters final —
    // requests_served is bumped after the response frame is written,
    // so a client can observe its reply before the bump lands.
    server.shutdown();
    let stats = server.transport_stats();
    assert_eq!(stats.connections_accepted, 8);
    assert_eq!(stats.requests_served, 8 * 4);
    assert_eq!(stats.decode_errors, 0);
}

#[test]
fn hostile_frames_get_typed_errors_and_the_connection_survives() {
    let mut server = serve(NetServerConfig {
        workers: 2,
        max_frame_len: 1024,
        ..Default::default()
    });
    let mut stream = raw_handshake(server.local_addr());

    // Garbage payload: typed Malformed error, connection stays up.
    write_frame(&mut stream, b"{ definitely not a request").unwrap();
    let reply = read_frame(&mut stream, 1 << 20).unwrap().unwrap();
    match decode::<Response>(&reply).unwrap() {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::Malformed),
        other => panic!("expected Malformed error, got {other:?}"),
    }

    // Oversized frame: typed FrameTooLarge error, payload drained,
    // connection stays up.
    let big = vec![b'x'; 4096];
    write_frame(&mut stream, &big).unwrap();
    let reply = read_frame(&mut stream, 1 << 20).unwrap().unwrap();
    match decode::<Response>(&reply).unwrap() {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::FrameTooLarge),
        other => panic!("expected FrameTooLarge error, got {other:?}"),
    }

    // The same connection still answers a valid request.
    write_frame(&mut stream, &encode(&Request::Ping).unwrap()).unwrap();
    let reply = read_frame(&mut stream, 1 << 20).unwrap().unwrap();
    assert!(matches!(
        decode::<Response>(&reply).unwrap(),
        Response::Pong
    ));

    let stats = server.transport_stats();
    assert_eq!(stats.decode_errors, 2);
    server.shutdown();
}

#[test]
fn version_mismatch_is_rejected_with_a_typed_error() {
    let server = serve(NetServerConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let hello = Hello {
        magic: "tdess".into(),
        version: PROTOCOL_VERSION + 7,
    };
    write_frame(&mut stream, &encode(&hello).unwrap()).unwrap();
    let reply = read_frame(&mut stream, 1 << 20).unwrap().unwrap();
    match decode::<Response>(&reply).unwrap() {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::VersionMismatch),
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn requests_that_would_panic_the_core_get_typed_errors() {
    let server = serve(NetServerConfig::default());
    let mut client = NetClient::connect_default(server.local_addr()).unwrap();

    // Empty multi-step plan (the core asserts on this).
    let err = client
        .multi_step(
            &primitives::box_mesh(Vec3::ONE),
            &MultiStepPlan {
                steps: vec![],
                candidates: 4,
                presented: 3,
            },
        )
        .unwrap_err();
    assert!(matches!(err, WireError::Remote(e) if e.kind == ErrorKind::Malformed));

    // Out-of-range similarity threshold (the core asserts on this).
    let snap = SearchServer::new(small_db()).snapshot();
    let features = snap
        .extractor()
        .extract(&primitives::box_mesh(Vec3::ONE))
        .unwrap();
    let bad = Query {
        mode: tdess_core::QueryMode::Threshold(2.0),
        ..Query::top_k(FeatureKind::MomentInvariants, 3)
    };
    let err = client.search_features(&features, &bad).unwrap_err();
    assert!(matches!(err, WireError::Remote(e) if e.kind == ErrorKind::Malformed));

    // Unknown shape id: typed, not a panic, and the connection is
    // still good afterwards.
    let err = client.remove(999).unwrap_err();
    assert!(matches!(err, WireError::Remote(e) if e.kind == ErrorKind::UnknownShape));
    client.ping().unwrap();
}

#[test]
fn full_accept_queue_answers_busy() {
    let mut server = serve(NetServerConfig {
        workers: 1,
        queue_depth: 1,
        ..Default::default()
    });
    let addr = server.local_addr();

    // A occupies the only worker (a connection holds its worker for
    // its whole lifetime).
    let mut a = NetClient::connect_default(addr).unwrap();
    a.ping().unwrap();

    // B fills the depth-1 accept queue; its handshake stays pending.
    let b = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // C overflows the queue: one typed Busy frame, then the server
    // hangs up.
    let mut c = TcpStream::connect(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let reply = read_frame(&mut c, 1 << 20).unwrap().unwrap();
    match decode::<Response>(&reply).unwrap() {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::Busy),
        other => panic!("expected Busy, got {other:?}"),
    }

    // A still works while B waits.
    a.ping().unwrap();
    assert!(server.transport_stats().connections_rejected >= 1);

    // Freeing the worker lets the queued B proceed to a handshake.
    drop(a);
    let mut b = b;
    b.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write_frame(&mut b, &encode(&Hello::current()).unwrap()).unwrap();
    let reply = read_frame(&mut b, 1 << 20).unwrap().unwrap();
    assert!(matches!(
        decode::<Response>(&reply).unwrap(),
        Response::HelloAck { .. }
    ));
    server.shutdown();
}

#[test]
fn graceful_shutdown_completes_the_in_flight_request() {
    let mut server = serve(NetServerConfig {
        workers: 2,
        ..Default::default()
    });
    let mut stream = raw_handshake(server.local_addr());

    // Start a request frame but deliver only half of it: the server
    // has read the header, so the request is in flight.
    let payload = encode(&Request::Ping).unwrap();
    let mut frame = Vec::new();
    write_frame(&mut frame, &payload).unwrap();
    let split = frame.len() / 2;
    stream.write_all(&frame[..split]).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(150));

    // Shut down concurrently; it must block until the request is done.
    let shutdown = std::thread::spawn(move || {
        server.shutdown();
        server
    });
    std::thread::sleep(Duration::from_millis(150));

    // Deliver the rest; the in-flight request still gets its answer.
    stream.write_all(&frame[split..]).unwrap();
    stream.flush().unwrap();
    let reply = read_frame(&mut stream, 1 << 20).unwrap().unwrap();
    assert!(matches!(
        decode::<Response>(&reply).unwrap(),
        Response::Pong
    ));

    let server = shutdown.join().unwrap();
    let stats = server.transport_stats();
    assert_eq!(stats.requests_served, 1);

    // New connections are refused now.
    match TcpStream::connect(server.local_addr()) {
        Err(_) => {}
        Ok(mut late) => {
            late.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            // Either an explicit Shutdown frame or an immediate close.
            let mut buf = [0u8; 64];
            let _ = late.read(&mut buf);
        }
    }
}

#[test]
fn shutdown_under_concurrent_load_drops_no_answered_request() {
    let mut server = serve(NetServerConfig {
        workers: 8,
        ..Default::default()
    });
    let addr = server.local_addr();
    let start = Arc::new(Barrier::new(9));

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                let mut client = match NetClient::connect(
                    addr,
                    NetClientConfig {
                        retry_on_disconnect: false,
                        ..Default::default()
                    },
                ) {
                    Ok(c) => c,
                    Err(_) => {
                        start.wait();
                        return 0u64;
                    }
                };
                start.wait();
                let mut ok = 0u64;
                for _ in 0..50 {
                    match client.ping() {
                        Ok(()) => ok += 1,
                        // Once the server winds down, every further
                        // attempt fails; stop.
                        Err(_) => break,
                    }
                }
                ok
            })
        })
        .collect();

    start.wait();
    std::thread::sleep(Duration::from_millis(30));
    server.shutdown();

    let client_ok: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let stats = server.transport_stats();
    // Zero-drop invariant: every response the server counts as served
    // was actually delivered to (and decoded by) a client.
    assert_eq!(stats.requests_served, client_ok);
}

#[test]
fn client_reconnects_for_idempotent_requests_only() {
    let mut server = serve(NetServerConfig::default());
    let addr = server.local_addr();
    let mut client = NetClient::connect_default(addr).unwrap();
    client.ping().unwrap();
    let shapes_before = client.info().unwrap().shapes;

    // Restart the server on the same address.
    server.shutdown();
    let mut server = NetServer::bind(
        addr,
        SearchServer::new(small_db()),
        NetServerConfig::default(),
    )
    .unwrap();

    // A non-idempotent request on the stale connection must execute
    // at most once. The usual path: the request frame reaches the dead
    // socket, the response read fails, and the client surfaces the
    // error instead of retrying. (If the OS rejects the very write,
    // the frame never reached any server and a retry is safe — then
    // it executes exactly once on the new server.)
    let retried = match client.insert("late", &primitives::box_mesh(Vec3::ONE)) {
        Err(err) => {
            assert!(err.is_disconnect(), "got: {err}");
            false
        }
        Ok(_) => true,
    };
    let mut probe = NetClient::connect_default(addr).unwrap();
    let expected = if retried {
        shapes_before + 1
    } else {
        shapes_before
    };
    assert_eq!(probe.info().unwrap().shapes, expected);

    // An idempotent request on the (again stale) client reconnects
    // transparently and succeeds.
    client.ping().unwrap();
    assert_eq!(client.info().unwrap().shapes, expected);
    server.shutdown();
}
