//! Shutdown-path thread-hygiene regression tests, backing the audit
//! `thread-hygiene` rule: every thread [`NetServer`] and
//! [`MetricsServer`] spawn must be joined on shutdown, shutdown must
//! be idempotent (explicit double call and the implicit Drop after an
//! explicit call), and a stopped server must actually release its
//! listener.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tdess_core::{SearchServer, ShapeDatabase};
use tdess_features::FeatureExtractor;
use tdess_geom::{primitives, Vec3};
use tdess_net::{MetricsServer, NetClient, NetClientConfig, NetServer, NetServerConfig};

fn small_db() -> ShapeDatabase {
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: 12,
        ..Default::default()
    });
    db.insert("box", primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)))
        .unwrap();
    db.insert("sphere", primitives::uv_sphere(1.0, 10, 5))
        .unwrap();
    db
}

fn serve(cfg: NetServerConfig) -> NetServer {
    NetServer::bind("127.0.0.1:0", SearchServer::new(small_db()), cfg).unwrap()
}

/// One raw HTTP/1.0 scrape of `GET path`, returning the response text.
fn http_get(addr: std::net::SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n")?;
    let mut out = String::new();
    stream.read_to_string(&mut out)?;
    Ok(out)
}

#[test]
fn net_server_shutdown_joins_and_is_idempotent() {
    let mut server = serve(NetServerConfig {
        workers: 4,
        ..Default::default()
    });
    let addr = server.local_addr();

    // Serve one real request so workers are demonstrably alive first.
    let mut client = NetClient::connect(addr, NetClientConfig::default()).unwrap();
    client.ping().unwrap();
    drop(client);

    // Shutdown joins the accept thread and all four workers; if any
    // worker failed to exit on channel disconnect this would hang, so
    // bound it with a wall-clock assertion.
    let t0 = Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "shutdown took {:?}",
        t0.elapsed()
    );

    // Second explicit call and the Drop that follows are both no-ops.
    server.shutdown();

    // With every thread joined, new connections must be refused or die
    // without an answer — nothing is left accepting.
    assert!(
        NetClient::connect(addr, NetClientConfig::default()).is_err(),
        "stopped server still answered a handshake"
    );
    drop(server); // Drop runs shutdown() a third time — still a no-op.
}

#[test]
fn net_server_drop_alone_joins_threads() {
    let server = serve(NetServerConfig {
        workers: 2,
        ..Default::default()
    });
    let addr = server.local_addr();
    let t0 = Instant::now();
    drop(server);
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "drop took {:?}",
        t0.elapsed()
    );
    assert!(NetClient::connect(addr, NetClientConfig::default()).is_err());
}

#[test]
fn metrics_server_double_shutdown_and_drop_are_idempotent() {
    let render: tdess_net::MetricsRenderer = Arc::new(|| "# scrape ok\n".to_string());
    let mut metrics = MetricsServer::bind("127.0.0.1:0", render).unwrap();
    let addr = metrics.local_addr();

    // The serving thread answers while up.
    let body = http_get(addr, "/metrics").unwrap();
    assert!(body.contains("200 OK"), "{body}");
    assert!(body.contains("scrape ok"), "{body}");

    // First shutdown joins the thread; the repeat and the final Drop
    // must both be no-ops (the JoinHandle is take()n exactly once).
    let t0 = Instant::now();
    metrics.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "shutdown took {:?}",
        t0.elapsed()
    );
    metrics.shutdown();

    // The listener is gone: a fresh scrape cannot complete.
    assert!(
        http_get(addr, "/metrics").is_err(),
        "stopped metrics endpoint still answered"
    );
    drop(metrics);
}

#[test]
fn metrics_server_port_is_reusable_after_shutdown() {
    let render: tdess_net::MetricsRenderer = Arc::new(String::new);
    let mut metrics = MetricsServer::bind("127.0.0.1:0", Arc::clone(&render)).unwrap();
    let addr = metrics.local_addr();
    metrics.shutdown();
    drop(metrics);

    // With the thread joined and the listener closed, the exact port
    // can be bound again — the strongest observable proof the previous
    // instance fully released its resources.
    let rebound = MetricsServer::bind(addr, render).unwrap();
    assert_eq!(rebound.local_addr(), addr);
}
