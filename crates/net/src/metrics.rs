//! A minimal HTTP/1.0 responder for Prometheus text exposition.
//!
//! [`MetricsServer`] answers `GET /metrics` with whatever the supplied
//! renderer closure produces (normally
//! [`crate::NetServer::metrics_renderer`]) and 404s everything else.
//! It speaks just enough HTTP for a scraper: one request per
//! connection, `Connection: close`, no keep-alive, no chunking. The
//! request line is read with a short socket timeout so a stalled peer
//! cannot pin the single serving thread for long.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tdess_obs::event;

/// Event target for the metrics endpoint's structured log events.
const TARGET: &str = "tdess_net::metrics";

/// How long a scraper gets to deliver its request line and how long a
/// response write may block.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// The Prometheus text exposition content type (format 0.0.4).
const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// A render callback producing the current exposition text.
pub type MetricsRenderer = Arc<dyn Fn() -> String + Send + Sync>;

/// A background thread serving `GET /metrics` over plain HTTP.
/// Dropping the handle shuts it down.
pub struct MetricsServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (port 0 for ephemeral) and starts the serving
    /// thread. Each scrape calls `render` afresh.
    pub fn bind(
        addr: impl ToSocketAddrs,
        render: MetricsRenderer,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread_shutdown = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("tdess-metrics".to_string())
            .spawn(move || serve_loop(&listener, &thread_shutdown, &render))?;
        event!(Info, TARGET, "metrics endpoint listening on {local_addr}");
        Ok(MetricsServer {
            local_addr,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The address the metrics listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the serving thread and joins it. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept call; a refused dial is harmless.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(250));
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
            event!(
                Debug,
                TARGET,
                "metrics endpoint on {} stopped",
                self.local_addr
            );
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts scrape connections one at a time until shutdown.
fn serve_loop(listener: &TcpListener, shutdown: &AtomicBool, render: &MetricsRenderer) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        serve_one(stream, render);
    }
}

/// Handles a single scrape: parse the request line, answer, close.
fn serve_one(stream: TcpStream, render: &MetricsRenderer) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the header block so well-behaved clients see a clean
    // response rather than a reset while still mid-send.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let mut stream = reader.into_inner();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method == "GET" && (path == "/metrics" || path == "/metrics/") {
        let body = render();
        event!(Debug, TARGET, "served /metrics ({} bytes)", body.len());
        let _ = write_response(&mut stream, "200 OK", &body);
    } else {
        event!(Debug, TARGET, "rejected {method} {path}");
        let _ = write_response(&mut stream, "404 Not Found", "not found; try /metrics\n");
    }
}

/// Writes one complete HTTP/1.0 response.
fn write_response(stream: &mut TcpStream, status: &str, body: &str) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {CONTENT_TYPE}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
