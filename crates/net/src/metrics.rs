//! A minimal HTTP/1.0 responder for operational endpoints.
//!
//! [`MetricsServer`] serves a small fixed route table: classically
//! `GET /metrics` with whatever the supplied renderer closure produces
//! (normally [`crate::NetServer::metrics_renderer`]), and — when bound
//! via [`MetricsServer::bind_routes`] — additional routes such as
//! `/healthz` (liveness) and `/traces` (Chrome trace-event JSON from
//! the flight recorder). Everything else 404s. It speaks just enough
//! HTTP for a scraper: one request per connection,
//! `Connection: close`, no keep-alive, no chunking. The request line
//! is read with a short socket timeout so a stalled peer cannot pin
//! the single serving thread for long.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tdess_obs::event;

/// Event target for the metrics endpoint's structured log events.
const TARGET: &str = "tdess_net::metrics";

/// How long a scraper gets to deliver its request line and how long a
/// response write may block.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// The Prometheus text exposition content type (format 0.0.4).
const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// A render callback producing the current exposition text.
pub type MetricsRenderer = Arc<dyn Fn() -> String + Send + Sync>;

/// One HTTP route: an exact path, the content type of its body, and a
/// closure rendering that body per request.
#[derive(Clone)]
pub struct MetricsRoute {
    /// Exact request path (a trailing slash is tolerated on match).
    pub path: &'static str,
    /// `Content-Type` header value for this route's responses.
    pub content_type: &'static str,
    /// Renders the response body afresh on every request.
    pub render: MetricsRenderer,
}

impl MetricsRoute {
    /// The classic Prometheus exposition route at `/metrics`.
    pub fn metrics(render: MetricsRenderer) -> MetricsRoute {
        MetricsRoute {
            path: "/metrics",
            content_type: CONTENT_TYPE,
            render,
        }
    }

    /// A `/healthz` liveness route: `200 OK` with the process uptime
    /// (measured from this call) and a caller-supplied generation
    /// counter (normally the server's snapshot-swap count, so two
    /// probes can tell a live-but-frozen process from a serving one).
    pub fn healthz(generation: Arc<dyn Fn() -> u64 + Send + Sync>) -> MetricsRoute {
        let started = Instant::now();
        MetricsRoute {
            path: "/healthz",
            content_type: "text/plain; charset=utf-8",
            render: Arc::new(move || {
                format!(
                    "ok\nuptime_seconds {}\nsnapshot_generation {}\n",
                    started.elapsed().as_secs(),
                    generation()
                )
            }),
        }
    }

    /// A `/traces` route serving a body that is already JSON (normally
    /// [`tdess_obs::chrome_trace_json`] over a flight-recorder
    /// snapshot).
    pub fn traces(render: MetricsRenderer) -> MetricsRoute {
        MetricsRoute {
            path: "/traces",
            content_type: "application/json",
            render,
        }
    }
}

/// A background thread serving a fixed HTTP route table. Dropping the
/// handle shuts it down.
pub struct MetricsServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (port 0 for ephemeral) and serves `render` at
    /// `/metrics` — the single-route form predating
    /// [`MetricsServer::bind_routes`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        render: MetricsRenderer,
    ) -> std::io::Result<MetricsServer> {
        Self::bind_routes(addr, vec![MetricsRoute::metrics(render)])
    }

    /// Binds `addr` (port 0 for ephemeral) and starts the serving
    /// thread over `routes`. Each request calls the matched route's
    /// renderer afresh; unmatched paths 404 with a hint listing the
    /// available routes.
    pub fn bind_routes(
        addr: impl ToSocketAddrs,
        routes: Vec<MetricsRoute>,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread_shutdown = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("tdess-metrics".to_string())
            .spawn(move || serve_loop(&listener, &thread_shutdown, &routes))?;
        event!(Info, TARGET, "metrics endpoint listening on {local_addr}");
        Ok(MetricsServer {
            local_addr,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The address the metrics listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the serving thread and joins it. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept call; a refused dial is harmless.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(250));
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
            event!(
                Debug,
                TARGET,
                "metrics endpoint on {} stopped",
                self.local_addr
            );
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts scrape connections one at a time until shutdown.
fn serve_loop(listener: &TcpListener, shutdown: &AtomicBool, routes: &[MetricsRoute]) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        serve_one(stream, routes);
    }
}

/// Handles a single request: parse the request line, match the route
/// table, answer, close.
fn serve_one(stream: TcpStream, routes: &[MetricsRoute]) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the header block so well-behaved clients see a clean
    // response rather than a reset while still mid-send.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let mut stream = reader.into_inner();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path
        .strip_suffix('/')
        .filter(|p| !p.is_empty())
        .unwrap_or(path);
    let route = routes.iter().find(|r| r.path == path);
    match route {
        Some(route) if method == "GET" => {
            let body = (route.render)();
            event!(
                Debug,
                TARGET,
                "served {} ({} bytes)",
                route.path,
                body.len()
            );
            let _ = write_response(&mut stream, "200 OK", route.content_type, &body);
        }
        _ => {
            event!(Debug, TARGET, "rejected {method} {path}");
            let mut hint = String::from("not found; try");
            for r in routes {
                hint.push(' ');
                hint.push_str(r.path);
            }
            hint.push('\n');
            let _ = write_response(
                &mut stream,
                "404 Not Found",
                "text/plain; charset=utf-8",
                &hint,
            );
        }
    }
}

/// Writes one complete HTTP/1.0 response.
fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
