//! # tdess-net — the 3DESS network tier
//!
//! Exposes a [`tdess_core::SearchServer`] over TCP:
//!
//! * **protocol** ([`proto`]) — length-prefixed framed wire format
//!   with JSON payloads, a version-checked handshake, typed
//!   [`proto::Request`]/[`proto::Response`] enums, and decode errors
//!   that are typed values, never panics;
//! * **server** ([`server`]) — [`NetServer`], a bounded thread-pool
//!   front end with explicit backpressure (`Busy` replies when the
//!   accept queue is full), per-connection timeouts, transport
//!   counters, and a graceful shutdown that never drops an in-flight
//!   request;
//! * **client** ([`client`]) — [`NetClient`], a blocking typed client
//!   with connect/request timeouts and reconnect-on-broken-pipe for
//!   idempotent requests;
//! * **metrics** ([`metrics`]) — [`MetricsServer`], a minimal HTTP
//!   endpoint serving the server's Prometheus text exposition
//!   (`GET /metrics`).
//!
//! Requests travel in a [`proto::RequestEnvelope`] carrying a client
//! trace id; the server dispatches under that id so its `tdess-obs`
//! structured events correlate with the originating call.
//!
//! See DESIGN.md §"NET tier" for the frame layout, handshake, and
//! timeout/backpressure defaults, and §"OBS tier" for tracing and
//! exposition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;

pub use client::{NetClient, NetClientConfig};
pub use metrics::{MetricsRenderer, MetricsRoute, MetricsServer};
pub use proto::{
    ErrorKind, ErrorReply, Hello, HitsReport, InfoReport, NamedHit, Request, RequestEnvelope,
    Response, SpaceInfo, StageStats, StatsReport, TracesReport, TransportStats, WireError,
    DEFAULT_MAX_FRAME_LEN, MAGIC, PROTOCOL_VERSION,
};
pub use server::{NetServer, NetServerConfig, TransportCounters};
